//! Blocking client for the `numarck-serve` protocol.
//!
//! One [`Client`] wraps one TCP connection. Requests are strictly
//! request→response (no pipelining); the client stamps each request with
//! a fresh id and verifies the echo, so a desynchronised stream is an
//! error rather than silent cross-talk. [`ClientError::Busy`] surfaces
//! the server's typed backpressure so callers (the load generator, the
//! CLI) can back off and retry.

use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use numarck_checkpoint::VariableSet;

use crate::wire::{self, ErrorCode, PutOutcome, Request, Response, StatsReply};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The server's work queue was full; retry after a backoff.
    Busy,
    /// The server answered with a typed error.
    Server {
        /// Failure class from the wire.
        code: ErrorCode,
        /// Server-provided detail.
        message: String,
    },
    /// The transport failed (connect, read, write, deadline).
    Io(io::Error),
    /// The server broke protocol (bad frame, wrong opcode, id mismatch).
    Protocol(String),
    /// A retry loop gave up: every attempt failed transiently and the
    /// attempt or wall-clock budget ran out. Carries the count and the
    /// last underlying failure so callers can report both.
    RetriesExhausted {
        /// Attempts made before giving up.
        attempts: u32,
        /// The failure the final attempt died with.
        last: Box<ClientError>,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Busy => write!(f, "server busy: bounded queue is full"),
            ClientError::Server { code, message } => write!(f, "server error [{code}]: {message}"),
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            ClientError::RetriesExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts; last error: {last}")
            }
        }
    }
}

impl ClientError {
    /// Whether retrying the whole call can plausibly succeed: `Busy`
    /// (the bounded queue was momentarily full) and transport failures
    /// that clear on their own — refused/reset/aborted connections (the
    /// server is restarting or shedding load) and deadline expiries
    /// (`TimedOut`/`WouldBlock`, which is what an overloaded-but-alive
    /// server or a congested path produces; the socket timeouts bound
    /// each attempt, the retry loop's wall-clock budget bounds the
    /// total). Everything else — typed server errors, protocol
    /// violations, resolution failures, an exhausted retry loop — is
    /// deterministic or indicates a sick peer, and retrying it only
    /// hides the real problem behind a delay.
    pub fn is_transient(&self) -> bool {
        match self {
            ClientError::Busy => true,
            ClientError::Io(e) => matches!(
                e.kind(),
                io::ErrorKind::ConnectionRefused
                    | io::ErrorKind::ConnectionReset
                    | io::ErrorKind::ConnectionAborted
                    | io::ErrorKind::TimedOut
                    | io::ErrorKind::WouldBlock
            ),
            ClientError::Server { .. }
            | ClientError::Protocol(_)
            | ClientError::RetriesExhausted { .. } => false,
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        // The framing layer reports corrupt frames as InvalidData; that
        // is a protocol failure, not a transport one.
        if e.kind() == io::ErrorKind::InvalidData {
            ClientError::Protocol(e.to_string())
        } else {
            ClientError::Io(e)
        }
    }
}

/// Result alias for client calls.
pub type ClientResult<T> = Result<T, ClientError>;

/// Ceiling on a single [`Client::connect_session`] retry delay, however
/// many doublings the attempt count has earned.
const BACKOFF_CAP: Duration = Duration::from_secs(2);

/// Ceiling on the *total* wall-clock a [`Client::connect_session`]
/// retry loop may spend (sleeps + attempts) before it gives up with
/// [`ClientError::RetriesExhausted`], whatever the attempt budget says.
const RETRY_WALL_CLOCK_CAP: Duration = Duration::from_secs(30);

/// Delay before retry number `attempt` (1-based): `base` doubled per
/// attempt, capped at `cap`, then jittered into `[cap'/2, cap']` so a
/// herd of clients rejected by the same Busy burst does not reconnect
/// in lockstep. The jitter is deterministic (a hash of the attempt
/// number and the base), keeping tests and reruns reproducible.
fn retry_delay(base: Duration, attempt: u32, cap: Duration) -> Duration {
    let doublings = attempt.saturating_sub(1).min(20);
    let exp = base.saturating_mul(1u32 << doublings).min(cap);
    let nanos = exp.as_nanos() as u64;
    if nanos < 2 {
        return exp;
    }
    let h = splitmix64((u64::from(attempt) << 32) ^ nanos);
    Duration::from_nanos(nanos / 2 + h % (nanos - nanos / 2 + 1))
}

/// SplitMix64 finaliser: cheap, well-mixed, dependency-free.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A blocking connection to a checkpoint server.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    next_req_id: u64,
}

impl Client {
    /// Connect with a timeout applied to connect, reads, and writes.
    pub fn connect(addr: impl ToSocketAddrs, timeout: Duration) -> ClientResult<Self> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| ClientError::Protocol("address resolved to nothing".into()))?;
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        Ok(Self { stream, next_req_id: 1 })
    }

    /// Connect and open `session` in one go, retrying *transient*
    /// failures ([`ClientError::is_transient`]: `Busy`, refused/reset
    /// connections, deadline expiries) with capped exponential backoff
    /// and deterministic jitter; every other failure returns
    /// immediately. A `Busy` verdict arrives on the first round-trip
    /// and kills the connection (the acceptor never queued it), so each
    /// retry reconnects from scratch. `backoff` is the base delay —
    /// attempt `n` sleeps roughly `backoff × 2^(n-1)`, never more than
    /// [`BACKOFF_CAP`]; the whole loop never spends more than
    /// [`RETRY_WALL_CLOCK_CAP`] of wall-clock. When the budget runs out
    /// the error is [`ClientError::RetriesExhausted`], carrying the
    /// attempt count and the last underlying failure. Returns the
    /// client and the session id.
    pub fn connect_session(
        addr: impl ToSocketAddrs + Copy,
        timeout: Duration,
        session: &str,
        attempts: u32,
        backoff: Duration,
    ) -> ClientResult<(Self, u64)> {
        Self::connect_session_within(addr, timeout, session, attempts, backoff, RETRY_WALL_CLOCK_CAP)
    }

    /// [`Self::connect_session`] with an explicit wall-clock budget
    /// (tests use a tiny one; production callers want the default cap).
    pub fn connect_session_within(
        addr: impl ToSocketAddrs + Copy,
        timeout: Duration,
        session: &str,
        attempts: u32,
        backoff: Duration,
        wall_clock: Duration,
    ) -> ClientResult<(Self, u64)> {
        let start = std::time::Instant::now();
        let mut last = None;
        let mut made: u32 = 0;
        for attempt in 0..attempts.max(1) {
            if attempt > 0 {
                let delay = retry_delay(backoff, attempt, BACKOFF_CAP);
                // Give up *before* a sleep that cannot be followed by a
                // within-budget attempt — sleeping past the budget only
                // delays the caller's error handling.
                if start.elapsed() + delay >= wall_clock {
                    break;
                }
                std::thread::sleep(delay);
            }
            made = attempt + 1;
            let mut client = match Client::connect(addr, timeout) {
                Ok(client) => client,
                Err(e) if e.is_transient() => {
                    last = Some(e);
                    continue;
                }
                Err(e) => return Err(e),
            };
            match client.open_session(session) {
                Ok(id) => return Ok((client, id)),
                Err(e) if e.is_transient() => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(ClientError::RetriesExhausted {
            attempts: made,
            last: Box::new(last.unwrap_or(ClientError::Busy)),
        })
    }

    /// One request→response round trip.
    fn call(&mut self, req: &Request) -> ClientResult<Response> {
        let req_id = self.next_req_id;
        self.next_req_id += 1;
        wire::write_frame(&mut self.stream, req.opcode(), req_id, &req.payload())?;
        let frame = wire::read_frame(&mut self.stream)?;
        let resp = Response::from_frame(&frame)?;
        // Busy is sent by the acceptor with id 0 before it ever sees our
        // request, so exempt it from the echo check.
        if frame.req_id != req_id && !matches!(resp, Response::Busy) {
            return Err(ClientError::Protocol(format!(
                "response id {} does not match request id {req_id}",
                frame.req_id
            )));
        }
        match resp {
            Response::Busy => Err(ClientError::Busy),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Ok(other),
        }
    }

    fn unexpected<T>(resp: Response) -> ClientResult<T> {
        Err(ClientError::Protocol(format!("unexpected response {resp:?}")))
    }

    /// Open (or re-attach to) the named session; returns its id.
    pub fn open_session(&mut self, name: &str) -> ClientResult<u64> {
        match self.call(&Request::OpenSession { name: name.to_string() })? {
            Response::SessionOpened { session } => Ok(session),
            other => Self::unexpected(other),
        }
    }

    /// Ingest one iteration.
    pub fn put_iteration(
        &mut self,
        session: u64,
        iteration: u64,
        vars: &VariableSet,
    ) -> ClientResult<PutOutcome> {
        let outcomes = self.put_iterations(session, vec![(iteration, vars.clone())])?;
        outcomes
            .into_iter()
            .next()
            .ok_or_else(|| ClientError::Protocol("PutDone with no outcomes".into()))
    }

    /// Ingest a batch of iterations in order; returns one outcome each.
    pub fn put_iterations(
        &mut self,
        session: u64,
        iterations: Vec<(u64, VariableSet)>,
    ) -> ClientResult<Vec<PutOutcome>> {
        let sent = iterations.len();
        match self.call(&Request::PutIterations { session, iterations })? {
            Response::PutDone { outcomes } => {
                if outcomes.len() != sent {
                    return Err(ClientError::Protocol(format!(
                        "sent {sent} iterations, got {} outcomes",
                        outcomes.len()
                    )));
                }
                Ok(outcomes)
            }
            other => Self::unexpected(other),
        }
    }

    /// Recover the newest restartable state at or before `at_or_before`.
    pub fn restart(&mut self, session: u64, at_or_before: u64) -> ClientResult<RestartReply> {
        match self.call(&Request::Restart { session, at_or_before })? {
            Response::RestartData { achieved, base, deltas_applied, lost, vars } => {
                Ok(RestartReply { achieved, base, deltas_applied, lost, vars })
            }
            other => Self::unexpected(other),
        }
    }

    /// Scrub (and optionally repair) the session's store.
    pub fn scrub(&mut self, session: u64, repair: bool) -> ClientResult<ScrubReply> {
        match self.call(&Request::Scrub { session, repair })? {
            Response::ScrubDone { checked, quarantined, anchored_at, lost } => {
                Ok(ScrubReply { checked, quarantined, anchored_at, lost })
            }
            other => Self::unexpected(other),
        }
    }

    /// Server counters and per-session summaries.
    pub fn stats(&mut self) -> ClientResult<StatsReply> {
        match self.call(&Request::Stats)? {
            Response::StatsData(stats) => Ok(*stats),
            other => Self::unexpected(other),
        }
    }

    /// Close a session (its on-disk store remains).
    pub fn close_session(&mut self, session: u64) -> ClientResult<()> {
        match self.call(&Request::CloseSession { session })? {
            Response::SessionClosed => Ok(()),
            other => Self::unexpected(other),
        }
    }

    /// Ask the server to drain and exit.
    pub fn shutdown(&mut self) -> ClientResult<()> {
        match self.call(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Self::unexpected(other),
        }
    }
}

/// Decoded `RestartData` response.
#[derive(Debug, Clone)]
pub struct RestartReply {
    /// The iteration actually recovered.
    pub achieved: u64,
    /// The full checkpoint the replay started from.
    pub base: u64,
    /// Deltas applied on top of the base.
    pub deltas_applied: u64,
    /// Iterations that could not be recovered on the way down.
    pub lost: u32,
    /// The reconstructed variables.
    pub vars: VariableSet,
}

/// Decoded `ScrubDone` response.
#[derive(Debug, Clone, Copy)]
pub struct ScrubReply {
    /// Files examined.
    pub checked: u32,
    /// Files quarantined.
    pub quarantined: u32,
    /// Where the store was re-anchored (repair only).
    pub anchored_at: Option<u64>,
    /// Intact-but-orphaned iterations given up (repair only).
    pub lost: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_errors_are_busy_connection_faults_and_deadlines() {
        assert!(ClientError::Busy.is_transient());
        for kind in [
            io::ErrorKind::ConnectionRefused,
            io::ErrorKind::ConnectionReset,
            io::ErrorKind::ConnectionAborted,
            // Deadline expiries: an overloaded-but-alive server, worth
            // retrying under the loop's wall-clock budget.
            io::ErrorKind::TimedOut,
            io::ErrorKind::WouldBlock,
        ] {
            assert!(ClientError::Io(io::Error::new(kind, "x")).is_transient(), "{kind:?}");
        }
        for kind in [io::ErrorKind::NotFound, io::ErrorKind::PermissionDenied, io::ErrorKind::Other]
        {
            assert!(!ClientError::Io(io::Error::new(kind, "x")).is_transient(), "{kind:?}");
        }
        assert!(!ClientError::Protocol("desync".into()).is_transient());
        let server =
            ClientError::Server { code: ErrorCode::BadRequest, message: "no".into() };
        assert!(!server.is_transient());
        let exhausted =
            ClientError::RetriesExhausted { attempts: 7, last: Box::new(ClientError::Busy) };
        assert!(!exhausted.is_transient(), "an exhausted loop must not be retried blindly");
    }

    #[test]
    fn exhausted_retries_report_the_attempt_count_and_last_error() {
        // Nobody listens on this port (bound then dropped), so every
        // attempt fails with a transient ConnectionRefused.
        let addr = {
            let sock = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            sock.local_addr().unwrap()
        };
        let err = Client::connect_session_within(
            addr,
            Duration::from_millis(200),
            "s",
            3,
            Duration::from_millis(1),
            Duration::from_secs(5),
        )
        .unwrap_err();
        match err {
            ClientError::RetriesExhausted { attempts, last } => {
                assert_eq!(attempts, 3, "every budgeted attempt was made");
                assert!(last.is_transient(), "the last error was the transient one: {last}");
            }
            other => panic!("expected RetriesExhausted, got {other}"),
        }
    }

    #[test]
    fn retry_wall_clock_budget_stops_the_loop_early() {
        let addr = {
            let sock = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            sock.local_addr().unwrap()
        };
        // A generous attempt budget but a wall-clock budget that only
        // lets a couple of attempts through: attempts made must fall
        // well short of the attempt budget.
        let start = std::time::Instant::now();
        let err = Client::connect_session_within(
            addr,
            Duration::from_millis(200),
            "s",
            1000,
            Duration::from_millis(40),
            Duration::from_millis(120),
        )
        .unwrap_err();
        assert!(start.elapsed() < Duration::from_secs(5), "loop must not run anywhere near 1000 attempts");
        match err {
            ClientError::RetriesExhausted { attempts, .. } => {
                assert!(attempts >= 1, "at least the first attempt runs");
                assert!(attempts < 1000, "wall-clock budget must cut the loop short: {attempts}");
            }
            other => panic!("expected RetriesExhausted, got {other}"),
        }
    }

    #[test]
    fn retry_delay_is_deterministic_exponential_and_capped() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_secs(2);
        for attempt in 1..=32 {
            let d = retry_delay(base, attempt, cap);
            assert_eq!(d, retry_delay(base, attempt, cap), "attempt {attempt}: deterministic");
            // Jitter keeps the delay within [ideal/2, ideal] where
            // ideal = min(base × 2^(n-1), cap).
            let ideal = base.saturating_mul(1u32 << attempt.saturating_sub(1).min(20)).min(cap);
            assert!(d <= ideal, "attempt {attempt}: {d:?} > {ideal:?}");
            assert!(d >= ideal / 2, "attempt {attempt}: {d:?} < {:?}", ideal / 2);
            assert!(d <= cap, "attempt {attempt}: cap violated");
        }
    }

    #[test]
    fn retry_delays_vary_across_attempts_below_the_cap() {
        // The jitter must actually spread attempts, not collapse to the
        // midpoint: consecutive capped delays should differ.
        let base = Duration::from_secs(4); // above cap from attempt 1
        let cap = Duration::from_secs(2);
        let d1 = retry_delay(base, 1, cap);
        let d2 = retry_delay(base, 2, cap);
        let d3 = retry_delay(base, 3, cap);
        assert!(d1 != d2 || d2 != d3, "jitter is degenerate: {d1:?} {d2:?} {d3:?}");
    }

    #[test]
    fn retry_delay_handles_degenerate_bases() {
        assert_eq!(retry_delay(Duration::ZERO, 5, BACKOFF_CAP), Duration::ZERO);
        let tiny = retry_delay(Duration::from_nanos(1), 1, BACKOFF_CAP);
        assert_eq!(tiny, Duration::from_nanos(1));
    }
}
