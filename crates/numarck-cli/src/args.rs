//! Tiny flag parser: positionals plus `--key value` pairs and boolean
//! `--flag` switches. No external dependencies, strict about unknown
//! flags (a typo must not silently change an experiment).

use std::collections::BTreeMap;

/// Parsed arguments.
#[derive(Debug, Clone, Default)]
pub struct Parsed {
    /// Arguments that are not flags, in order.
    pub positionals: Vec<String>,
    flags: BTreeMap<String, String>,
    switches: Vec<String>,
}

/// Parse `args` given the sets of known value-flags and switches.
pub fn parse(
    args: &[String],
    value_flags: &[&str],
    switch_flags: &[&str],
) -> Result<Parsed, String> {
    let mut out = Parsed::default();
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        if let Some(name) = arg.strip_prefix("--") {
            if switch_flags.contains(&name) {
                out.switches.push(name.to_string());
            } else if value_flags.contains(&name) {
                i += 1;
                let value = args
                    .get(i)
                    .ok_or_else(|| format!("flag --{name} expects a value"))?;
                out.flags.insert(name.to_string(), value.clone());
            } else {
                return Err(format!("unknown flag --{name}"));
            }
        } else {
            out.positionals.push(arg.clone());
        }
        i += 1;
    }
    Ok(out)
}

impl Parsed {
    /// Value of a flag, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// Required flag value.
    pub fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name).ok_or_else(|| format!("missing required flag --{name}"))
    }

    /// Whether a switch was given.
    pub fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// Parse a flag as `T`, with a default when absent.
    pub fn get_parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{name}: cannot parse '{v}'")),
        }
    }

    /// Exactly `n` positionals, else an error naming them.
    pub fn expect_positionals(&self, n: usize, names: &str) -> Result<&[String], String> {
        if self.positionals.len() != n {
            return Err(format!(
                "expected {n} positional argument(s) ({names}), got {}",
                self.positionals.len()
            ));
        }
        Ok(&self.positionals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn mixed_parse() {
        let p = parse(
            &argv(&["input.f64s", "--bits", "9", "--closed-loop", "--out", "x"]),
            &["bits", "out"],
            &["closed-loop"],
        )
        .unwrap();
        assert_eq!(p.positionals, vec!["input.f64s"]);
        assert_eq!(p.get("bits"), Some("9"));
        assert!(p.has("closed-loop"));
        assert_eq!(p.get_parsed::<u8>("bits", 8).unwrap(), 9);
        assert_eq!(p.get_parsed::<f64>("tolerance", 0.001).unwrap(), 0.001);
    }

    #[test]
    fn unknown_flag_rejected() {
        let err = parse(&argv(&["--bogus"]), &["out"], &[]).unwrap_err();
        assert!(err.contains("unknown flag"));
    }

    #[test]
    fn missing_value_rejected() {
        let err = parse(&argv(&["--out"]), &["out"], &[]).unwrap_err();
        assert!(err.contains("expects a value"));
    }

    #[test]
    fn require_and_positional_count() {
        let p = parse(&argv(&["a", "b"]), &["out"], &[]).unwrap();
        assert!(p.require("out").is_err());
        assert!(p.expect_positionals(2, "a b").is_ok());
        assert!(p.expect_positionals(1, "a").is_err());
    }

    #[test]
    fn bad_parse_is_descriptive() {
        let p = parse(&argv(&["--bits", "eight"]), &["bits"], &[]).unwrap();
        let err = p.get_parsed::<u8>("bits", 8).unwrap_err();
        assert!(err.contains("eight"));
    }
}
