//! Write-ahead intent journal for session ingest.
//!
//! Every ingest appends an *intent* record — sequence number, iteration,
//! checkpoint kind, and the CRC of the exact bytes about to be written —
//! and fsyncs it **before** the checkpoint store mutates. Once the
//! store's rename has landed, a matching *commit* record is appended
//! (best-effort: a missing commit only means recovery re-verifies the
//! file against the journaled CRC). After a crash at any instruction
//! boundary, [`IntentJournal::open`] replays the journal and reports the
//! intents that never committed, so recovery (see [`crate::recovery`])
//! can decide per intent whether the write completed, never started, or
//! was half-applied.
//!
//! Record framing, little-endian, one record per append:
//!
//! ```text
//! [0..4)  payload length (u32)
//! [4..8)  crc32 of the payload (u32)
//! [8..)   payload
//! ```
//!
//! Intent payload: tag `1`, seq (u64), iteration (u64), is_full (u8),
//! content crc (u32). Commit payload: tag `2`, seq (u64). A torn tail —
//! the record being appended when the process died — fails the length or
//! CRC check and is ignored; everything before it is trusted. The
//! journal lives in the session's store directory under a name the store
//! listing ignores, and is truncated whenever every recorded intent is
//! known to be resolved (recovery, or the in-memory outstanding count
//! reaching zero past a size threshold), so it cannot grow without
//! bound.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use numarck::serialize as nser;
use numarck_checkpoint::backend::StorageBackend;

/// File name of the journal inside a session's store directory. No
/// `ckpt_` prefix, so `CheckpointStore::list` never mistakes it for a
/// checkpoint.
pub const JOURNAL_FILE: &str = "intent.journal";

/// Once the journal passes this size with no outstanding intents, it is
/// compacted back to empty.
const COMPACT_BYTES: u64 = 64 * 1024;

const TAG_INTENT: u8 = 1;
const TAG_COMMIT: u8 = 2;

/// One journaled intent: a checkpoint the server promised to write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntentRecord {
    /// Monotonic per-journal sequence number.
    pub seq: u64,
    /// The iteration the checkpoint captures.
    pub iteration: u64,
    /// Whether the file is a full checkpoint (`.full`) or a delta.
    pub is_full: bool,
    /// CRC32 of the exact bytes the store write will produce.
    pub content_crc: u32,
}

/// A session's write-ahead intent journal.
#[derive(Debug)]
pub struct IntentJournal {
    backend: Arc<dyn StorageBackend>,
    path: PathBuf,
    next_seq: u64,
    outstanding: usize,
    approx_len: u64,
}

impl IntentJournal {
    /// Open the journal in `store_dir`, replaying whatever it holds.
    ///
    /// Returns the journal (positioned after the highest recorded
    /// sequence number) and the intents that have no commit record — in
    /// append order — for recovery to resolve. A missing file is an
    /// empty journal; a torn tail is tolerated (see module docs).
    pub fn open(
        store_dir: &Path,
        backend: Arc<dyn StorageBackend>,
    ) -> io::Result<(Self, Vec<IntentRecord>)> {
        let path = store_dir.join(JOURNAL_FILE);
        let bytes = match backend.read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let mut outstanding: Vec<IntentRecord> = Vec::new();
        let mut next_seq = 1u64;
        let mut cursor = &bytes[..];
        while cursor.len() >= 8 {
            let len = u32::from_le_bytes(cursor[0..4].try_into().expect("4 bytes")) as usize;
            let stored_crc = u32::from_le_bytes(cursor[4..8].try_into().expect("4 bytes"));
            if cursor.len() < 8 + len {
                break; // torn tail: the append that died mid-record
            }
            let payload = &cursor[8..8 + len];
            if nser::crc32(payload) != stored_crc {
                break; // torn or corrupt tail; nothing after it is trusted
            }
            match parse_payload(payload) {
                Some(Entry::Intent(rec)) => {
                    next_seq = next_seq.max(rec.seq + 1);
                    outstanding.push(rec);
                }
                Some(Entry::Commit { seq }) => {
                    next_seq = next_seq.max(seq + 1);
                    outstanding.retain(|r| r.seq != seq);
                }
                None => break, // unknown tag: written by a future version
            }
            cursor = &cursor[8 + len..];
        }
        let journal = Self {
            backend,
            path,
            next_seq,
            outstanding: outstanding.len(),
            approx_len: bytes.len() as u64,
        };
        Ok((journal, outstanding))
    }

    /// Where the journal lives.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Intents appended but not yet committed (in-memory view).
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// True when the journal holds no bytes at all — nothing to replay,
    /// nothing worth truncating.
    pub fn is_empty(&self) -> bool {
        self.approx_len == 0
    }

    /// Record the intent to write a checkpoint: append + fsync, then
    /// return the sequence number to pass to [`Self::commit`]. Must be
    /// called **before** the store write it describes.
    pub fn begin(&mut self, iteration: u64, is_full: bool, content_crc: u32) -> io::Result<u64> {
        let seq = self.next_seq;
        let mut payload = Vec::with_capacity(22);
        payload.push(TAG_INTENT);
        payload.extend_from_slice(&seq.to_le_bytes());
        payload.extend_from_slice(&iteration.to_le_bytes());
        payload.push(u8::from(is_full));
        payload.extend_from_slice(&content_crc.to_le_bytes());
        self.append_record(&payload)?;
        self.next_seq = seq + 1;
        self.outstanding += 1;
        Ok(seq)
    }

    /// Record that the store write for `seq` landed (rename + dir sync
    /// done). Compacts the journal when nothing is outstanding and it
    /// has grown past the size threshold.
    pub fn commit(&mut self, seq: u64) -> io::Result<()> {
        let mut payload = Vec::with_capacity(9);
        payload.push(TAG_COMMIT);
        payload.extend_from_slice(&seq.to_le_bytes());
        self.append_record(&payload)?;
        self.outstanding = self.outstanding.saturating_sub(1);
        if self.outstanding == 0 && self.approx_len > COMPACT_BYTES {
            self.reset()?;
        }
        Ok(())
    }

    /// Truncate the journal to empty. Only safe when every recorded
    /// intent is known to be resolved (committed, completed by recovery,
    /// or rolled back).
    pub fn reset(&mut self) -> io::Result<()> {
        self.backend.write(&self.path, &[])?;
        self.outstanding = 0;
        self.approx_len = 0;
        Ok(())
    }

    fn append_record(&mut self, payload: &[u8]) -> io::Result<()> {
        let mut record = Vec::with_capacity(8 + payload.len());
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&nser::crc32(payload).to_le_bytes());
        record.extend_from_slice(payload);
        self.backend.append(&self.path, &record)?;
        self.approx_len += record.len() as u64;
        Ok(())
    }
}

/// Background compaction writes go through the same write-ahead intent
/// path as live ingest: an intent recorded by the compactor is
/// indistinguishable from an ingest intent to crash recovery, which is
/// exactly the point.
impl numarck_compact::IntentLog for IntentJournal {
    fn begin(&mut self, iteration: u64, is_full: bool, content_crc: u32) -> io::Result<u64> {
        IntentJournal::begin(self, iteration, is_full, content_crc)
    }
    fn commit(&mut self, seq: u64) -> io::Result<()> {
        IntentJournal::commit(self, seq)
    }
}

enum Entry {
    Intent(IntentRecord),
    Commit { seq: u64 },
}

fn parse_payload(payload: &[u8]) -> Option<Entry> {
    match *payload.first()? {
        TAG_INTENT if payload.len() == 22 => Some(Entry::Intent(IntentRecord {
            seq: u64::from_le_bytes(payload[1..9].try_into().expect("8 bytes")),
            iteration: u64::from_le_bytes(payload[9..17].try_into().expect("8 bytes")),
            is_full: payload[17] != 0,
            content_crc: u32::from_le_bytes(payload[18..22].try_into().expect("4 bytes")),
        })),
        TAG_COMMIT if payload.len() == 9 => Some(Entry::Commit {
            seq: u64::from_le_bytes(payload[1..9].try_into().expect("8 bytes")),
        }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numarck_checkpoint::FsBackend;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            let path = std::env::temp_dir().join(format!(
                "numarck-journal-{tag}-{}-{}",
                std::process::id(),
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .expect("clock after epoch")
                    .as_nanos()
            ));
            std::fs::create_dir_all(&path).expect("create temp dir");
            Self(path)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn open(dir: &Path) -> (IntentJournal, Vec<IntentRecord>) {
        IntentJournal::open(dir, Arc::new(FsBackend)).unwrap()
    }

    #[test]
    fn empty_journal_has_no_outstanding_intents() {
        let tmp = TempDir::new("empty");
        let (journal, outstanding) = open(&tmp.0);
        assert!(outstanding.is_empty());
        assert_eq!(journal.outstanding(), 0);
    }

    #[test]
    fn committed_intents_are_not_replayed() {
        let tmp = TempDir::new("committed");
        {
            let (mut journal, _) = open(&tmp.0);
            let s1 = journal.begin(0, true, 0xAAAA).unwrap();
            journal.commit(s1).unwrap();
            let s2 = journal.begin(1, false, 0xBBBB).unwrap();
            journal.commit(s2).unwrap();
        }
        let (journal, outstanding) = open(&tmp.0);
        assert!(outstanding.is_empty());
        assert_eq!(journal.outstanding(), 0);
    }

    #[test]
    fn uncommitted_intent_survives_reopen() {
        let tmp = TempDir::new("uncommitted");
        {
            let (mut journal, _) = open(&tmp.0);
            let s1 = journal.begin(0, true, 0x1111).unwrap();
            journal.commit(s1).unwrap();
            journal.begin(1, false, 0x2222).unwrap();
            // Process "dies" before commit.
        }
        let (mut journal, outstanding) = open(&tmp.0);
        assert_eq!(
            outstanding,
            vec![IntentRecord { seq: 2, iteration: 1, is_full: false, content_crc: 0x2222 }]
        );
        // Sequence numbers continue past everything recorded.
        assert_eq!(journal.begin(2, false, 0x3333).unwrap(), 3);
    }

    #[test]
    fn torn_tail_is_ignored_but_earlier_records_survive() {
        let tmp = TempDir::new("torn");
        {
            let (mut journal, _) = open(&tmp.0);
            journal.begin(5, true, 0x5555).unwrap();
        }
        // Simulate a crash mid-append: half a record of garbage.
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(tmp.0.join(JOURNAL_FILE))
            .unwrap();
        f.write_all(&[22, 0, 0, 0, 0xDE, 0xAD]).unwrap();
        drop(f);
        let (_, outstanding) = open(&tmp.0);
        assert_eq!(outstanding.len(), 1);
        assert_eq!(outstanding[0].iteration, 5);
    }

    #[test]
    fn corrupt_record_crc_stops_replay_at_the_damage() {
        let tmp = TempDir::new("crc");
        {
            let (mut journal, _) = open(&tmp.0);
            let s = journal.begin(0, true, 0x1).unwrap();
            journal.commit(s).unwrap();
            journal.begin(1, false, 0x2).unwrap();
        }
        // Flip a payload byte of the *last* record.
        let path = tmp.0.join(JOURNAL_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let (_, outstanding) = open(&tmp.0);
        // The damaged intent is not trusted; the committed one stays
        // resolved.
        assert!(outstanding.is_empty());
    }

    #[test]
    fn reset_empties_the_journal() {
        let tmp = TempDir::new("reset");
        {
            let (mut journal, _) = open(&tmp.0);
            journal.begin(0, true, 0x1).unwrap();
            journal.reset().unwrap();
        }
        let (_, outstanding) = open(&tmp.0);
        assert!(outstanding.is_empty());
    }

    #[test]
    fn journal_compacts_once_everything_is_committed() {
        let tmp = TempDir::new("compact");
        let (mut journal, _) = open(&tmp.0);
        // Push well past the threshold; every intent is committed, so
        // the size must come back down instead of growing forever.
        for i in 0..3000u64 {
            let s = journal.begin(i, false, i as u32).unwrap();
            journal.commit(s).unwrap();
        }
        let len = std::fs::metadata(tmp.0.join(JOURNAL_FILE)).unwrap().len();
        assert!(len < COMPACT_BYTES, "journal did not compact: {len} bytes");
    }
}
