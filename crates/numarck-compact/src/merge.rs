//! Bit-exact delta merging.
//!
//! A merged delta replaces k consecutive plain deltas with one file
//! whose replay from the base state reproduces — **bit for bit** — the
//! state the original chain replay produced. That property is achieved
//! by construction, not by hoping the tolerance math works out:
//!
//! * a point whose final value is bit-identical to its base value is
//!   stored as index 0 (the decoder blends `prev` through verbatim, so
//!   NaN payloads and signed zeros survive);
//! * otherwise the *composed* change ratio `r = final/base − 1` is a
//!   candidate **only if** replaying it is exactly invertible:
//!   `base · (1 + r)` must equal `final` bit for bit. This is the
//!   ratio-composition path — no second quantization error, because the
//!   stored ratio is derived from the already-quantized endpoints, not
//!   re-quantized against a fresh table;
//! * every other point — non-finite composed ratio, a zero base, a
//!   rounding mismatch, or a candidate ratio that did not make the
//!   size-`2^B − 1` table — is escaped to an exact 8-byte copy of the
//!   final value. This is the re-encode path, and it is what keeps the
//!   equivalence unconditional.
//!
//! The caller then verifies the whole artefact end to end: the merged
//! file is serialised, re-parsed, and replayed against the base state,
//! and the result is bit-compared with the original chain's replay
//! before anything touches the store (see
//! [`crate::policy::Compactor`]).

use std::collections::BTreeMap;
use std::collections::HashMap;

use numarck::decode;
use numarck::encode::{pack_codes_serial, CompressedIteration, ESCAPE};
use numarck::error::NumarckError;
use numarck::table::BinTable;
use numarck_checkpoint::format::{CheckpointFile, CheckpointKind};
use numarck_checkpoint::restart::RestartEngine;
use numarck_checkpoint::store::CheckpointStore;
use numarck_checkpoint::VariableSet;

/// How a merged block's points were stored.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeStats {
    /// Points bit-identical to the base (index 0).
    pub unchanged: usize,
    /// Points stored through the exact composed ratio.
    pub ratio_coded: usize,
    /// Points escaped to exact values (the re-encode path).
    pub escaped: usize,
}

impl MergeStats {
    fn absorb(&mut self, other: MergeStats) {
        self.unchanged += other.unchanged;
        self.ratio_coded += other.ratio_coded;
        self.escaped += other.escaped;
    }
}

/// Build one variable's merged block from its base and final states.
///
/// The returned block decodes from `base` to exactly `fin` (enforced
/// here with the sequential oracle decoder; callers re-verify through
/// the serialised bytes). `tolerance` is metadata only — the composed
/// error bound of the replaced chain segment against the simulation
/// truth; the merge itself introduces no error at all relative to the
/// original chain.
pub fn build_merged_block(
    base: &[f64],
    fin: &[f64],
    bits: u8,
    tolerance: f64,
) -> Result<(CompressedIteration, MergeStats), NumarckError> {
    if base.len() != fin.len() {
        return Err(NumarckError::LengthMismatch { prev: base.len(), curr: fin.len() });
    }
    if !(1..=16).contains(&bits) {
        return Err(NumarckError::InvalidConfig(format!("merge bits {bits} out of 1..=16")));
    }
    let n = base.len();
    let max_table = (1usize << bits) - 1;

    #[derive(Clone, Copy)]
    enum Class {
        Unchanged,
        Ratio(u64),
        Escape,
    }

    let mut classes = Vec::with_capacity(n);
    let mut freq: HashMap<u64, u64> = HashMap::new();
    for j in 0..n {
        let (b, f) = (base[j], fin[j]);
        let class = if f.to_bits() == b.to_bits() {
            Class::Unchanged
        } else {
            let r = f / b - 1.0;
            // A zero ratio can only reproduce `f == b` bitwise, which the
            // branch above already took; excluding it keeps every table
            // candidate a distinct finite nonzero value, so bit pattern
            // and numeric value identify entries interchangeably.
            if r.is_finite() && r != 0.0 && (b * (1.0 + r)).to_bits() == f.to_bits() {
                *freq.entry(r.to_bits()).or_insert(0) += 1;
                Class::Ratio(r.to_bits())
            } else {
                Class::Escape
            }
        };
        classes.push(class);
    }

    // Most frequent composed ratios win the table; ties break on value
    // so the table is deterministic. Candidates that miss the cut fall
    // back to the escape path.
    let mut by_freq: Vec<(u64, u64)> = freq.into_iter().collect();
    by_freq.sort_by(|a, b| {
        b.1.cmp(&a.1).then_with(|| f64::from_bits(a.0).total_cmp(&f64::from_bits(b.0)))
    });
    let reps: Vec<f64> = by_freq.iter().take(max_table).map(|&(rb, _)| f64::from_bits(rb)).collect();
    let table = BinTable::new(reps);
    let code_of: HashMap<u64, u32> = table
        .representatives()
        .iter()
        .enumerate()
        .map(|(i, r)| (r.to_bits(), i as u32 + 1))
        .collect();

    let mut stats = MergeStats::default();
    let codes: Vec<u32> = classes
        .iter()
        .map(|c| match c {
            Class::Unchanged => {
                stats.unchanged += 1;
                0
            }
            Class::Ratio(rb) => match code_of.get(rb) {
                Some(&code) => {
                    stats.ratio_coded += 1;
                    code
                }
                None => {
                    stats.escaped += 1;
                    ESCAPE
                }
            },
            Class::Escape => {
                stats.escaped += 1;
                ESCAPE
            }
        })
        .collect();

    let packed = pack_codes_serial(&codes, fin, bits);
    let block = CompressedIteration {
        bits,
        tolerance,
        num_points: n,
        table,
        bitmap: packed.bitmap,
        index_words: packed.index_words,
        num_compressible: packed.num_compressible,
        exact_values: packed.exact_values,
    };
    let replayed = decode::reconstruct_seq(base, &block)?;
    if !bits_equal(&replayed, fin) {
        return Err(NumarckError::Corrupt(
            "merged block failed its bit-exactness self-check".into(),
        ));
    }
    Ok((block, stats))
}

/// Bitwise equality of two f64 slices (NaN payloads and signed zeros
/// included).
pub fn bits_equal(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Bitwise equality of two variable sets.
pub fn vars_bits_equal(a: &VariableSet, b: &VariableSet) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b.iter())
            .all(|((an, av), (bn, bv))| an == bn && bits_equal(av, bv))
}

/// A merged delta built and verified in memory, not yet written.
#[derive(Debug)]
pub struct MergedDelta {
    /// The merged checkpoint file (a delta at `end` with span `span`).
    pub file: CheckpointFile,
    /// Its exact serialised bytes (what a store write must produce).
    pub bytes: Vec<u8>,
    /// CRC32 of `bytes`, for the write-ahead intent journal.
    pub content_crc: u32,
    /// Aggregated per-point accounting across variables.
    pub stats: MergeStats,
    /// The replayed state at `end` the merged chain must reproduce.
    pub expected: VariableSet,
}

/// Merge the deltas `(end − span, end]` of the chain in `store` into
/// one span-`span` delta at `end`, verified end to end.
///
/// Both endpoint states are obtained by replaying the *current* chain,
/// so the merged delta reproduces exactly what a restart reproduces
/// today — quantization error already baked into the chain and all.
/// Before returning, the serialised bytes are re-parsed and replayed
/// against the base state and bit-compared with the original replay;
/// an artefact that fails that proof never reaches the caller.
pub fn merge_window(
    store: &CheckpointStore,
    end: u64,
    span: u64,
) -> Result<MergedDelta, NumarckError> {
    if span < 2 {
        return Err(NumarckError::InvalidConfig(format!("merge span {span} must be >= 2")));
    }
    if span > end {
        return Err(NumarckError::InvalidConfig(format!(
            "merge span {span} reaches past the start of the chain to {end}"
        )));
    }
    if span > u64::from(u32::MAX) {
        return Err(NumarckError::InvalidConfig(format!("merge span {span} exceeds u32")));
    }
    let engine = RestartEngine::new(store.clone());
    let base = engine.restart_at(end - span)?.vars;
    let fin = engine.restart_at(end)?.vars;
    if base.len() != fin.len() || !base.keys().zip(fin.keys()).all(|(a, b)| a == b) {
        return Err(NumarckError::Corrupt(format!(
            "variable sets differ between iterations {} and {end}",
            end - span
        )));
    }

    // Metadata: compose the replaced segment's error bounds and carry
    // the widest index width forward.
    let mut composed_tol = 1.0f64;
    let mut bits = 0u8;
    for it in (end - span + 1)..=end {
        if let Ok(file) = store.read(it, false) {
            if let CheckpointKind::Delta(blocks) = file.kind {
                let mut seg_tol = 0.0f64;
                for block in blocks.values() {
                    seg_tol = seg_tol.max(block.tolerance);
                    bits = bits.max(block.bits);
                }
                composed_tol *= 1.0 + seg_tol;
            }
        }
    }
    let tolerance = composed_tol - 1.0;
    let bits = if bits == 0 { 8 } else { bits };

    let mut blocks = BTreeMap::new();
    let mut stats = MergeStats::default();
    for (name, base_vals) in &base {
        let fin_vals = &fin[name];
        let (block, st) = build_merged_block(base_vals, fin_vals, bits, tolerance)?;
        stats.absorb(st);
        blocks.insert(name.clone(), block);
    }
    let file = CheckpointFile::merged_delta(end, blocks, span as u32);
    let bytes = file.to_bytes();
    let content_crc = numarck::serialize::crc32(&bytes);

    // The proof: parse the exact bytes a write would land and replay
    // them. Anything short of bit equality is a construction bug and
    // must never be written.
    let parsed = CheckpointFile::from_bytes(&bytes)?;
    let parsed_blocks = match parsed.kind {
        CheckpointKind::Delta(blocks) => blocks,
        CheckpointKind::Full(_) => {
            return Err(NumarckError::Corrupt("merged delta re-parsed as a full".into()))
        }
    };
    let mut replayed = VariableSet::new();
    for (name, block) in &parsed_blocks {
        replayed.insert(name.clone(), decode::reconstruct(&base[name], block)?);
    }
    if !vars_bits_equal(&replayed, &fin) {
        return Err(NumarckError::Corrupt(format!(
            "merged delta at {end} (span {span}) failed end-to-end bit-exactness verification"
        )));
    }
    Ok(MergedDelta { file, bytes, content_crc, stats, expected: fin })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unchanged_points_survive_nan_and_signed_zero() {
        let base = vec![1.0, f64::NAN, -0.0, 0.0, f64::INFINITY];
        let fin = base.clone();
        let (block, st) = build_merged_block(&base, &fin, 8, 0.001).unwrap();
        assert_eq!(st, MergeStats { unchanged: 5, ratio_coded: 0, escaped: 0 });
        let out = decode::reconstruct_seq(&base, &block).unwrap();
        assert!(bits_equal(&out, &fin));
    }

    #[test]
    fn composed_ratios_are_bit_exact() {
        // A shared growth factor: every point should ratio-code.
        let base: Vec<f64> = (0..4096).map(|i| 1.0 + (i % 17) as f64).collect();
        let fin: Vec<f64> = base.iter().map(|v| v * 1.0625).collect(); // exact in binary
        let (block, st) = build_merged_block(&base, &fin, 8, 0.001).unwrap();
        assert_eq!(st.escaped, 0, "dyadic growth must ratio-code entirely");
        assert!(st.ratio_coded > 0);
        let out = decode::reconstruct_seq(&base, &block).unwrap();
        assert!(bits_equal(&out, &fin));
    }

    #[test]
    fn non_invertible_points_escape() {
        // Zero and non-finite bases cannot ratio-code; irrational-ish
        // updates may or may not round-trip — either way the result is
        // bit-exact because the fallback is an exact copy.
        let base = vec![0.0, -0.0, f64::NAN, 1.0, 3.0];
        let fin = vec![5.0, 7.0, 2.0, std::f64::consts::PI, 3.0 * (1.0 + 1e-17)];
        let (block, _) = build_merged_block(&base, &fin, 8, 0.001).unwrap();
        let out = decode::reconstruct_seq(&base, &block).unwrap();
        assert!(bits_equal(&out, &fin));
    }

    #[test]
    fn table_overflow_escapes_the_overflow() {
        // 2-bit table: 3 entries. 10 distinct ratios -> 7 must escape
        // per point class, yet the decode stays bit-exact.
        let n = 1000;
        let base: Vec<f64> = (0..n).map(|i| 1.0 + (i % 13) as f64).collect();
        let fin: Vec<f64> =
            base.iter().enumerate().map(|(i, v)| v * (1.0 + 0.01 * ((i % 10) as f64 + 1.0))).collect();
        let (block, st) = build_merged_block(&base, &fin, 2, 0.2).unwrap();
        assert!(block.table.len() <= 3);
        assert!(st.escaped > 0, "overflow ratios must escape");
        let out = decode::reconstruct_seq(&base, &block).unwrap();
        assert!(bits_equal(&out, &fin));
    }

    #[test]
    fn length_mismatch_is_loud() {
        assert!(build_merged_block(&[1.0], &[1.0, 2.0], 8, 0.001).is_err());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// The construction invariant, adversarially: any base/final
            /// pair — including zeros, huge magnitude jumps, and values
            /// that defeat ratio inversion — must decode bit-exactly.
            #[test]
            fn merged_block_is_always_bit_exact(
                base in proptest::collection::vec(
                    prop_oneof![
                        Just(0.0f64), Just(-0.0), 0.001f64..1e6, -1e6f64..-0.001
                    ],
                    1..300
                ),
                rates in proptest::collection::vec(-0.9f64..4.0, 1..300),
                bits in 2u8..10
            ) {
                let n = base.len().min(rates.len());
                let base = &base[..n];
                let fin: Vec<f64> = (0..n)
                    .map(|i| if i % 7 == 0 { base[i] } else { base[i] * (1.0 + rates[i]) })
                    .collect();
                let (block, _) = build_merged_block(base, &fin, bits, 0.01).unwrap();
                let out = decode::reconstruct_seq(base, &block).unwrap();
                prop_assert!(bits_equal(&out, &fin));
                // And through the serialised form, too.
                let bytes = numarck::serialize::to_bytes(&block);
                let back = numarck::serialize::from_bytes(&bytes).unwrap();
                let out2 = decode::reconstruct(base, &back).unwrap();
                prop_assert!(bits_equal(&out2, &fin));
            }
        }
    }
}
