/root/repo/target/debug/deps/climate_sim-2e96178d9a0d52df.d: crates/climate-sim/src/lib.rs crates/climate-sim/src/dataset.rs crates/climate-sim/src/field.rs crates/climate-sim/src/grid.rs crates/climate-sim/src/variables.rs

/root/repo/target/debug/deps/libclimate_sim-2e96178d9a0d52df.rmeta: crates/climate-sim/src/lib.rs crates/climate-sim/src/dataset.rs crates/climate-sim/src/field.rs crates/climate-sim/src/grid.rs crates/climate-sim/src/variables.rs

crates/climate-sim/src/lib.rs:
crates/climate-sim/src/dataset.rs:
crates/climate-sim/src/field.rs:
crates/climate-sim/src/grid.rs:
crates/climate-sim/src/variables.rs:
