/root/repo/target/debug/deps/all_experiments-c836cb30efd4786c.d: crates/numarck-bench/src/bin/all_experiments.rs

/root/repo/target/debug/deps/all_experiments-c836cb30efd4786c: crates/numarck-bench/src/bin/all_experiments.rs

crates/numarck-bench/src/bin/all_experiments.rs:
