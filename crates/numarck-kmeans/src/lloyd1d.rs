//! 1-D Lloyd's algorithm specialised for NUMARCK's change-ratio stream.
//!
//! With centres kept sorted, the Voronoi cells of 1-D K-means are
//! intervals whose boundaries are the midpoints between adjacent centres,
//! so nearest-centre assignment is a binary search over `k − 1` midpoints.
//! For the paper's `k = 255/511` this turns the O(n·k) assignment step into
//! O(n·log k) — the difference between the clustering strategy being
//! usable in-situ or not.

use rayon::prelude::*;

use numarck_par::chunk::chunk_size_for;

use crate::init::{initial_centers, Init1D};
use crate::KMeansOptions;

/// Sorted centres plus precomputed midpoints; provides O(log k)
/// nearest-centre queries. This is also the assignment structure the
/// NUMARCK encoder uses to map change ratios to table indices, so it lives
/// here and is shared.
#[derive(Debug, Clone, PartialEq)]
pub struct SortedCenters {
    centers: Vec<f64>,
    midpoints: Vec<f64>,
}

impl SortedCenters {
    /// Build from centres (sorted internally; duplicates removed).
    ///
    /// # Panics
    /// Panics if any centre is non-finite.
    pub fn new(mut centers: Vec<f64>) -> Self {
        assert!(centers.iter().all(|c| c.is_finite()), "centres must be finite");
        centers.sort_by(|a, b| a.partial_cmp(b).unwrap());
        centers.dedup();
        let midpoints = midpoints_of(&centers);
        Self { centers, midpoints }
    }

    /// The sorted centres.
    #[inline]
    pub fn centers(&self) -> &[f64] {
        &self.centers
    }

    /// Number of centres.
    #[inline]
    pub fn len(&self) -> usize {
        self.centers.len()
    }

    /// True when there are no centres.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.centers.is_empty()
    }

    /// Index of the centre nearest to `x` (ties resolve to the lower
    /// index).
    ///
    /// # Panics
    /// Panics if there are no centres.
    #[inline]
    pub fn nearest(&self, x: f64) -> usize {
        assert!(!self.centers.is_empty(), "nearest() on empty centre set");
        // Number of midpoints strictly below x == index of x's interval.
        self.midpoints.partition_point(|&m| m < x)
    }

    /// Nearest centre value for `x`.
    #[inline]
    pub fn nearest_value(&self, x: f64) -> f64 {
        self.centers[self.nearest(x)]
    }

    /// Nearest-centre index for every query in `xs`, written to `out`.
    ///
    /// Bit-identical to calling [`Self::nearest`] per point (same
    /// tie-to-lower-index rule) but runs the batched lower-bound lane
    /// kernel over the midpoints — multiple independent binary searches
    /// advance per step instead of one.
    ///
    /// # Panics
    /// Panics if there are no centres or the slices disagree in length.
    pub fn nearest_batch(&self, xs: &[f64], out: &mut [u32]) {
        assert!(!self.centers.is_empty(), "nearest_batch() on empty centre set");
        numarck_simd::quantize::lower_bound_batch(&self.midpoints, xs, out);
    }
}

fn midpoints_of(centers: &[f64]) -> Vec<f64> {
    centers.windows(2).map(|w| 0.5 * (w[0] + w[1])).collect()
}

/// Result of a 1-D K-means run.
#[derive(Debug, Clone)]
pub struct KMeans1DResult {
    /// Final sorted centres (may be fewer than requested `k` when the data
    /// has few distinct values).
    pub centers: SortedCenters,
    /// Points per cluster, aligned with `centers`.
    pub counts: Vec<u64>,
    /// Final cluster index per input point.
    pub assignments: Vec<u32>,
    /// Lloyd iterations executed.
    pub iterations: usize,
    /// Sum of squared distances to assigned centres.
    pub inertia: f64,
    /// Whether the membership-change criterion was met before the
    /// iteration cap.
    pub converged: bool,
}

/// 1-D K-means runner.
#[derive(Debug, Clone)]
pub struct KMeans1D {
    /// Requested number of clusters.
    pub k: usize,
    /// Initialisation method.
    pub init: Init1D,
    /// Iteration/convergence options.
    pub opts: KMeansOptions,
}

impl KMeans1D {
    /// Runner with the paper's defaults (histogram seeding).
    pub fn new(k: usize) -> Self {
        Self { k, init: Init1D::Histogram, opts: KMeansOptions::default() }
    }

    /// Override the initialiser.
    pub fn with_init(mut self, init: Init1D) -> Self {
        self.init = init;
        self
    }

    /// Override the options.
    pub fn with_options(mut self, opts: KMeansOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Cluster `data`. Empty input yields an empty result.
    pub fn fit(&self, data: &[f64]) -> KMeans1DResult {
        assert!(self.k >= 1, "k must be >= 1");
        if data.is_empty() {
            return KMeans1DResult {
                centers: SortedCenters::new(Vec::new()),
                counts: Vec::new(),
                assignments: Vec::new(),
                iterations: 0,
                inertia: 0.0,
                converged: true,
            };
        }
        let init = initial_centers(self.init, data, self.k, self.opts.seed);
        let mut centers = SortedCenters::new(init);
        let mut assignments: Vec<u32> = vec![0; data.len()];
        let mut converged = false;
        let mut iterations = 0;

        // First assignment pass.
        assign_par(&centers, data, &mut assignments);

        while iterations < self.opts.max_iterations {
            iterations += 1;
            // Update: per-chunk partial (sum, count) per cluster, merged in
            // chunk order for determinism.
            let (sums, counts) = partial_sums(&centers, data, &assignments);
            let mut new_centers = Vec::with_capacity(centers.len());
            for (i, (&s, &c)) in sums.iter().zip(&counts).enumerate() {
                if c > 0 {
                    new_centers.push(s / c as f64);
                } else {
                    // Empty cluster: keep the old centre (deterministic;
                    // it can be re-adopted by points in later iterations).
                    new_centers.push(centers.centers()[i]);
                }
            }
            let next = SortedCenters::new(new_centers);
            // Reassign and count membership changes.
            let changed = reassign_count_changes(&next, data, &mut assignments);
            centers = next;
            if (changed as f64) / (data.len() as f64) < self.opts.change_threshold {
                converged = true;
                break;
            }
        }

        // Final bookkeeping pass against the final centres.
        assign_par(&centers, data, &mut assignments);
        let (_, counts) = partial_sums(&centers, data, &assignments);
        // Drop clusters that ended empty (kept-alive old centres that no
        // point adopted): they would waste representative-table slots
        // downstream. Removing a memberless centre cannot change any
        // point's nearest choice among the survivors... except for points
        // whose tie previously resolved to it, so reassign to be safe.
        if counts.contains(&0) {
            let kept: Vec<f64> = centers
                .centers()
                .iter()
                .zip(&counts)
                .filter(|(_, &c)| c > 0)
                .map(|(&v, _)| v)
                .collect();
            centers = SortedCenters::new(kept);
            assign_par(&centers, data, &mut assignments);
        }
        let (_, counts) = partial_sums(&centers, data, &assignments);
        let inertia = inertia_par(&centers, data, &assignments);
        KMeans1DResult { centers, counts, assignments, iterations, inertia, converged }
    }
}

/// Fixed chunk granularity for the floating-point reductions.
///
/// Using a thread-count-*independent* decomposition (instead of
/// `chunk_size_for`, which divides by the pool width) makes every
/// partial-sum merge order — and therefore the fitted centres and the
/// representative tables built from them — bit-identical for any number
/// of threads. Rayon still spreads the fixed-size chunks across the pool.
const DET_CHUNK: usize = 16 * 1024;

/// Block width for batched nearest-centre lookups: scratch for one block
/// of assignments stays on the stack and L1-resident.
const ASSIGN_BLOCK: usize = 1024;

fn assign_par(centers: &SortedCenters, data: &[f64], out: &mut [u32]) {
    debug_assert_eq!(data.len(), out.len());
    if centers.is_empty() {
        return;
    }
    let chunk = chunk_size_for(data.len());
    out.par_chunks_mut(chunk).zip(data.par_chunks(chunk)).for_each(|(o, d)| {
        centers.nearest_batch(d, o);
    });
}

/// Reassign all points to `centers`, returning how many changed cluster.
fn reassign_count_changes(centers: &SortedCenters, data: &[f64], assignments: &mut [u32]) -> usize {
    let chunk = chunk_size_for(data.len());
    assignments
        .par_chunks_mut(chunk)
        .zip(data.par_chunks(chunk))
        .map(|(a, d)| {
            let mut changed = 0usize;
            let mut buf = [0u32; ASSIGN_BLOCK];
            for (ab, db) in a.chunks_mut(ASSIGN_BLOCK).zip(d.chunks(ASSIGN_BLOCK)) {
                let m = db.len();
                centers.nearest_batch(db, &mut buf[..m]);
                for (ai, &n) in ab.iter_mut().zip(&buf[..m]) {
                    if n != *ai {
                        changed += 1;
                        *ai = n;
                    }
                }
            }
            changed
        })
        .sum()
}

/// Per-cluster sums and counts, chunk-parallel with ordered merge over a
/// thread-count-independent decomposition (see [`DET_CHUNK`]).
fn partial_sums(centers: &SortedCenters, data: &[f64], assignments: &[u32]) -> (Vec<f64>, Vec<u64>) {
    let k = centers.len();
    let partials: Vec<(Vec<f64>, Vec<u64>)> = data
        .par_chunks(DET_CHUNK)
        .zip(assignments.par_chunks(DET_CHUNK))
        .map(|(d, a)| {
            let mut sums = vec![0.0f64; k];
            let mut counts = vec![0u64; k];
            for (&x, &ci) in d.iter().zip(a) {
                sums[ci as usize] += x;
                counts[ci as usize] += 1;
            }
            (sums, counts)
        })
        .collect();
    let mut sums = vec![0.0f64; k];
    let mut counts = vec![0u64; k];
    for (ps, pc) in &partials {
        for i in 0..k {
            sums[i] += ps[i];
            counts[i] += pc[i];
        }
    }
    (sums, counts)
}

fn inertia_par(centers: &SortedCenters, data: &[f64], assignments: &[u32]) -> f64 {
    let partials: Vec<f64> = data
        .par_chunks(DET_CHUNK)
        .zip(assignments.par_chunks(DET_CHUNK))
        .map(|(d, a)| {
            let mut s = 0.0;
            for (&x, &ci) in d.iter().zip(a) {
                let dx = x - centers.centers()[ci as usize];
                s += dx * dx;
            }
            s
        })
        .collect();
    // Ordered merge: inertia is reproducible for any thread count.
    partials.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_centers_nearest_basic() {
        let sc = SortedCenters::new(vec![0.0, 10.0, 20.0]);
        assert_eq!(sc.nearest(-5.0), 0);
        assert_eq!(sc.nearest(4.9), 0);
        assert_eq!(sc.nearest(5.1), 1);
        assert_eq!(sc.nearest(14.9), 1);
        assert_eq!(sc.nearest(15.1), 2);
        assert_eq!(sc.nearest(100.0), 2);
    }

    #[test]
    fn nearest_tie_goes_to_lower_index() {
        let sc = SortedCenters::new(vec![0.0, 10.0]);
        assert_eq!(sc.nearest(5.0), 0);
    }

    #[test]
    fn nearest_matches_linear_scan() {
        let sc = SortedCenters::new(vec![-3.0, -1.0, 0.5, 2.0, 8.0, 8.5]);
        for i in -100..200 {
            let x = i as f64 * 0.1;
            let fast = sc.nearest(x);
            let slow = sc
                .centers()
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    (x - **a).abs().partial_cmp(&(x - **b).abs()).unwrap()
                })
                .map(|(i, _)| i)
                .unwrap();
            let fd = (x - sc.centers()[fast]).abs();
            let sd = (x - sc.centers()[slow]).abs();
            assert!(
                (fd - sd).abs() < 1e-12,
                "x={x}: fast idx {fast} (d={fd}) vs slow idx {slow} (d={sd})"
            );
        }
    }

    #[test]
    fn nearest_batch_matches_nearest_per_point() {
        // Lane-boundary sizes and awkward queries (ties, ±inf, NaN are
        // excluded by construction upstream but extremes are not).
        let sc = SortedCenters::new(vec![-3.0, -1.0, 0.5, 2.0, 8.0, 8.5]);
        for n in [0usize, 1, 3, 7, 8, 9, 63, 64, 65, 257] {
            let xs: Vec<f64> = (0..n)
                .map(|i| match i % 5 {
                    0 => -1e30,
                    1 => 1e30,
                    2 => 0.75, // exact midpoint of two centres: tie
                    _ => (i as f64) * 0.37 - 6.0,
                })
                .collect();
            let mut out = vec![0u32; n];
            sc.nearest_batch(&xs, &mut out);
            for (j, &x) in xs.iter().enumerate() {
                assert_eq!(out[j] as usize, sc.nearest(x), "n={n} j={j} x={x}");
            }
        }
    }

    #[test]
    fn fit_is_thread_count_invariant() {
        // The ordered fixed-chunk merges must make the fitted centres,
        // counts and inertia bit-identical for any pool width.
        let data: Vec<f64> = (0..60_000)
            .map(|i| ((i * 2654435761u64 as usize) % 100_000) as f64 * 1e-3)
            .collect();
        let pool = |t: usize| {
            rayon::ThreadPoolBuilder::new().num_threads(t).build().unwrap()
        };
        let a = pool(1).install(|| KMeans1D::new(31).fit(&data));
        let b = pool(8).install(|| KMeans1D::new(31).fit(&data));
        assert_eq!(a.centers.centers(), b.centers.centers());
        assert_eq!(a.counts, b.counts);
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.inertia.to_bits(), b.inertia.to_bits());
    }

    #[test]
    fn unsorted_input_is_sorted_and_deduped() {
        let sc = SortedCenters::new(vec![5.0, 1.0, 5.0, 3.0]);
        assert_eq!(sc.centers(), &[1.0, 3.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_center_panics() {
        SortedCenters::new(vec![1.0, f64::NAN]);
    }

    fn two_modes(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let base = if i % 2 == 0 { 0.0 } else { 100.0 };
                base + (i % 7) as f64 * 0.1
            })
            .collect()
    }

    #[test]
    fn fit_separates_two_modes() {
        let data = two_modes(10_000);
        let res = KMeans1D::new(2).fit(&data);
        assert_eq!(res.centers.len(), 2);
        assert!(res.centers.centers()[0] < 1.0);
        assert!(res.centers.centers()[1] > 99.0);
        assert!(res.converged);
        // Both clusters hold half the points.
        assert_eq!(res.counts[0], 5_000);
        assert_eq!(res.counts[1], 5_000);
    }

    #[test]
    fn fit_empty_data() {
        let res = KMeans1D::new(4).fit(&[]);
        assert!(res.centers.is_empty());
        assert!(res.assignments.is_empty());
        assert!(res.converged);
    }

    #[test]
    fn fit_constant_data_single_cluster() {
        let data = vec![7.0; 5000];
        let res = KMeans1D::new(8).fit(&data);
        assert_eq!(res.centers.len(), 1);
        assert_eq!(res.centers.centers()[0], 7.0);
        assert_eq!(res.inertia, 0.0);
    }

    #[test]
    fn counts_sum_to_n_and_match_assignments() {
        let data: Vec<f64> = (0..5000).map(|i| ((i * 31) % 997) as f64).collect();
        let res = KMeans1D::new(16).fit(&data);
        assert_eq!(res.counts.iter().sum::<u64>(), data.len() as u64);
        let mut recount = vec![0u64; res.centers.len()];
        for &a in &res.assignments {
            recount[a as usize] += 1;
        }
        assert_eq!(recount, res.counts);
    }

    #[test]
    fn lloyd_never_increases_inertia_vs_uniform_init() {
        // Clustering-quality sanity: fitted inertia must be no worse than
        // the inertia of the initial uniform centres.
        let data = two_modes(4000);
        let init = SortedCenters::new(crate::init::initial_centers(
            Init1D::UniformSpread,
            &data,
            4,
            0,
        ));
        let init_inertia: f64 = data.iter().map(|&x| {
            let c = init.nearest_value(x);
            (x - c) * (x - c)
        }).sum();
        let res = KMeans1D::new(4).with_init(Init1D::UniformSpread).fit(&data);
        assert!(
            res.inertia <= init_inertia + 1e-9,
            "fit {} vs init {}",
            res.inertia,
            init_inertia
        );
    }

    #[test]
    fn histogram_init_covers_the_dense_mode_on_skewed_data() {
        // Heavily skewed data: 99% in a tight mode, 1% spread far away.
        // The design goal of histogram seeding is NUMARCK coverage, not
        // inertia: virtually all dense-mode points must end within a
        // tight tolerance of some centre, which uniform seeding only
        // achieves after Lloyd rescues its single in-mode seed.
        let mut data: Vec<f64> = (0..9900).map(|i| (i % 100) as f64 * 1e-4).collect();
        data.extend((0..100).map(|i| 1000.0 + i as f64 * 10.0));
        let tol = 0.005;
        let escape_frac = |res: &KMeans1DResult| {
            data.iter()
                .filter(|&&x| x < 1.0) // dense-mode points only
                .filter(|&&x| (x - res.centers.nearest_value(x)).abs() > tol)
                .count() as f64
                / 9900.0
        };
        let hist = KMeans1D::new(8).with_init(Init1D::Histogram).fit(&data);
        assert!(
            escape_frac(&hist) < 0.02,
            "dense mode under-covered: {} escapes",
            escape_frac(&hist)
        );
        // And at least one centre sits inside the mode (empty-cluster
        // pruning may consolidate the mode into a single centre, which
        // is optimal here — the mode is narrower than the tolerance).
        let in_mode = hist.centers.centers().iter().filter(|&&c| c < 1.0).count();
        assert!(in_mode >= 1, "centres in mode: {:?}", hist.centers.centers());
    }

    #[test]
    fn deterministic_across_runs() {
        let data = two_modes(20_000);
        let a = KMeans1D::new(7).fit(&data);
        let b = KMeans1D::new(7).fit(&data);
        assert_eq!(a.centers.centers(), b.centers.centers());
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.inertia.to_bits(), b.inertia.to_bits());
    }

    #[test]
    fn respects_iteration_cap() {
        let data = two_modes(1000);
        let opts = KMeansOptions { max_iterations: 1, change_threshold: 0.0, seed: 0 };
        let res = KMeans1D::new(4).with_options(opts).fit(&data);
        assert!(res.iterations <= 1);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[test]
            fn assignments_are_nearest_center(
                xs in proptest::collection::vec(-1e3f64..1e3, 1..300),
                k in 1usize..10
            ) {
                let res = KMeans1D::new(k).fit(&xs);
                for (&x, &a) in xs.iter().zip(&res.assignments) {
                    let da = (x - res.centers.centers()[a as usize]).abs();
                    for &c in res.centers.centers() {
                        prop_assert!(da <= (x - c).abs() + 1e-9);
                    }
                }
            }

            #[test]
            fn centers_within_data_range(
                xs in proptest::collection::vec(-50.0f64..50.0, 1..200),
                k in 1usize..8
            ) {
                let res = KMeans1D::new(k).fit(&xs);
                let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
                let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                for &c in res.centers.centers() {
                    prop_assert!(c >= lo - 1e-9 && c <= hi + 1e-9);
                }
            }
        }
    }
}
