/root/repo/target/debug/examples/soft_error_detection-89a096afc03d5730.d: examples/soft_error_detection.rs

/root/repo/target/debug/examples/libsoft_error_detection-89a096afc03d5730.rmeta: examples/soft_error_detection.rs

examples/soft_error_detection.rs:
