//! Chunk-size heuristics shared by the parallel kernels.
//!
//! Rayon's `par_chunks` needs an explicit chunk length. Too small and the
//! scheduling overhead dominates; too large and load balancing suffers. The
//! heuristic here targets roughly 4 chunks per worker thread, with a floor
//! that keeps per-chunk work above the scheduling cost for trivially cheap
//! kernels.

/// Minimum number of elements per chunk. Below this, sequential execution
/// beats the fork/join overhead for the simple arithmetic kernels NUMARCK
/// runs (a few flops per element).
pub const MIN_CHUNK: usize = 4 * 1024;

/// Chunks per worker thread. Over-decomposing by this factor gives the
/// work-stealing scheduler room to balance uneven chunks (e.g. histogram
/// bins concentrated in one region).
pub const CHUNKS_PER_THREAD: usize = 4;

/// Cached handle to the `par_sweeps_total` counter (one increment per
/// planned parallel sweep, not per element).
fn sweeps_total() -> &'static std::sync::Arc<numarck_obs::Counter> {
    static CELL: std::sync::OnceLock<std::sync::Arc<numarck_obs::Counter>> =
        std::sync::OnceLock::new();
    CELL.get_or_init(|| numarck_obs::Registry::global().counter("par_sweeps_total"))
}

/// Cached handle to the `par_chunks_dispatched_total` counter.
fn chunks_dispatched_total() -> &'static std::sync::Arc<numarck_obs::Counter> {
    static CELL: std::sync::OnceLock<std::sync::Arc<numarck_obs::Counter>> =
        std::sync::OnceLock::new();
    CELL.get_or_init(|| numarck_obs::Registry::global().counter("par_chunks_dispatched_total"))
}

/// Choose a chunk length for a parallel sweep over `len` elements.
///
/// Returns at least 1 so callers can pass the result straight to
/// `par_chunks` without a zero-length panic. Each call counts as one
/// planned sweep in the `par_sweeps_total` /
/// `par_chunks_dispatched_total` metrics (per-sweep cost: two relaxed
/// atomic adds).
pub fn chunk_size_for(len: usize) -> usize {
    let chunk = chunk_size_with_threads(len, rayon::current_num_threads());
    sweeps_total().inc();
    chunks_dispatched_total().add(len.div_ceil(chunk.max(1)) as u64);
    chunk
}

/// [`chunk_size_for`] with an explicit thread count (testable, and used by
/// callers that run inside a custom pool).
pub fn chunk_size_with_threads(len: usize, threads: usize) -> usize {
    let threads = threads.max(1);
    let target_chunks = threads * CHUNKS_PER_THREAD;
    let by_threads = len.div_ceil(target_chunks.max(1));
    by_threads.clamp(1, len.max(1)).max(MIN_CHUNK.min(len.max(1)))
}

/// [`chunk_size_for`] rounded up to a multiple of `align`.
///
/// The encoder's rank-partitioned packer chunks points in multiples of 64
/// so every chunk owns whole bitmap words and chunks can write the bitmap
/// concurrently without sharing a word; the decoder aligns the same way so
/// its per-chunk start ranks fall on word boundaries.
pub fn chunk_size_aligned(len: usize, align: usize) -> usize {
    let align = align.max(1);
    chunk_size_for(len).div_ceil(align) * align
}

/// Split `buf` into consecutive disjoint mutable windows of the given
/// lengths — the bridge between an exclusive scan over per-chunk output
/// counts and handing each parallel chunk its exact output range (escape
/// slots, pooled fit-sample ranges, …).
///
/// # Panics
/// Panics if the counts do not sum to exactly `buf.len()`.
pub fn partition_mut<T>(mut buf: &mut [T], counts: impl IntoIterator<Item = usize>) -> Vec<&mut [T]> {
    let mut out = Vec::new();
    for c in counts {
        let (head, tail) = buf.split_at_mut(c);
        out.push(head);
        buf = tail;
    }
    assert!(buf.is_empty(), "partition counts must cover the buffer exactly");
    out
}

/// Iterator over `(start, end)` half-open ranges covering `0..len` in
/// chunks of `chunk`. Used where index arithmetic is needed alongside the
/// slice data (e.g. writing bin IDs back at the right offsets).
pub fn chunk_ranges(len: usize, chunk: usize) -> impl Iterator<Item = (usize, usize)> {
    let chunk = chunk.max(1);
    (0..len).step_by(chunk).map(move |s| (s, (s + chunk).min(len)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_counters_advance() {
        let sweeps_before = sweeps_total().get();
        let chunks_before = chunks_dispatched_total().get();
        let chunk = chunk_size_for(1 << 20);
        // Other tests may run parallel sweeps concurrently: lower bounds only.
        assert!(sweeps_total().get() > sweeps_before);
        let expected = ((1usize << 20).div_ceil(chunk)) as u64;
        assert!(chunks_dispatched_total().get() >= chunks_before + expected);
    }

    #[test]
    fn chunk_size_is_positive() {
        for len in [0usize, 1, 5, 1000, 1 << 20] {
            for threads in [1usize, 2, 8, 64] {
                let c = chunk_size_with_threads(len, threads);
                assert!(c >= 1, "len={len} threads={threads} gave {c}");
            }
        }
    }

    #[test]
    fn chunk_size_honours_min_chunk_for_large_inputs() {
        let c = chunk_size_with_threads(1 << 24, 8);
        assert!(c >= MIN_CHUNK);
    }

    #[test]
    fn small_inputs_get_single_chunk() {
        // Inputs below MIN_CHUNK should not be split at all.
        let c = chunk_size_with_threads(100, 16);
        assert_eq!(c, 100);
    }

    #[test]
    fn aligned_chunk_is_aligned_and_covers() {
        for len in [1usize, 63, 64, 100, 4096, 5000, 1 << 20] {
            let c = chunk_size_aligned(len, 64);
            assert_eq!(c % 64, 0, "len={len}");
            assert!(c >= 1);
            // The aligned point-chunking and word-chunking agree: splitting
            // `len` points into chunks of `c` yields exactly as many pieces
            // as splitting `ceil(len/64)` words into chunks of `c/64`.
            assert_eq!(len.div_ceil(c), len.div_ceil(64).div_ceil(c / 64), "len={len}");
        }
    }

    #[test]
    fn partition_mut_hands_out_disjoint_windows() {
        let mut buf: Vec<u32> = (0..10).collect();
        let parts = partition_mut(&mut buf, [3usize, 0, 5, 2]);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts[0], &[0, 1, 2]);
        assert!(parts[1].is_empty());
        assert_eq!(parts[2], &[3, 4, 5, 6, 7]);
        assert_eq!(parts[3], &[8, 9]);
    }

    #[test]
    #[should_panic(expected = "cover the buffer exactly")]
    fn partition_mut_rejects_short_counts() {
        let mut buf = [0u8; 4];
        let _ = partition_mut(&mut buf, [1usize, 2]);
    }

    #[test]
    fn ranges_cover_exactly_once() {
        for len in [0usize, 1, 7, 100, 1023] {
            for chunk in [1usize, 3, 64, 5000] {
                let mut covered = vec![false; len];
                for (s, e) in chunk_ranges(len, chunk) {
                    assert!(s < e && e <= len);
                    for c in covered.iter_mut().take(e).skip(s) {
                        assert!(!*c, "double coverage");
                        *c = true;
                    }
                }
                assert!(covered.iter().all(|&c| c), "gap in coverage len={len} chunk={chunk}");
            }
        }
    }

    #[test]
    fn ranges_are_contiguous_and_ordered() {
        let ranges: Vec<_> = chunk_ranges(1000, 64).collect();
        for w in ranges.windows(2) {
            assert_eq!(w[0].1, w[1].0);
        }
        assert_eq!(ranges.first().unwrap().0, 0);
        assert_eq!(ranges.last().unwrap().1, 1000);
    }
}
