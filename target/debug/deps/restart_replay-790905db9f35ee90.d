/root/repo/target/debug/deps/restart_replay-790905db9f35ee90.d: crates/numarck-bench/benches/restart_replay.rs

/root/repo/target/debug/deps/librestart_replay-790905db9f35ee90.rmeta: crates/numarck-bench/benches/restart_replay.rs

crates/numarck-bench/benches/restart_replay.rs:
