//! 3-D compressible-Euler kernel (first-order finite volume, Rusanov
//! fluxes) — the straightforward extension of [`crate::euler`] to three
//! axes, with the z momentum now dynamically coupled.

use crate::block::{cons, NCONS};
use crate::dim3::block3::Block3;
use crate::eos::GammaLaw;
use crate::euler::{to_primitive, Primitive, P_FLOOR, RHO_FLOOR};

// Re-exported so callers see one set of floors.
pub use crate::euler::{P_FLOOR as PRESSURE_FLOOR, RHO_FLOOR as DENSITY_FLOOR};

/// Physical flux along `axis` (0 = x, 1 = y, 2 = z).
#[inline]
fn physical_flux(s: &[f64; NCONS], pr: &Primitive, axis: usize) -> [f64; NCONS] {
    let vel = match axis {
        0 => pr.u,
        1 => pr.v,
        _ => pr.w,
    };
    let mut f = [
        s[cons::RHO] * vel,
        s[cons::MX] * vel,
        s[cons::MY] * vel,
        s[cons::MZ] * vel,
        (s[cons::ENERGY] + pr.p) * vel,
    ];
    match axis {
        0 => f[cons::MX] += pr.p,
        1 => f[cons::MY] += pr.p,
        _ => f[cons::MZ] += pr.p,
    }
    f
}

/// Rusanov numerical flux along `axis`.
#[inline]
pub fn rusanov3(
    left: &[f64; NCONS],
    right: &[f64; NCONS],
    eos: &GammaLaw,
    axis: usize,
) -> [f64; NCONS] {
    let pl = to_primitive(left, eos);
    let pr = to_primitive(right, eos);
    let fl = physical_flux(left, &pl, axis);
    let fr = physical_flux(right, &pr, axis);
    let vsel = |p: &Primitive| match axis {
        0 => p.u,
        1 => p.v,
        _ => p.w,
    };
    let sl = vsel(&pl).abs() + eos.sound_speed(pl.rho, pl.p);
    let sr = vsel(&pr).abs() + eos.sound_speed(pr.rho, pr.p);
    let smax = sl.max(sr);
    std::array::from_fn(|c| 0.5 * (fl[c] + fr[c]) - 0.5 * smax * (right[c] - left[c]))
}

/// Maximum signal speed over the interior (3-axis CFL driver).
pub fn max_wave_speed3(block: &Block3, eos: &GammaLaw) -> f64 {
    let (nx, ny, nz) = block.dims();
    let mut smax = 0.0f64;
    for k in 0..nz as isize {
        for j in 0..ny as isize {
            for i in 0..nx as isize {
                let pr = to_primitive(&block.state(i, j, k), eos);
                let c = eos.sound_speed(pr.rho.max(RHO_FLOOR), pr.p.max(P_FLOOR));
                smax = smax.max(pr.u.abs() + c).max(pr.v.abs() + c).max(pr.w.abs() + c);
            }
        }
    }
    smax
}

/// One forward-Euler step of the interior; guards must be current.
pub fn update_block3(
    block: &Block3,
    out: &mut Block3,
    dt: f64,
    dx: f64,
    dy: f64,
    dz: f64,
    eos: &GammaLaw,
) {
    debug_assert_eq!(block.dims(), out.dims());
    let (nx, ny, nz) = block.dims();
    let (lx, ly, lz) = (dt / dx, dt / dy, dt / dz);
    for k in 0..nz as isize {
        for j in 0..ny as isize {
            for i in 0..nx as isize {
                let u = block.state(i, j, k);
                let fw = rusanov3(&block.state(i - 1, j, k), &u, eos, 0);
                let fe = rusanov3(&u, &block.state(i + 1, j, k), eos, 0);
                let gs = rusanov3(&block.state(i, j - 1, k), &u, eos, 1);
                let gn = rusanov3(&u, &block.state(i, j + 1, k), eos, 1);
                let hd = rusanov3(&block.state(i, j, k - 1), &u, eos, 2);
                let hu = rusanov3(&u, &block.state(i, j, k + 1), eos, 2);
                let newu: [f64; NCONS] = std::array::from_fn(|c| {
                    u[c] - lx * (fe[c] - fw[c]) - ly * (gn[c] - gs[c]) - lz * (hu[c] - hd[c])
                });
                out.set_state(i, j, k, newu);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::GUARD;
    use crate::euler::to_conserved;

    fn fill_uniform(b: &mut Block3, pr: &Primitive, eos: &GammaLaw) {
        let (nx, ny, nz) = b.dims();
        let g = GUARD as isize;
        let u = to_conserved(pr, eos);
        for k in -g..(nz as isize + g) {
            for j in -g..(ny as isize + g) {
                for i in -g..(nx as isize + g) {
                    b.set_state(i, j, k, u);
                }
            }
        }
    }

    #[test]
    fn consistent_flux_on_all_axes() {
        let eos = GammaLaw::AIR;
        let pr = Primitive { rho: 1.2, u: 0.3, v: -0.2, w: 0.15, p: 0.9 };
        let u = to_conserved(&pr, &eos);
        for axis in 0..3 {
            let f = rusanov3(&u, &u, &eos, axis);
            let fp = physical_flux(&u, &pr, axis);
            for c in 0..NCONS {
                assert!((f[c] - fp[c]).abs() < 1e-13, "axis {axis} comp {c}");
            }
        }
    }

    #[test]
    fn uniform_state_is_a_fixed_point() {
        let eos = GammaLaw::AIR;
        let pr = Primitive { rho: 1.0, u: 0.1, v: -0.05, w: 0.2, p: 1.0 };
        let mut b = Block3::new(5, 5, 5);
        fill_uniform(&mut b, &pr, &eos);
        let mut out = b.clone();
        update_block3(&b, &mut out, 0.01, 0.2, 0.2, 0.2, &eos);
        for k in 0..5isize {
            for j in 0..5isize {
                for i in 0..5isize {
                    let s0 = b.state(i, j, k);
                    let s1 = out.state(i, j, k);
                    for c in 0..NCONS {
                        assert!((s0[c] - s1[c]).abs() < 1e-13);
                    }
                }
            }
        }
    }

    #[test]
    fn z_dynamics_are_real() {
        // A z-gradient in pressure must accelerate the gas along z —
        // the property the 2-D solver cannot provide.
        let eos = GammaLaw::AIR;
        let n = 6usize;
        let g = GUARD as isize;
        let mut b = Block3::new(n, n, n);
        for k in -g..(n as isize + g) {
            for j in -g..(n as isize + g) {
                for i in -g..(n as isize + g) {
                    let kk = k.clamp(0, n as isize - 1) as f64;
                    let pr = Primitive {
                        rho: 1.0,
                        u: 0.0,
                        v: 0.0,
                        w: 0.0,
                        p: 1.0 + 0.2 * kk / n as f64,
                    };
                    b.set_state(i, j, k, to_conserved(&pr, &eos));
                }
            }
        }
        let mut out = b.clone();
        update_block3(&b, &mut out, 0.01, 0.1, 0.1, 0.1, &eos);
        // Pressure decreases downward ⇒ force pushes gas toward −z.
        let w_mid = to_primitive(&out.state(3, 3, 3), &eos).w;
        assert!(w_mid < -1e-4, "w should become negative, got {w_mid}");
    }

    #[test]
    fn wave_speed_of_still_gas() {
        let eos = GammaLaw::AIR;
        let mut b = Block3::new(4, 4, 4);
        fill_uniform(&mut b, &Primitive { rho: 1.0, u: 0.0, v: 0.0, w: 0.0, p: 1.0 }, &eos);
        assert!((max_wave_speed3(&b, &eos) - 1.4f64.sqrt()).abs() < 1e-12);
    }
}
