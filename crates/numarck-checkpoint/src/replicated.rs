//! Quorum-replicated storage: one logical [`StorageBackend`] over N
//! replica backends.
//!
//! Every mutating operation fans out to all replicas and succeeds once a
//! write quorum `W` of them has acknowledged (each replica's own `write`
//! fsyncs, so quorum success means the bytes are durable on `W`
//! devices). Reads consult *every* replica and return the plurality
//! byte-content, so with `N = 3, W = 2` a single missing or bit-rotted
//! replica is simply outvoted — the chain stays restartable without
//! waiting for a scrub. Scrub's replica pass
//! ([`crate::scrub::scrub`]) then restores full replication by
//! rewriting divergent copies from a quorum-agreeing peer (read-repair).
//!
//! Replica directories live *under* the logical root, named
//! `@replica-0`, `@replica-1`, … — `@` is outside the session-name
//! charset enforced by numarck-serve, so a replica dir can never collide
//! with a session. Incoming paths (always under the logical root) are
//! rebased onto each replica root, and `list_dir` of the logical root
//! lists the replica roots instead, so the `@replica-*` names themselves
//! never leak into listings.

use std::collections::BTreeSet;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::backend::{FsBackend, StorageBackend};
use crate::obs;

/// One replica: a backend plus the root directory the logical tree is
/// rebased onto.
#[derive(Debug, Clone)]
pub struct ReplicaSpec {
    /// The backend performing this replica's I/O.
    pub backend: Arc<dyn StorageBackend>,
    /// Directory that mirrors the logical root for this replica.
    pub root: PathBuf,
}

/// N-way replicated [`StorageBackend`] with quorum-acknowledged writes.
#[derive(Debug)]
pub struct ReplicatedBackend {
    logical_root: PathBuf,
    replicas: Vec<ReplicaSpec>,
    write_quorum: usize,
    errors: Vec<AtomicU64>,
}

impl ReplicatedBackend {
    /// Compose `replicas` behind the logical root `logical_root`.
    ///
    /// `write_quorum` is clamped into `1..=replicas.len()`; panics if
    /// `replicas` is empty.
    pub fn new(logical_root: PathBuf, replicas: Vec<ReplicaSpec>, write_quorum: usize) -> Self {
        assert!(!replicas.is_empty(), "ReplicatedBackend needs at least one replica");
        let write_quorum = write_quorum.clamp(1, replicas.len());
        let errors = replicas.iter().map(|_| AtomicU64::new(0)).collect();
        Self { logical_root, replicas, write_quorum, errors }
    }

    /// Convenience: `n` [`FsBackend`] replicas under
    /// `root/@replica-{i}`, creating the directories now so a majority
    /// read never trips over a missing root.
    pub fn with_fs_replicas(root: &Path, n: usize, write_quorum: usize) -> io::Result<Self> {
        if n == 0 {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "replica count must be >= 1"));
        }
        let mut replicas = Vec::with_capacity(n);
        for i in 0..n {
            let replica_root = root.join(format!("@replica-{i}"));
            std::fs::create_dir_all(&replica_root)?;
            replicas.push(ReplicaSpec {
                backend: Arc::new(FsBackend) as Arc<dyn StorageBackend>,
                root: replica_root,
            });
        }
        Ok(Self::new(root.to_path_buf(), replicas, write_quorum))
    }

    /// Number of replicas.
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// Writes must reach this many replicas to succeed.
    pub fn write_quorum(&self) -> usize {
        self.write_quorum
    }

    /// The logical root all incoming paths are relative to.
    pub fn logical_root(&self) -> &Path {
        &self.logical_root
    }

    /// Per-replica count of failed operations since construction.
    pub fn error_counts(&self) -> Vec<u64> {
        self.errors.iter().map(|c| c.load(Ordering::Relaxed)).collect()
    }

    /// Rebase a logical path onto replica `i`'s root.
    fn rebase(&self, i: usize, path: &Path) -> io::Result<PathBuf> {
        let rel = path.strip_prefix(&self.logical_root).map_err(|_| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("path {} is outside logical root {}", path.display(), self.logical_root.display()),
            )
        })?;
        Ok(self.replicas[i].root.join(rel))
    }

    /// Read the logical `path` from replica `i` only.
    pub fn read_replica(&self, i: usize, path: &Path) -> io::Result<Vec<u8>> {
        let p = self.rebase(i, path)?;
        self.replicas[i].backend.read(&p)
    }

    /// Overwrite the logical `path` on replica `i` only (write + parent
    /// dir fsync) — the read-repair primitive.
    pub fn write_replica(&self, i: usize, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let p = self.rebase(i, path)?;
        if let Some(parent) = p.parent() {
            self.replicas[i].backend.create_dir_all(parent)?;
        }
        self.replicas[i].backend.write(&p, bytes)?;
        if let Some(parent) = p.parent() {
            self.replicas[i].backend.sync_dir(parent)?;
        }
        Ok(())
    }

    /// Fan a mutating operation out to every replica; succeed iff at
    /// least `write_quorum` replicas succeed, otherwise surface the
    /// first error. Per-replica failures are counted regardless.
    fn fan_out(&self, what: &str, op: impl Fn(usize, &dyn StorageBackend) -> io::Result<()>) -> io::Result<()> {
        let mut ok = 0usize;
        let mut first_err: Option<io::Error> = None;
        for (i, spec) in self.replicas.iter().enumerate() {
            match op(i, spec.backend.as_ref()) {
                Ok(()) => ok += 1,
                Err(e) => {
                    self.errors[i].fetch_add(1, Ordering::Relaxed);
                    obs::replica_write_errors_total().inc();
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        if ok >= self.write_quorum {
            Ok(())
        } else {
            obs::replica_quorum_failures_total().inc();
            Err(first_err
                .unwrap_or_else(|| io::Error::other(format!("{what}: no replica succeeded"))))
        }
    }
}

impl StorageBackend for ReplicatedBackend {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        self.fan_out("create_dir_all", |i, b| {
            let p = self.rebase(i, dir)?;
            b.create_dir_all(&p)
        })
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.fan_out("write", |i, b| {
            let p = self.rebase(i, path)?;
            b.write(&p, bytes)
        })
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.fan_out("append", |i, b| {
            let p = self.rebase(i, path)?;
            b.append(&p, bytes)
        })
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.fan_out("rename", |i, b| {
            let f = self.rebase(i, from)?;
            let t = self.rebase(i, to)?;
            b.rename(&f, &t)
        })
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        self.fan_out("sync_dir", |i, b| {
            let p = self.rebase(i, dir)?;
            b.sync_dir(&p)
        })
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        // Read every replica and return the plurality byte-content; a
        // tie goes to the group containing the lowest replica index, so
        // the result is deterministic.
        let mut groups: Vec<(Vec<u8>, usize)> = Vec::new();
        let mut first_err: Option<io::Error> = None;
        for (i, _) in self.replicas.iter().enumerate() {
            match self.read_replica(i, path) {
                Ok(data) => {
                    if let Some(g) = groups.iter_mut().find(|(d, _)| *d == data) {
                        g.1 += 1;
                    } else {
                        groups.push((data, 1));
                    }
                }
                Err(e) => {
                    self.errors[i].fetch_add(1, Ordering::Relaxed);
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        // Earlier-inserted groups win ties: strictly-greater keeps the
        // lowest-index group in front.
        match groups.into_iter().reduce(|best, g| if g.1 > best.1 { g } else { best }) {
            Some((data, _)) => Ok(data),
            None => Err(first_err.unwrap_or_else(|| io::Error::other("read: no replicas"))),
        }
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        // A replica that never had the file has trivially "removed" it.
        self.fan_out("remove_file", |i, b| {
            let p = self.rebase(i, path)?;
            match b.remove_file(&p) {
                Err(e) if e.kind() != io::ErrorKind::NotFound => Err(e),
                _ => Ok(()),
            }
        })
    }

    fn list_dir(&self, dir: &Path) -> io::Result<Vec<String>> {
        let mut names = BTreeSet::new();
        let mut first_err: Option<io::Error> = None;
        let mut ok = 0usize;
        for (i, spec) in self.replicas.iter().enumerate() {
            let p = self.rebase(i, dir)?;
            match spec.backend.list_dir(&p) {
                Ok(list) => {
                    ok += 1;
                    names.extend(list);
                }
                Err(e) => {
                    self.errors[i].fetch_add(1, Ordering::Relaxed);
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        if ok == 0 {
            Err(first_err.unwrap_or_else(|| io::Error::other("list_dir: no replicas")))
        } else {
            Ok(names.into_iter().collect())
        }
    }

    fn as_replicated(&self) -> Option<&ReplicatedBackend> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{FaultSchedule, FaultyBackend, WriteFault};
    use crate::store::testutil::TempDir;

    fn three_way(root: &Path) -> ReplicatedBackend {
        ReplicatedBackend::with_fs_replicas(root, 3, 2).unwrap()
    }

    #[test]
    fn write_lands_on_all_replicas() {
        let tmp = TempDir::new("repl-write");
        let b = three_way(&tmp.0);
        let p = tmp.0.join("sess").join("a.bin");
        b.create_dir_all(p.parent().unwrap()).unwrap();
        b.write(&p, b"payload").unwrap();
        for i in 0..3 {
            assert_eq!(b.read_replica(i, &p).unwrap(), b"payload");
        }
        assert_eq!(b.read(&p).unwrap(), b"payload");
    }

    #[test]
    fn majority_read_outvotes_one_bad_replica() {
        let tmp = TempDir::new("repl-vote");
        let b = three_way(&tmp.0);
        let p = tmp.0.join("a.bin");
        b.write(&p, b"good").unwrap();
        // Corrupt replica 0's copy; the plurality of replicas 1 and 2 wins.
        b.write_replica(0, &p, b"BAD!").unwrap();
        assert_eq!(b.read(&p).unwrap(), b"good");
        // Delete replica 1's copy entirely; 0 and 2 now disagree — the
        // tie goes to the lowest replica index.
        std::fs::remove_file(tmp.0.join("@replica-1").join("a.bin")).unwrap();
        assert_eq!(b.read(&p).unwrap(), b"BAD!");
    }

    #[test]
    fn quorum_write_survives_one_dead_replica() {
        let tmp = TempDir::new("repl-quorum");
        let always_full = (1..=64).fold(FaultSchedule::new(), |s, n| {
            s.fail_write(n, WriteFault::Error(io::ErrorKind::StorageFull))
        });
        let mut replicas = Vec::new();
        for i in 0..3usize {
            let root = tmp.0.join(format!("@replica-{i}"));
            std::fs::create_dir_all(&root).unwrap();
            let backend: Arc<dyn StorageBackend> = if i == 0 {
                Arc::new(FaultyBackend::new(always_full.clone()))
            } else {
                Arc::new(FsBackend)
            };
            replicas.push(ReplicaSpec { backend, root });
        }
        let b = ReplicatedBackend::new(tmp.0.clone(), replicas, 2);
        let p = tmp.0.join("a.bin");
        b.write(&p, b"x").unwrap(); // 2 of 3 suffice
        assert_eq!(b.error_counts(), vec![1, 0, 0]);
        assert_eq!(b.read(&p).unwrap(), b"x");
    }

    #[test]
    fn write_below_quorum_fails() {
        let tmp = TempDir::new("repl-noquorum");
        let mut replicas = Vec::new();
        for i in 0..2usize {
            let root = tmp.0.join(format!("@replica-{i}"));
            std::fs::create_dir_all(&root).unwrap();
            let schedule = (1..=8).fold(FaultSchedule::new(), |s, n| {
                s.fail_write(n, WriteFault::Error(io::ErrorKind::StorageFull))
            });
            replicas.push(ReplicaSpec {
                backend: Arc::new(FaultyBackend::new(schedule)) as Arc<dyn StorageBackend>,
                root,
            });
        }
        let b = ReplicatedBackend::new(tmp.0.clone(), replicas, 2);
        let err = b.write(&tmp.0.join("a.bin"), b"x").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
    }

    #[test]
    fn list_dir_unions_and_skips_replica_dirs() {
        let tmp = TempDir::new("repl-list");
        let b = three_way(&tmp.0);
        let p = tmp.0.join("a.bin");
        b.write(&p, b"x").unwrap();
        // A file present on only one replica still shows up.
        b.write_replica(2, &tmp.0.join("only2.bin"), b"y").unwrap();
        let names = b.list_dir(&tmp.0).unwrap();
        assert_eq!(names, vec!["a.bin".to_string(), "only2.bin".to_string()]);
        assert!(!names.iter().any(|n| n.starts_with("@replica")));
    }

    #[test]
    fn paths_outside_logical_root_are_rejected() {
        let tmp = TempDir::new("repl-outside");
        let b = three_way(&tmp.0);
        let err = b.write(Path::new("/definitely/elsewhere"), b"x").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn remove_file_tolerates_missing_copies() {
        let tmp = TempDir::new("repl-remove");
        let b = three_way(&tmp.0);
        let p = tmp.0.join("a.bin");
        b.write(&p, b"x").unwrap();
        std::fs::remove_file(tmp.0.join("@replica-0").join("a.bin")).unwrap();
        b.remove_file(&p).unwrap();
        for i in 0..3 {
            assert!(b.read_replica(i, &p).is_err());
        }
    }
}
