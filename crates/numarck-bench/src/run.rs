//! Sweep runners.

use numarck::encode::IterationStats;
use numarck::{Compressor, Config, Strategy};

use crate::data::Sequence;

/// Compress every consecutive pair of a sequence and collect stats.
pub fn compress_sequence(seq: &Sequence, config: Config) -> Vec<IterationStats> {
    let compressor = Compressor::new(config);
    seq.windows(2)
        .map(|w| compressor.compress(&w[0], &w[1]).expect("experiment data is finite").1)
        .collect()
}

/// Per-strategy stats over a sequence (paper order: equal-width,
/// log-scale, clustering).
pub fn strategy_sweep(
    seq: &Sequence,
    bits: u8,
    tolerance: f64,
) -> Vec<(Strategy, Vec<IterationStats>)> {
    Strategy::all()
        .into_iter()
        .map(|s| {
            let config = Config::new(bits, tolerance, s).expect("valid sweep parameters");
            (s, compress_sequence(seq, config))
        })
        .collect()
}

/// Mean of a statistic over iterations.
pub fn mean_of(stats: &[IterationStats], f: impl Fn(&IterationStats) -> f64) -> f64 {
    if stats.is_empty() {
        return 0.0;
    }
    stats.iter().map(&f).sum::<f64>() / stats.len() as f64
}

/// Mean and population standard deviation of a derived per-iteration
/// quantity.
pub fn mean_std(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_sequence() -> Sequence {
        let mut seq = vec![(0..500).map(|i| 1.0 + (i % 9) as f64).collect::<Vec<f64>>()];
        for s in 1..4 {
            let prev: &Vec<f64> = seq.last().expect("non-empty");
            seq.push(prev.iter().map(|v| v * (1.0 + 0.002 * s as f64)).collect());
        }
        seq
    }

    #[test]
    fn compress_sequence_yields_one_stat_per_transition() {
        let seq = toy_sequence();
        let cfg = Config::new(8, 0.001, Strategy::Clustering).unwrap();
        let stats = compress_sequence(&seq, cfg);
        assert_eq!(stats.len(), seq.len() - 1);
        for st in &stats {
            assert_eq!(st.num_points, 500);
        }
    }

    #[test]
    fn sweep_covers_all_strategies() {
        let seq = toy_sequence();
        let sweep = strategy_sweep(&seq, 8, 0.001);
        let names: Vec<_> = sweep.iter().map(|(s, _)| s.name()).collect();
        assert_eq!(names, vec!["equal-width", "log-scale", "clustering"]);
    }

    #[test]
    fn mean_std_hand_checked() {
        let (m, s) = mean_std(&[1.0, 3.0]);
        assert_eq!(m, 2.0);
        assert_eq!(s, 1.0);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
    }
}
