/root/repo/target/debug/deps/numarck_checkpoint-67d849e0ebf33a3c.d: crates/numarck-checkpoint/src/lib.rs crates/numarck-checkpoint/src/backend.rs crates/numarck-checkpoint/src/fault.rs crates/numarck-checkpoint/src/format.rs crates/numarck-checkpoint/src/manager.rs crates/numarck-checkpoint/src/obs.rs crates/numarck-checkpoint/src/replicated.rs crates/numarck-checkpoint/src/restart.rs crates/numarck-checkpoint/src/scrub.rs crates/numarck-checkpoint/src/store.rs

/root/repo/target/debug/deps/numarck_checkpoint-67d849e0ebf33a3c: crates/numarck-checkpoint/src/lib.rs crates/numarck-checkpoint/src/backend.rs crates/numarck-checkpoint/src/fault.rs crates/numarck-checkpoint/src/format.rs crates/numarck-checkpoint/src/manager.rs crates/numarck-checkpoint/src/obs.rs crates/numarck-checkpoint/src/replicated.rs crates/numarck-checkpoint/src/restart.rs crates/numarck-checkpoint/src/scrub.rs crates/numarck-checkpoint/src/store.rs

crates/numarck-checkpoint/src/lib.rs:
crates/numarck-checkpoint/src/backend.rs:
crates/numarck-checkpoint/src/fault.rs:
crates/numarck-checkpoint/src/format.rs:
crates/numarck-checkpoint/src/manager.rs:
crates/numarck-checkpoint/src/obs.rs:
crates/numarck-checkpoint/src/replicated.rs:
crates/numarck-checkpoint/src/restart.rs:
crates/numarck-checkpoint/src/scrub.rs:
crates/numarck-checkpoint/src/store.rs:
