//! Minimal stand-in for the `criterion` bench harness: runs each
//! benchmark closure a handful of times and prints a mean wall-clock
//! figure. API surface matches what the workspace's `benches/` use.

use std::time::{Duration, Instant};

/// Opaque value-blackhole, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation (recorded, reported alongside timings).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Benchmark identifier: `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self { id: format!("{}/{parameter}", function.into()) }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Per-iteration timer handle passed to bench closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    fn run_one(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher { iters: self.samples as u64, elapsed: Duration::ZERO };
        f(&mut b);
        let per_iter = b.elapsed.as_secs_f64() / b.iters.max(1) as f64;
        println!("bench {}/{id}: {:.3} ms/iter", self.name, per_iter * 1e3);
    }

    pub fn bench_function(&mut self, id: impl std::fmt::Display, f: impl FnMut(&mut Bencher)) {
        let id = id.to_string();
        self.run_one(&id, f);
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let id = id.to_string();
        self.run_one(&id, |b| f(b, input));
    }

    pub fn finish(self) {}
}

/// Harness entry point.
#[derive(Debug, Default)]
pub struct Criterion;

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), samples: 10, _parent: self }
    }

    pub fn bench_function(&mut self, id: impl std::fmt::Display, f: impl FnMut(&mut Bencher)) {
        let mut group = self.benchmark_group(id.to_string());
        group.bench_function("default", f);
        group.finish();
    }
}

/// Collect bench functions into a runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
