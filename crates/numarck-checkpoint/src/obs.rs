//! Observability hooks for the checkpoint store.
//!
//! PR 1's retry/scrub machinery computed rich reports
//! ([`crate::CheckpointReport`], [`crate::ScrubReport`]) but kept them
//! caller-local; this module mirrors those outcomes into the
//! process-wide [`numarck_obs::Registry`] so they are visible through
//! `/metrics` and the stats wire reply without threading report values
//! through every call site. Handles are cached in `OnceLock`s — the
//! per-event cost is relaxed atomics only.
//!
//! Metric names (see DESIGN.md §7):
//! * `ckpt_write_attempts_total` — store write attempts, including
//!   retried ones;
//! * `ckpt_write_retries_total`, `ckpt_backoff_ns_total` — lifetime
//!   retry count and nanoseconds of backoff slept;
//! * `ckpt_fulls_total`, `ckpt_drift_fulls_total`, `ckpt_deltas_total`
//!   — checkpoint outcomes by kind;
//! * `ckpt_write_ns` — per-attempt store write latency;
//! * `ckpt_scrub_runs_total`, `ckpt_scrub_checked_total`,
//!   `ckpt_quarantined_total`, `ckpt_repairs_total`,
//!   `ckpt_repair_lost_total` — scrub → quarantine → repair outcomes;
//! * `ckpt_replica_repairs_total`, `ckpt_replica_quorum_failures_total`,
//!   `ckpt_replica_write_errors_total` — replicated-backend read-repair
//!   and quorum accounting.
//!
//! Retries and quarantines additionally land in the global registry's
//! event ring, so the most recent degradations are inspectable even
//! after counters have blurred together.

use std::sync::{Arc, OnceLock};

use numarck_obs::{Counter, Histogram, Registry};

macro_rules! cached {
    ($fn_name:ident, $kind:ident, $ty:ty, $metric:literal) => {
        /// Cached handle to the global-registry instrument `
        #[doc = $metric]
        /// `.
        pub fn $fn_name() -> &'static Arc<$ty> {
            static CELL: OnceLock<Arc<$ty>> = OnceLock::new();
            CELL.get_or_init(|| Registry::global().$kind($metric))
        }
    };
}

cached!(write_attempts_total, counter, Counter, "ckpt_write_attempts_total");
cached!(write_retries_total, counter, Counter, "ckpt_write_retries_total");
cached!(backoff_ns_total, counter, Counter, "ckpt_backoff_ns_total");
cached!(fulls_total, counter, Counter, "ckpt_fulls_total");
cached!(drift_fulls_total, counter, Counter, "ckpt_drift_fulls_total");
cached!(deltas_total, counter, Counter, "ckpt_deltas_total");
cached!(write_ns, histogram, Histogram, "ckpt_write_ns");
cached!(scrub_runs_total, counter, Counter, "ckpt_scrub_runs_total");
cached!(scrub_checked_total, counter, Counter, "ckpt_scrub_checked_total");
cached!(quarantined_total, counter, Counter, "ckpt_quarantined_total");
cached!(repairs_total, counter, Counter, "ckpt_repairs_total");
cached!(repair_lost_total, counter, Counter, "ckpt_repair_lost_total");
cached!(replica_repairs_total, counter, Counter, "ckpt_replica_repairs_total");
cached!(replica_quorum_failures_total, counter, Counter, "ckpt_replica_quorum_failures_total");
cached!(replica_write_errors_total, counter, Counter, "ckpt_replica_write_errors_total");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_alias_the_global_registry() {
        let h = write_attempts_total();
        assert!(Arc::ptr_eq(
            h,
            &Registry::global().counter("ckpt_write_attempts_total")
        ));
        assert!(Arc::ptr_eq(write_ns(), &Registry::global().histogram("ckpt_write_ns")));
    }
}
