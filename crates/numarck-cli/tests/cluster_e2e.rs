//! Cluster acceptance test against the real binaries: three `numarck
//! serve` shard processes fronted by a `numarck router` process.
//!
//! The contract under test: a session ingested *through the router*
//! with replication factor 2 survives a SIGKILL of its primary shard —
//! the surviving replica replays it byte-identical to a local
//! decompress — and the router's `/metrics` endpoint reports the
//! mark-down. The driving client is the stock CLI client (via
//! `--via-router`, a synonym for `--addr`): zero client changes.

use std::io::{BufRead, BufReader, Read as _, Write as _};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use numarck_cluster::{HashRing, DEFAULT_VNODES};

const BIN: &str = env!("CARGO_BIN_EXE_numarck");
const DEADLINE: Duration = Duration::from_secs(30);

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "numarck-cluster-e2e-{tag}-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .expect("after epoch")
                .as_nanos()
        ));
        std::fs::create_dir_all(&path).expect("mkdir");
        Self(path)
    }

    fn path(&self, name: &str) -> String {
        self.0.join(name).display().to_string()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A spawned server/router process plus the addresses it printed.
struct Proc {
    child: Child,
    reader: BufReader<std::process::ChildStdout>,
    addr: String,
    metrics: Option<String>,
}

impl Proc {
    fn sigkill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for Proc {
    fn drop(&mut self) {
        self.sigkill();
    }
}

/// Spawn the binary and read its startup lines: "listening on ADDR",
/// plus "metrics on URL" when `want_metrics`.
fn spawn_proc(args: &[&str], want_metrics: bool) -> Proc {
    let mut child = Command::new(BIN)
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn numarck");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut proc = Proc { child, reader: BufReader::new(stdout), addr: String::new(), metrics: None };
    let mut line = String::new();
    loop {
        line.clear();
        let n = proc.reader.read_line(&mut line).expect("read startup line");
        assert!(n > 0, "process exited before printing its address: {args:?}");
        if let Some(addr) = line.trim().strip_prefix("listening on ") {
            proc.addr = addr.to_string();
        } else if let Some(url) = line.trim().strip_prefix("metrics on http://") {
            proc.metrics = Some(url.trim_end_matches("/metrics").to_string());
        }
        if !proc.addr.is_empty() && (!want_metrics || proc.metrics.is_some()) {
            return proc;
        }
    }
}

/// Run a CLI command to completion, asserting success, returning stdout.
fn cli(args: &[&str]) -> String {
    let out = Command::new(BIN).args(args).output().expect("run numarck");
    assert!(
        out.status.success(),
        "numarck {args:?} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Plain-HTTP GET, for the router's /metrics endpoint.
fn http_get(addr: &str, path: &str) -> std::io::Result<String> {
    let mut stream = std::net::TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")?;
    let mut buf = String::new();
    stream.read_to_string(&mut buf)?;
    Ok(buf)
}

#[test]
fn replicated_session_survives_sigkill_of_its_primary_shard() {
    let tmp = TempDir::new("sigkill");
    let data = tmp.path("data.f64s");
    let local = tmp.path("local.f64s");
    let chain = tmp.path("data.nmkc");

    // Truth data plus the local reference: one full + open-loop deltas,
    // exactly the chain a shard builds when periodic fulls are
    // suppressed (--full-interval 1000).
    cli(&["gen", "--source", "climate:rlus", "--iterations", "8", "--grid", "24x16", "--out", &data]);
    cli(&["compress", &data, "--out", &chain]);
    cli(&["decompress", &chain, "--out", &local]);

    // Three shard processes on ephemeral ports.
    let mut shards: Vec<Proc> = (0..3)
        .map(|i| {
            let root = tmp.path(&format!("shard-{i}"));
            spawn_proc(
                &["serve", "--root", &root, "--addr", "127.0.0.1:0", "--full-interval", "1000"],
                false,
            )
        })
        .collect();
    let shard_addrs: Vec<String> = shards.iter().map(|s| s.addr.clone()).collect();

    // The router in front of them, quick health cadence so the test's
    // mark-down wait stays short.
    let mut router = spawn_proc(
        &[
            "router",
            "--shards",
            &shard_addrs.join(","),
            "--addr",
            "127.0.0.1:0",
            "--metrics-addr",
            "127.0.0.1:0",
            "--probe-interval-ms",
            "100",
            "--markdown-after",
            "2",
        ],
        true,
    );
    let via = router.addr.clone();
    let metrics_addr = router.metrics.clone().expect("router metrics address");

    // Mixed traffic through the router with the stock client: ingest
    // the session, then replay it once while everything is healthy.
    let out = cli(&["client", "ingest", "--via-router", &via, "--session", "smoke", &data]);
    assert!(out.contains("ingested 8 iteration(s)"), "{out}");
    let healthy = tmp.path("healthy.f64s");
    cli(&["client", "replay", "--via-router", &via, "--session", "smoke", "--out", &healthy]);
    assert_eq!(
        std::fs::read(&healthy).unwrap(),
        std::fs::read(&local).unwrap(),
        "healthy replay via router must be byte-identical to local decompress"
    );

    // SIGKILL the session's *primary* shard — placement is pure ring
    // arithmetic, so the test computes it the same way the router does.
    let plan = HashRing::new(3, DEFAULT_VNODES).shards_for("smoke", 2);
    assert_eq!(plan.len(), 2);
    shards[plan[0]].sigkill();

    // The router must report the mark-down on /metrics.
    let deadline = Instant::now() + DEADLINE;
    let down_gauge = format!("ncl_shard_up_{} 0", plan[0]);
    loop {
        let body = http_get(&metrics_addr, "/metrics").expect("scrape router metrics");
        if body.contains(&down_gauge) {
            assert!(body.contains("ncl_shard_markdowns_total 1"), "{body}");
            break;
        }
        assert!(Instant::now() < deadline, "router never marked shard {} down", plan[0]);
        std::thread::sleep(Duration::from_millis(50));
    }

    // The surviving replica replays the whole session byte-identical to
    // the local decompress — through the same router address, with the
    // same stock client.
    let served = tmp.path("served.f64s");
    cli(&["client", "replay", "--via-router", &via, "--session", "smoke", "--out", &served]);
    assert_eq!(
        std::fs::read(&served).unwrap(),
        std::fs::read(&local).unwrap(),
        "failover replay must be byte-identical to local decompress"
    );

    // Graceful drain of the router (shards outlive it), then the
    // foreground router process exits on its own.
    cli(&["client", "shutdown", "--via-router", &via]);
    let status = router.child.wait().expect("router exit status");
    assert!(status.success(), "router exited with {status}");
    let mut rest = String::new();
    router.reader.read_to_string(&mut rest).expect("router stdout tail");
    assert!(rest.contains("drained"), "router stdout tail: {rest}");
}
