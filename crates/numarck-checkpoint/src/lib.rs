//! Checkpoint/restart machinery built on NUMARCK compression.
//!
//! This crate is the storage side of the paper's Algorithm 1 and §II-D:
//!
//! * [`format`](crate::format) — an on-disk container for one checkpoint: either a
//!   *full* checkpoint (raw `f64` arrays per variable, the paper's `D_0`)
//!   or a *delta* checkpoint (one NUMARCK-compressed block per
//!   variable). CRC-protected, length-validated.
//! * [`backend`] — the syscall boundary: every filesystem operation the
//!   store performs goes through a [`backend::StorageBackend`], so tests
//!   inject faults (ENOSPC on the Nth write, torn writes, read bit rot)
//!   exactly where real hardware would produce them.
//! * [`store`] — a directory of checkpoint files indexed by iteration,
//!   with atomic writes (temp file + rename + directory fsync) and a
//!   `quarantine/` area for damaged files.
//! * [`manager`] — the write-side policy: a full checkpoint every `K`
//!   iterations, NUMARCK deltas in between (change ratios computed
//!   against the *exact* previous iteration, as in the paper), plus
//!   bounded exponential-backoff retry for transient write faults.
//! * [`restart`] — the read side: locate the newest full checkpoint at or
//!   before the requested iteration and replay the delta chain on top,
//!   reproducing the paper's restart equation (including its error
//!   accumulation behaviour). Degraded restart
//!   ([`restart::RestartEngine::restart_at_or_before`]) falls back to
//!   the newest intact iteration when the requested one is damaged.
//! * [`scrub`] — offline integrity pass: CRC-verify every stored file,
//!   quarantine the damaged ones, and repair the chain by re-anchoring a
//!   fresh full checkpoint at the newest restartable iteration.
//! * [`replicated`] — N-way replica composition behind one logical
//!   backend: quorum-acknowledged writes, majority-content reads, and
//!   per-replica error accounting; scrub read-repairs divergent copies.
//! * [`fault`] — fault injection used by the recovery tests: truncate or
//!   bit-flip stored files and assert the reader degrades loudly, never
//!   silently.

pub mod backend;
pub mod fault;
pub mod format;
pub mod manager;
pub mod mmapio;
pub mod obs;
pub mod replicated;
pub mod restart;
pub mod scrub;
pub mod store;

pub use backend::{FaultSchedule, FaultyBackend, FsBackend, ReadFault, StorageBackend, WriteFault};
pub use format::{
    describe, sniff_version, AnyCodec, CheckpointFile, CheckpointKind, ContainerInfo,
    MappedCheckpoint, SectionInfo, V2Options, VERSION_V1, VERSION_V2, WRITE_VERSION,
};
pub use mmapio::AlignedBytes;
pub use manager::{
    AdaptivePolicy, CheckpointManager, CheckpointOutcome, CheckpointReport, Clock, ManagerPolicy,
    PreparedCheckpoint, RetryPolicy, RetryTotals, SystemClock,
};
pub use replicated::{ReplicaSpec, ReplicatedBackend};
pub use restart::{DegradedRestart, LostIteration, RestartEngine};
pub use scrub::{repair, scrub, RepairReport, ReplicaScrubReport, ScrubFinding, ScrubReport};
pub use store::{CheckpointStore, StoreEntry};

/// Variables are keyed by name; every variable is an `f64` array of the
/// same length within one checkpoint stream.
pub type VariableSet = std::collections::BTreeMap<String, Vec<f64>>;
