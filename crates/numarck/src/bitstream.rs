//! Bit-packed index stream.
//!
//! Each compressible point stores a `B`-bit table index; the paper's
//! storage model (Eq. 3) charges exactly `B/64` words per compressed
//! point, so the index stream must be packed with no per-point overhead.
//! Values are packed LSB-first into little-endian `u64` words.

use std::sync::atomic::{AtomicU64, Ordering};

/// Append-only bit writer.
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    words: Vec<u64>,
    /// Total number of bits written.
    len_bits: usize,
}

impl BitWriter {
    /// Empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writer with capacity for `n` values of `bits` bits each.
    pub fn with_capacity(n: usize, bits: u8) -> Self {
        let total = n * bits as usize;
        Self { words: Vec::with_capacity(total.div_ceil(64)), len_bits: 0 }
    }

    /// Append the low `bits` bits of `value`.
    ///
    /// # Panics
    /// Panics if `bits` is 0 or > 32, or if `value` does not fit.
    #[inline]
    pub fn push(&mut self, value: u32, bits: u8) {
        assert!((1..=32).contains(&bits), "bits must be in 1..=32");
        assert!(
            bits == 32 || value < (1u32 << bits),
            "value {value} does not fit in {bits} bits"
        );
        let bit_pos = self.len_bits % 64;
        if bit_pos == 0 {
            self.words.push(value as u64);
        } else {
            let word = self.words.last_mut().expect("non-empty by invariant");
            *word |= (value as u64) << bit_pos;
            let spill = bit_pos + bits as usize;
            if spill > 64 {
                self.words.push((value as u64) >> (64 - bit_pos));
            }
        }
        self.len_bits += bits as usize;
    }

    /// Bulk variant of [`BitWriter::push`] for parallel packers: write
    /// `values` as consecutive `bits`-wide fields starting at the absolute
    /// bit offset `start_bit` of the shared word buffer `words`.
    ///
    /// `words` must be zero in the target bit range. Words fully covered by
    /// this call's bit range are written with plain (relaxed) stores; the
    /// first and last touched words may be shared with writers of the
    /// adjacent bit ranges, so they are merged with a relaxed `fetch_or`.
    /// Because OR of disjoint bit fields commutes, concurrent calls over
    /// disjoint bit ranges produce exactly the words a sequential
    /// [`BitWriter::push`] loop would, regardless of thread interleaving.
    ///
    /// # Panics
    /// Panics if `bits` is 0 or > 32, or (in debug builds) if a value does
    /// not fit or the bit range overruns `words`.
    pub fn write_packed_at(words: &[AtomicU64], start_bit: usize, values: &[u32], bits: u8) {
        assert!((1..=32).contains(&bits), "bits must be in 1..=32");
        if values.is_empty() {
            return;
        }
        let end_bit = start_bit + values.len() * bits as usize;
        debug_assert!(end_bit <= words.len() * 64, "bit range overruns the word buffer");
        let first_word = start_bit / 64;
        let last_word = (end_bit - 1) / 64;
        let flush = |wi: usize, word: u64| {
            if wi == first_word || wi == last_word {
                words[wi].fetch_or(word, Ordering::Relaxed);
            } else {
                words[wi].store(word, Ordering::Relaxed);
            }
        };
        // Accumulate each output word locally and flush it once complete;
        // every word is flushed exactly once.
        let mut acc = 0u64;
        let mut acc_word = first_word;
        let mut pos = start_bit;
        for &v in values {
            debug_assert!(
                bits == 32 || v < (1u32 << bits),
                "value {v} does not fit in {bits} bits"
            );
            let wi = pos / 64;
            let bit = pos % 64;
            if wi != acc_word {
                flush(acc_word, acc);
                acc = 0;
                acc_word = wi;
            }
            acc |= (v as u64) << bit;
            let spill = bit + bits as usize;
            if spill > 64 {
                flush(acc_word, acc);
                acc_word = wi + 1;
                acc = (v as u64) >> (64 - bit);
            }
            pos += bits as usize;
        }
        flush(acc_word, acc);
    }

    /// Splice a chunk-local bit stream into the shared word buffer: OR
    /// the first `src_len_bits` bits of `src` into `dst` starting at the
    /// absolute bit offset `dst_bit_start`, funnel-shifting whole words
    /// instead of re-packing value by value.
    ///
    /// This is the fused encoder's placement primitive: each chunk packs
    /// its own codes into a private [`BitWriter`] while they are still
    /// cache-hot, then splices the finished words here once the global
    /// offsets are known. Same stitching discipline as
    /// [`BitWriter::write_packed_at`] — the first and last touched words
    /// may be shared with adjacent ranges and are merged with a relaxed
    /// `fetch_or`; interior words are plain stores — so concurrent calls
    /// over disjoint bit ranges reproduce the serial packing exactly.
    ///
    /// # Panics
    /// Debug-panics if `src_len_bits` overruns either buffer.
    pub fn shift_or_into(dst: &[AtomicU64], dst_bit_start: usize, src: &[u64], src_len_bits: usize) {
        if src_len_bits == 0 {
            return;
        }
        debug_assert!(src_len_bits <= src.len() * 64, "src_len_bits overruns src");
        let end_bit = dst_bit_start + src_len_bits;
        debug_assert!(end_bit <= dst.len() * 64, "bit range overruns the word buffer");
        let first_word = dst_bit_start / 64;
        let last_word = (end_bit - 1) / 64;
        let shift = dst_bit_start % 64;
        let flush = |wi: usize, word: u64| {
            if wi == first_word || wi == last_word {
                dst[wi].fetch_or(word, Ordering::Relaxed);
            } else {
                dst[wi].store(word, Ordering::Relaxed);
            }
        };
        let src_words = src_len_bits.div_ceil(64);
        let tail_bits = src_len_bits - (src_words - 1) * 64; // 1..=64
        let mut carry = 0u64;
        let mut wi = first_word;
        for (si, &raw) in src[..src_words].iter().enumerate() {
            let w = if si == src_words - 1 && tail_bits < 64 {
                raw & ((1u64 << tail_bits) - 1)
            } else {
                raw
            };
            if shift == 0 {
                flush(wi, w);
            } else {
                flush(wi, carry | (w << shift));
                carry = w >> (64 - shift);
            }
            wi += 1;
        }
        // The spill word exists iff the shifted stream crosses one more
        // word boundary than the source did.
        if shift != 0 && wi <= last_word {
            flush(wi, carry);
        }
    }

    /// Number of bits written so far.
    #[inline]
    pub fn len_bits(&self) -> usize {
        self.len_bits
    }

    /// Finish and return the packed words.
    pub fn into_words(self) -> Vec<u64> {
        self.words
    }

    /// Borrow the packed words.
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

/// Sequential bit reader over packed words.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    words: &'a [u64],
    pos_bits: usize,
    len_bits: usize,
}

impl<'a> BitReader<'a> {
    /// Read from `words`, which hold `len_bits` valid bits.
    pub fn new(words: &'a [u64], len_bits: usize) -> Self {
        debug_assert!(len_bits <= words.len() * 64);
        Self { words, pos_bits: 0, len_bits }
    }

    /// Read the next `bits`-bit value, or `None` past the end.
    #[inline]
    pub fn read(&mut self, bits: u8) -> Option<u32> {
        debug_assert!((1..=32).contains(&bits));
        if self.pos_bits + bits as usize > self.len_bits {
            return None;
        }
        let word_idx = self.pos_bits / 64;
        let bit_pos = self.pos_bits % 64;
        let mut v = self.words[word_idx] >> bit_pos;
        let avail = 64 - bit_pos;
        if (bits as usize) > avail {
            v |= self.words[word_idx + 1] << avail;
        }
        self.pos_bits += bits as usize;
        let mask = if bits == 32 { u32::MAX } else { (1u32 << bits) - 1 };
        Some((v as u32) & mask)
    }

    /// Bits remaining.
    #[inline]
    pub fn remaining_bits(&self) -> usize {
        self.len_bits - self.pos_bits
    }
}

/// Random-access reader: fetch the `i`-th fixed-width value directly.
/// Used by the decoder when only a slice of the points is needed.
#[inline]
pub fn read_at(words: &[u64], bits: u8, i: usize) -> u32 {
    debug_assert!((1..=32).contains(&bits));
    let start = i * bits as usize;
    let word_idx = start / 64;
    let bit_pos = start % 64;
    let mut v = words[word_idx] >> bit_pos;
    let avail = 64 - bit_pos;
    if (bits as usize) > avail {
        v |= words[word_idx + 1] << avail;
    }
    let mask = if bits == 32 { u32::MAX } else { (1u32 << bits) - 1 };
    (v as u32) & mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_various_widths() {
        for bits in [1u8, 3, 7, 8, 9, 13, 16, 24, 31, 32] {
            let max = if bits == 32 { u32::MAX } else { (1u32 << bits) - 1 };
            let values: Vec<u32> =
                (0..1000u32).map(|i| (i.wrapping_mul(2654435761)) & max).collect();
            let mut w = BitWriter::with_capacity(values.len(), bits);
            for &v in &values {
                w.push(v, bits);
            }
            assert_eq!(w.len_bits(), values.len() * bits as usize);
            let words = w.into_words();
            let mut r = BitReader::new(&words, values.len() * bits as usize);
            for &v in &values {
                assert_eq!(r.read(bits), Some(v), "width {bits}");
            }
            assert_eq!(r.read(bits), None);
        }
    }

    #[test]
    fn read_at_matches_sequential() {
        let bits = 9u8;
        let values: Vec<u32> = (0..500).map(|i| (i * 7) % 512).collect();
        let mut w = BitWriter::new();
        for &v in &values {
            w.push(v, bits);
        }
        let words = w.into_words();
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(read_at(&words, bits, i), v);
        }
    }

    #[test]
    fn cross_word_boundary() {
        // 9-bit values straddle u64 boundaries every 64/gcd(9,64) values.
        let mut w = BitWriter::new();
        for i in 0..16u32 {
            w.push(0b1_0000_0001 ^ i, 9);
        }
        let words = w.words().to_vec();
        let mut r = BitReader::new(&words, w.len_bits());
        for i in 0..16u32 {
            assert_eq!(r.read(9), Some(0b1_0000_0001 ^ i));
        }
    }

    #[test]
    fn empty_reader_returns_none() {
        let mut r = BitReader::new(&[], 0);
        assert_eq!(r.read(8), None);
        assert_eq!(r.remaining_bits(), 0);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_value_panics() {
        let mut w = BitWriter::new();
        w.push(256, 8);
    }

    #[test]
    fn storage_is_tight() {
        // 1000 9-bit values = 9000 bits = 141 words (ceil).
        let mut w = BitWriter::new();
        for _ in 0..1000 {
            w.push(0, 9);
        }
        assert_eq!(w.words().len(), 9000usize.div_ceil(64));
    }

    /// Serial reference for the bulk writer tests: push everything through
    /// one `BitWriter` and return the words.
    fn pushed_words(values: &[u32], bits: u8) -> Vec<u64> {
        let mut w = BitWriter::with_capacity(values.len(), bits);
        for &v in values {
            w.push(v, bits);
        }
        w.into_words()
    }

    fn atomic_buffer(len: usize) -> Vec<AtomicU64> {
        (0..len).map(|_| AtomicU64::new(0)).collect()
    }

    fn into_plain(words: Vec<AtomicU64>) -> Vec<u64> {
        words.into_iter().map(AtomicU64::into_inner).collect()
    }

    #[test]
    fn write_packed_at_matches_push_for_any_split() {
        // Split the value stream at every position; the two bulk writes
        // (second at a word-unaligned offset) must stitch boundary words
        // back into exactly the serial packing.
        for bits in [1u8, 3, 7, 9, 13, 16] {
            let max = (1u32 << bits) - 1;
            let values: Vec<u32> = (0..150u32).map(|i| i.wrapping_mul(2654435761) & max).collect();
            let expected = pushed_words(&values, bits);
            for split in 0..=values.len() {
                let words = atomic_buffer(expected.len());
                let (a, b) = values.split_at(split);
                BitWriter::write_packed_at(&words, 0, a, bits);
                BitWriter::write_packed_at(&words, split * bits as usize, b, bits);
                assert_eq!(into_plain(words), expected, "bits={bits} split={split}");
            }
        }
    }

    #[test]
    fn write_packed_at_concurrent_chunks_match_serial() {
        use rayon::prelude::*;
        let bits = 11u8;
        let values: Vec<u32> = (0..10_000u32).map(|i| i.wrapping_mul(40503) & ((1 << 11) - 1)).collect();
        let expected = pushed_words(&values, bits);
        let words = atomic_buffer(expected.len());
        // Deliberately word-misaligned chunk size (97 values × 11 bits).
        values.par_chunks(97).enumerate().for_each(|(c, chunk)| {
            BitWriter::write_packed_at(&words, c * 97 * bits as usize, chunk, bits);
        });
        assert_eq!(into_plain(words), expected);
    }

    #[test]
    fn write_packed_at_empty_is_a_noop() {
        let words = atomic_buffer(2);
        BitWriter::write_packed_at(&words, 37, &[], 9);
        assert_eq!(into_plain(words), vec![0, 0]);
    }

    #[test]
    fn shift_or_into_matches_write_packed_at_for_any_split() {
        // Pack each half locally with a BitWriter, splice both into one
        // buffer at every possible (word-misaligned) split; the result
        // must equal the one-shot serial packing bit for bit.
        for bits in [1u8, 3, 7, 9, 13, 16] {
            let max = (1u32 << bits) - 1;
            let values: Vec<u32> = (0..150u32).map(|i| i.wrapping_mul(2654435761) & max).collect();
            let expected = pushed_words(&values, bits);
            for split in 0..=values.len() {
                let words = atomic_buffer(expected.len());
                let (a, b) = values.split_at(split);
                let (wa, wb) = (pushed_words(a, bits), pushed_words(b, bits));
                BitWriter::shift_or_into(&words, 0, &wa, a.len() * bits as usize);
                BitWriter::shift_or_into(
                    &words,
                    split * bits as usize,
                    &wb,
                    b.len() * bits as usize,
                );
                assert_eq!(into_plain(words), expected, "bits={bits} split={split}");
            }
        }
    }

    #[test]
    fn shift_or_into_concurrent_chunks_match_serial() {
        use rayon::prelude::*;
        let bits = 11u8;
        let values: Vec<u32> =
            (0..10_000u32).map(|i| i.wrapping_mul(40503) & ((1 << 11) - 1)).collect();
        let expected = pushed_words(&values, bits);
        let words = atomic_buffer(expected.len());
        // Word-misaligned chunks (97 values × 11 bits) spliced in parallel.
        values.par_chunks(97).enumerate().for_each(|(c, chunk)| {
            let local = pushed_words(chunk, bits);
            BitWriter::shift_or_into(
                &words,
                c * 97 * bits as usize,
                &local,
                chunk.len() * bits as usize,
            );
        });
        assert_eq!(into_plain(words), expected);
    }

    #[test]
    fn shift_or_into_ignores_stray_bits_past_len() {
        // Garbage above src_len_bits in the final source word must not
        // leak into the destination.
        let words = atomic_buffer(2);
        let src = [u64::MAX];
        BitWriter::shift_or_into(&words, 3, &src, 5);
        assert_eq!(into_plain(words), vec![0b1111_1000, 0]);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn roundtrip_random(
                values in proptest::collection::vec(0u32..1 << 11, 0..2000)
            ) {
                let bits = 11u8;
                let mut w = BitWriter::new();
                for &v in &values {
                    w.push(v, bits);
                }
                let words = w.words().to_vec();
                let mut r = BitReader::new(&words, w.len_bits());
                for &v in &values {
                    prop_assert_eq!(r.read(bits), Some(v));
                }
                prop_assert_eq!(r.read(bits), None);
            }

            #[test]
            fn mixed_width_stream(ops in proptest::collection::vec((1u8..=16, 0u32..65536), 0..500)) {
                let mut w = BitWriter::new();
                let mut expect = Vec::new();
                for &(bits, val) in &ops {
                    let mask = (1u32 << bits) - 1;
                    let v = val & mask;
                    w.push(v, bits);
                    expect.push((bits, v));
                }
                let words = w.words().to_vec();
                let mut r = BitReader::new(&words, w.len_bits());
                for (bits, v) in expect {
                    prop_assert_eq!(r.read(bits), Some(v));
                }
            }
        }
    }
}
