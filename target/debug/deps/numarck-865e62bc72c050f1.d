/root/repo/target/debug/deps/numarck-865e62bc72c050f1.d: crates/numarck-cli/src/main.rs

/root/repo/target/debug/deps/numarck-865e62bc72c050f1: crates/numarck-cli/src/main.rs

crates/numarck-cli/src/main.rs:
