//! Minimal plain-HTTP `/metrics` listener.
//!
//! One `std::net::TcpListener` on a background thread, answering
//! `GET /metrics` with the Prometheus text rendering of a snapshot
//! taken at request time. No TLS, no keep-alive, no async — a scrape
//! is one short-lived connection, which is all Prometheus (or `curl`
//! in CI) needs.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::snapshot::{render_prometheus, Snapshot};

/// How long a scraper may dawdle sending its request line before the
/// connection is dropped.
const READ_TIMEOUT: Duration = Duration::from_secs(2);

/// A running `/metrics` listener. Shuts down on [`MetricsServer::shutdown`]
/// or drop.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and serve
    /// `GET /metrics`, rendering a fresh snapshot from `snapshot_fn`
    /// per scrape. Returns once the socket is bound; the accept loop
    /// runs on a background thread.
    pub fn start<A, F>(addr: A, snapshot_fn: F) -> std::io::Result<Self>
    where
        A: ToSocketAddrs,
        F: Fn() -> Snapshot + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = stop.clone();
        let handle = std::thread::Builder::new()
            .name("obs-metrics".into())
            .spawn(move || accept_loop(listener, thread_stop, snapshot_fn))?;
        Ok(Self { addr, stop, handle: Some(handle) })
    }

    /// The bound address (resolves an ephemeral port request).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the listener and join its thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock accept() with a throwaway connection to ourselves.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop<F>(listener: TcpListener, stop: Arc<AtomicBool>, snapshot_fn: F)
where
    F: Fn() -> Snapshot,
{
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        // Serve inline: scrapes are rare and tiny, a thread per scrape
        // would be overkill.
        let _ = serve_one(stream, &snapshot_fn);
    }
}

fn serve_one<F>(mut stream: TcpStream, snapshot_fn: &F) -> std::io::Result<()>
where
    F: Fn() -> Snapshot,
{
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    let request_line = read_request_head(&mut stream)?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, body) = if method != "GET" {
        ("405 Method Not Allowed", String::from("method not allowed\n"))
    } else if path == "/metrics" || path.starts_with("/metrics?") {
        ("200 OK", render_prometheus(&snapshot_fn()))
    } else {
        ("404 Not Found", String::from("not found; try /metrics\n"))
    };
    let response = format!(
        "HTTP/1.1 {status}\r\n\
         Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// Read the whole request head (through the blank line) and return the
/// request line. Draining the head before responding matters: closing
/// a socket with unread bytes pending sends an RST that can destroy
/// the in-flight response. Total bytes are bounded so a garbage client
/// can't make us buffer forever.
fn read_request_head(stream: &mut TcpStream) -> std::io::Result<String> {
    const MAX_HEAD: usize = 8 * 1024;
    let mut head = Vec::with_capacity(256);
    let mut byte = [0u8; 1];
    while head.len() < MAX_HEAD {
        match stream.read(&mut byte) {
            Ok(0) => break,
            Ok(_) => {
                head.push(byte[0]);
                if head.ends_with(b"\r\n\r\n") || head.ends_with(b"\n\n") {
                    break;
                }
            }
            Err(e) => return Err(e),
        }
    }
    let first = head.split(|&b| b == b'\n').next().unwrap_or(&[]);
    let first = first.strip_suffix(b"\r").unwrap_or(first);
    Ok(String::from_utf8_lossy(first).into_owned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        let (head, body) = raw.split_once("\r\n\r\n").unwrap();
        let status = head.lines().next().unwrap().to_owned();
        (status, body.to_owned())
    }

    #[test]
    fn serves_metrics_and_404s_elsewhere() {
        let registry = Arc::new(Registry::new());
        registry.counter("numarck_test_total").add(7);
        let reg = registry.clone();
        let server = MetricsServer::start("127.0.0.1:0", move || reg.snapshot()).unwrap();
        let addr = server.local_addr();

        let (status, body) = http_get(addr, "/metrics");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("numarck_test_total 7"), "{body}");

        // Snapshot is fresh per scrape.
        registry.counter("numarck_test_total").add(1);
        let (_, body) = http_get(addr, "/metrics");
        assert!(body.contains("numarck_test_total 8"), "{body}");

        let (status, _) = http_get(addr, "/other");
        assert!(status.contains("404"), "{status}");

        server.shutdown();
    }

    #[test]
    fn rejects_non_get() {
        let server = MetricsServer::start("127.0.0.1:0", Snapshot::default).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.write_all(b"POST /metrics HTTP/1.1\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 405"), "{raw}");
    }

    #[test]
    fn shutdown_joins_cleanly() {
        let server = MetricsServer::start("127.0.0.1:0", Snapshot::default).unwrap();
        let addr = server.local_addr();
        server.shutdown();
        // Listener is gone: a fresh connection must fail or be closed
        // without a response.
        match TcpStream::connect(addr) {
            Err(_) => {}
            Ok(mut s) => {
                let _ = s.write_all(b"GET /metrics HTTP/1.1\r\n\r\n");
                let mut out = String::new();
                let n = s.read_to_string(&mut out).unwrap_or(0);
                assert_eq!(n, 0, "listener answered after shutdown: {out}");
            }
        }
    }
}
