//! Background maintenance integration: the in-server compaction worker
//! merges a live session's delta chain between ingests, restarts stay
//! bit-exact across it, and the counters surface over the wire.

use std::time::{Duration, Instant};

use numarck::{Config, Strategy};
use numarck_checkpoint::{CheckpointStore, VariableSet};
use numarck_compact::{ChainView, CompactionConfig};
use numarck_serve::{Client, Server, ServerConfig};

mod util;
use util::TempDir;

const TIMEOUT: Duration = Duration::from_secs(10);

fn test_config() -> Config {
    Config::new(8, 0.001, Strategy::Clustering).unwrap()
}

fn vars(iteration: u64) -> VariableSet {
    let mut v = VariableSet::new();
    v.insert(
        "x".into(),
        (0..200).map(|j| (j as f64 + 1.0) * 1.003f64.powi(iteration as i32)).collect(),
    );
    v
}

/// The maintenance worker compacts a session it shares with live
/// traffic: merged deltas appear in the store, every iteration still
/// restarts to exactly the state it restarted to before, and the
/// compaction counters come back in the stats reply.
#[test]
fn background_worker_compacts_live_session_bit_exact() {
    let tmp = TempDir::new("maintenance");
    let mut config = ServerConfig::new(tmp.0.join("root"), test_config());
    config.io_timeout = TIMEOUT;
    // Deltas only (no scheduled fulls): maximal compaction surface.
    config.full_interval = 1000;
    config.compact_interval = Duration::from_millis(100);
    // GC off so every iteration stays individually restartable — this
    // test is about merge correctness under live traffic.
    config.compaction =
        Some(CompactionConfig { merge_window: 4, keep_last_fulls: 0, ..Default::default() });
    let server = Server::spawn("127.0.0.1:0", config).unwrap();
    let mut client = Client::connect(server.addr(), TIMEOUT).unwrap();
    let session = client.open_session("sim").unwrap();
    let iters = 17u64;
    for it in 0..iters {
        client.put_iteration(session, it, &vars(it)).unwrap();
    }
    // Compaction is bit-exact, so these references are valid whether or
    // not a maintenance pass has already slipped in.
    let before: Vec<VariableSet> =
        (0..iters).map(|it| client.restart(session, it).unwrap().vars).collect();

    // Wait for a merged delta (span >= 2) to land in the store.
    let store = CheckpointStore::open(tmp.0.join("root").join("sim")).unwrap();
    let deadline = Instant::now() + TIMEOUT;
    loop {
        let view = ChainView::load(&store).unwrap();
        if view.iterations().any(|it| view.entry(it).is_some_and(|e| e.delta_span >= 2)) {
            break;
        }
        assert!(Instant::now() < deadline, "maintenance worker never merged the chain");
        std::thread::sleep(Duration::from_millis(20));
    }

    // Every iteration restarts through the compacted chain to the exact
    // same bits, and ingest keeps working after maintenance passes.
    for (it, expected) in before.iter().enumerate() {
        let reply = client.restart(session, it as u64).unwrap();
        assert_eq!(reply.achieved, it as u64);
        assert_eq!(&reply.vars, expected, "iteration {it} diverged after compaction");
    }
    client.put_iteration(session, iters, &vars(iters)).unwrap();
    assert_eq!(client.restart(session, iters).unwrap().achieved, iters);

    let stats = client.stats().unwrap();
    assert!(stats.compact_runs >= 1, "stats: {stats:?}");
    assert!(stats.compact_deltas_merged >= 4, "stats: {stats:?}");

    // Drain must also stop the maintenance worker (join would hang
    // otherwise).
    drop(client);
    server.shutdown();
}
