//! Figure 4: NUMARCK on CMIP5 data — incompressible ratio and mean error
//! rate per iteration for each approximation strategy.
//!
//! Settings per the paper: `E = 0.1%`, `B = 8` bits. Expected shape:
//! clustering ≤ log-scale ≤ equal-width in incompressible ratio, all
//! mean errors far below `E`, and CMIP5 visibly harder than FLASH
//! (compare `fig5`).

use climate_sim::ClimateVar;
use numarck_bench::data::climate_sequence;
use numarck_bench::report::{pct, print_table, write_csv};
use numarck_bench::run::{mean_of, strategy_sweep};
use numarck_bench::RESULTS_DIR;

fn main() {
    let iterations = 60usize;
    let bits = 8u8;
    let tolerance = 0.001;

    println!(
        "Fig. 4: CMIP5, E = 0.1%, B = {bits} — mean over {} transitions",
        iterations - 1
    );
    let mut summary = vec![vec![
        "variable".to_string(),
        "strategy".to_string(),
        "incompressible %".to_string(),
        "mean error %".to_string(),
        "compression % (Eq.3)".to_string(),
    ]];
    let mut csv = vec![vec![
        "variable".to_string(),
        "strategy".to_string(),
        "iteration".to_string(),
        "incompressible_ratio".to_string(),
        "mean_error".to_string(),
        "compression_eq3".to_string(),
    ]];

    for var in ClimateVar::all() {
        let seq = climate_sequence(var, iterations);
        for (strategy, stats) in strategy_sweep(&seq, bits, tolerance) {
            for (i, st) in stats.iter().enumerate() {
                csv.push(vec![
                    var.name().to_string(),
                    strategy.name().to_string(),
                    (i + 1).to_string(),
                    st.incompressible_ratio.to_string(),
                    st.mean_error_rate.to_string(),
                    st.compression_ratio_eq3.to_string(),
                ]);
            }
            summary.push(vec![
                var.name().to_string(),
                strategy.name().to_string(),
                pct(mean_of(&stats, |s| s.incompressible_ratio), 2),
                pct(mean_of(&stats, |s| s.mean_error_rate), 4),
                pct(mean_of(&stats, |s| s.compression_ratio_eq3), 2),
            ]);
        }
    }
    print_table(&summary);
    println!("\n(paper: clustering best on every variable; mean errors < 0.025%;");
    println!(" clustering incompressible ratio up to ~25% on the hard variables)");
    match write_csv(RESULTS_DIR, "fig4_cmip5_per_iteration", &csv) {
        Ok(p) => println!("wrote {p}"),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
