/root/repo/target/debug/deps/numarck-6a3718d4423644ed.d: crates/numarck-cli/src/main.rs

/root/repo/target/debug/deps/libnumarck-6a3718d4423644ed.rmeta: crates/numarck-cli/src/main.rs

crates/numarck-cli/src/main.rs:
