//! The six CMIP5 variables and their statistical parameterisation.

/// A CMIP5 variable from the paper's evaluation set (§III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ClimateVar {
    /// Moisture in the upper portion of the soil column (daily).
    Mrsos,
    /// Total runoff (daily; tiny, intermittent values).
    Mrro,
    /// Convective mass flux (monthly; very large values).
    Mc,
    /// Surface downwelling longwave radiation (daily).
    Rlds,
    /// Surface upwelling longwave radiation (daily).
    Rlus,
    /// Ambient aerosol absorption optical thickness at 550 nm (daily;
    /// the paper's hardest variable).
    Abs550aer,
}

/// Parameters of one variable's synthetic dynamics.
///
/// Fields evolve as `value = base · season(t) · exp(s_t)` where `s` is a
/// spatially correlated AR(1) anomaly:
/// `s_{t+1} = φ·s_t + σ·sqrt(1 − φ²)·η_t`. The per-step change ratio is
/// then approximately `Δs + seasonal drift`, with
/// `std(Δs) = σ·sqrt(2(1 − φ))` — the single knob that controls how hard
/// the variable is for NUMARCK. `spike_prob`/`spike_scale` add episodic
/// events (rain, plumes) that give the heavy tails equal-width binning
/// chokes on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VarParams {
    /// Mean magnitude of the base field.
    pub base_scale: f64,
    /// Relative amplitude of the spatial texture of the base field.
    pub texture_amp: f64,
    /// AR(1) persistence φ.
    pub phi: f64,
    /// Stationary anomaly standard deviation σ (log space).
    pub sigma: f64,
    /// Seasonal cycle relative amplitude.
    pub seasonal_amp: f64,
    /// Period of the cycle in iterations (365 daily, 12 monthly).
    pub season_period: f64,
    /// Per-point, per-step probability of an episodic spike.
    pub spike_prob: f64,
    /// Log-scale magnitude of a spike (added to the anomaly, then
    /// decaying away through φ).
    pub spike_scale: f64,
}

impl ClimateVar {
    /// All six variables, in the paper's listing order.
    pub fn all() -> [ClimateVar; 6] {
        [Self::Mrsos, Self::Mrro, Self::Mc, Self::Rlds, Self::Rlus, Self::Abs550aer]
    }

    /// The five variables the Table I/II comparison uses (the paper's
    /// CMIP5 rows: rlus, mrsos, mrro, rlds, mc).
    pub fn table1_set() -> [ClimateVar; 5] {
        [Self::Rlus, Self::Mrsos, Self::Mrro, Self::Rlds, Self::Mc]
    }

    /// CMIP5 variable name.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Mrsos => "mrsos",
            Self::Mrro => "mrro",
            Self::Mc => "mc",
            Self::Rlds => "rlds",
            Self::Rlus => "rlus",
            Self::Abs550aer => "abs550aer",
        }
    }

    /// Parse a variable name.
    pub fn from_name(name: &str) -> Option<ClimateVar> {
        Self::all().into_iter().find(|v| v.name() == name)
    }

    /// The calibrated dynamics for this variable. The calibration targets
    /// are the paper's published facts, re-derived in this crate's tests:
    /// rlus mostly sub-0.5% daily changes; abs550aer spread far wider;
    /// mrro tiny-valued; mc huge-valued with monthly-scale steps.
    pub fn params(&self) -> VarParams {
        match self {
            Self::Rlus => VarParams {
                // Very persistent, small-step anomalies: the paper's
                // easiest variable (>75% of daily changes below 0.5%,
                // and NUMARCK's Table II ξ beats ISABELA's).
                base_scale: 350.0,
                texture_amp: 0.25,
                phi: 0.95,
                sigma: 0.003,
                seasonal_amp: 0.04,
                season_period: 365.0,
                spike_prob: 0.0,
                spike_scale: 0.0,
            },
            Self::Rlds => VarParams {
                // Downwelling longwave is cloud-modulated: broad daily
                // multiplicative swings. Calibrated so the Fig. 6
                // precision sweep reproduces the paper's shape —
                // equal-width binning is poor at B = 8 (bin width far
                // above 2E), collapses at B = 9, and becomes perfect at
                // B = 10 (the realised change-ratio range fits in
                // 1023 × 2E).
                base_scale: 310.0,
                texture_amp: 0.3,
                phi: 0.90,
                sigma: 0.34,
                seasonal_amp: 0.08,
                season_period: 365.0,
                spike_prob: 0.0005,
                spike_scale: 0.08,
            },
            Self::Mrsos => VarParams {
                base_scale: 22.0,
                texture_amp: 0.4,
                phi: 0.985,
                sigma: 0.05,
                seasonal_amp: 0.10,
                season_period: 365.0,
                // Rain events wet the soil sharply, then φ dries it out.
                spike_prob: 0.002,
                spike_scale: 0.25,
            },
            Self::Mrro => VarParams {
                // Tiny values so the Table II ξ rounds to 0.000.
                base_scale: 2e-5,
                texture_amp: 0.6,
                phi: 0.85,
                sigma: 0.10,
                seasonal_amp: 0.15,
                season_period: 365.0,
                spike_prob: 0.003,
                spike_scale: 1.2,
            },
            Self::Mc => VarParams {
                // Huge values; monthly cadence means big steps and a
                // short seasonal period.
                base_scale: 5.0e4,
                texture_amp: 0.5,
                phi: 0.55,
                sigma: 0.015,
                seasonal_amp: 0.20,
                season_period: 12.0,
                spike_prob: 0.0,
                spike_scale: 0.0,
            },
            Self::Abs550aer => VarParams {
                // Broad multiplicative wander + plumes: change ratios
                // spread over tens of percent, far beyond 2^B − 1
                // representatives at E = 0.1%.
                base_scale: 0.08,
                texture_amp: 0.8,
                phi: 0.97,
                sigma: 0.50,
                seasonal_amp: 0.05,
                season_period: 365.0,
                spike_prob: 0.001,
                spike_scale: 0.9,
            },
        }
    }
}

impl std::fmt::Display for ClimateVar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_unique_names() {
        let names: std::collections::HashSet<_> =
            ClimateVar::all().iter().map(|v| v.name()).collect();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn name_roundtrip() {
        for v in ClimateVar::all() {
            assert_eq!(ClimateVar::from_name(v.name()), Some(v));
        }
        assert_eq!(ClimateVar::from_name("tas"), None);
    }

    #[test]
    fn table1_set_matches_paper_rows() {
        let names: Vec<_> = ClimateVar::table1_set().iter().map(|v| v.name()).collect();
        assert_eq!(names, vec!["rlus", "mrsos", "mrro", "rlds", "mc"]);
    }

    #[test]
    fn per_step_change_scale_ordering() {
        // std(Δs) = σ·sqrt(2(1 − φ)) must put rlus easiest (§III-C) and
        // one of the "challenging" pair {abs550aer, rlds} hardest
        // (§III-E names abs550aer most challenging overall; rlds is the
        // Fig. 6 stress variable whose bare step width is comparable —
        // abs550aer's extra difficulty comes from its plume spikes).
        let step_std = |v: ClimateVar| {
            let p = v.params();
            p.sigma * (2.0 * (1.0 - p.phi)).sqrt()
        };
        let rlus = step_std(ClimateVar::Rlus);
        let hardest = step_std(ClimateVar::Abs550aer).max(step_std(ClimateVar::Rlds));
        for v in ClimateVar::all() {
            let s = step_std(v);
            assert!(s >= rlus - 1e-12, "{v} easier than rlus");
            assert!(s <= hardest + 1e-12, "{v} harder than the hard pair");
        }
        // rlus daily steps sit well below the 0.5% landmark.
        assert!(rlus < 0.005, "rlus step std {rlus}");
        // abs550aer steps are percent-scale.
        assert!(step_std(ClimateVar::Abs550aer) > 0.05);
    }
}
