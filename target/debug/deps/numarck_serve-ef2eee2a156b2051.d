/root/repo/target/debug/deps/numarck_serve-ef2eee2a156b2051.d: crates/numarck-serve/src/lib.rs crates/numarck-serve/src/client.rs crates/numarck-serve/src/journal.rs crates/numarck-serve/src/recovery.rs crates/numarck-serve/src/server.rs crates/numarck-serve/src/wire.rs

/root/repo/target/debug/deps/libnumarck_serve-ef2eee2a156b2051.rmeta: crates/numarck-serve/src/lib.rs crates/numarck-serve/src/client.rs crates/numarck-serve/src/journal.rs crates/numarck-serve/src/recovery.rs crates/numarck-serve/src/server.rs crates/numarck-serve/src/wire.rs

crates/numarck-serve/src/lib.rs:
crates/numarck-serve/src/client.rs:
crates/numarck-serve/src/journal.rs:
crates/numarck-serve/src/recovery.rs:
crates/numarck-serve/src/server.rs:
crates/numarck-serve/src/wire.rs:
