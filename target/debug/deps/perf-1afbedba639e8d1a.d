/root/repo/target/debug/deps/perf-1afbedba639e8d1a.d: crates/numarck-bench/src/bin/perf.rs

/root/repo/target/debug/deps/libperf-1afbedba639e8d1a.rmeta: crates/numarck-bench/src/bin/perf.rs

crates/numarck-bench/src/bin/perf.rs:
