/root/repo/target/debug/deps/durability-6c75a37e92491aa3.d: crates/numarck-serve/tests/durability.rs crates/numarck-serve/tests/util/mod.rs

/root/repo/target/debug/deps/libdurability-6c75a37e92491aa3.rmeta: crates/numarck-serve/tests/durability.rs crates/numarck-serve/tests/util/mod.rs

crates/numarck-serve/tests/durability.rs:
crates/numarck-serve/tests/util/mod.rs:
