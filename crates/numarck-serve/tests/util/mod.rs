//! Shared helpers for the integration tests.

use std::path::PathBuf;

/// Self-cleaning unique temp directory.
pub struct TempDir(pub PathBuf);

impl TempDir {
    pub fn new(tag: &str) -> Self {
        let unique = format!(
            "numarck-serve-test-{tag}-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .expect("clock after epoch")
                .as_nanos()
        );
        let path = std::env::temp_dir().join(unique);
        std::fs::create_dir_all(&path).expect("create temp dir");
        Self(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}
