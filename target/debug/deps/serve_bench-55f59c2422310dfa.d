/root/repo/target/debug/deps/serve_bench-55f59c2422310dfa.d: crates/numarck-bench/src/bin/serve_bench.rs

/root/repo/target/debug/deps/libserve_bench-55f59c2422310dfa.rmeta: crates/numarck-bench/src/bin/serve_bench.rs

crates/numarck-bench/src/bin/serve_bench.rs:
