//! Parallel K-means clustering substrate.
//!
//! NUMARCK's best-performing approximation strategy (SC'14 §II-C.3) runs
//! K-means over the one-dimensional change-ratio stream with
//! `k = 2^B − 1` clusters, seeded from the equal-width histogram to avoid
//! the classic sensitivity of Lloyd's algorithm to its initial centres.
//! The paper uses the authors' MPI-parallel K-means package; this crate is
//! the shared-memory equivalent.
//!
//! Two implementations are provided:
//!
//! * [`lloyd1d`] — the production path. Exploits the 1-D structure: with
//!   centres kept sorted, nearest-centre assignment reduces to a binary
//!   search over the `k − 1` midpoints (O(log k) per point instead of
//!   O(k)), and the update step is a chunk-parallel partial-sum merge.
//! * [`general`] — a straightforward dense d-dimensional Lloyd iteration,
//!   used as a test oracle for the 1-D path and available for callers that
//!   cluster multi-variable records.
//!
//! Initialisation methods live in [`init`]: histogram seeding (the paper's
//! choice), k-means++, and uniform-spread, so the `ablate_kmeans_init`
//! benchmark can quantify the paper's claim that seeding matters.

pub mod general;
pub mod init;
pub mod lloyd1d;

pub use init::Init1D;
pub use lloyd1d::{KMeans1D, KMeans1DResult};

/// Options controlling a Lloyd's-algorithm run.
#[derive(Debug, Clone, Copy)]
pub struct KMeansOptions {
    /// Hard cap on Lloyd iterations.
    pub max_iterations: usize,
    /// Converged when the fraction of points that changed cluster in an
    /// iteration drops below this. The paper's package uses the same
    /// membership-change criterion.
    pub change_threshold: f64,
    /// Seed for randomised initialisers (ignored by deterministic ones).
    pub seed: u64,
}

impl Default for KMeansOptions {
    fn default() -> Self {
        Self { max_iterations: 50, change_threshold: 1e-3, seed: 0x5EED_CAFE }
    }
}
