//! Fault-tolerance demo: checkpoint a simulation, injure the store in
//! several ways, diagnose what is still restartable, and restart the
//! simulation from the best surviving checkpoint.
//!
//! Run with: `cargo run --release --example restart_after_failure`

use flash_sim::{FlashSimulation, Problem};
use numarck::{Config, Strategy};
use numarck_checkpoint::fault::{inject, verify_store, Fault};
use numarck_checkpoint::{
    CheckpointManager, CheckpointStore, ManagerPolicy, RestartEngine, VariableSet,
};

fn to_variable_set(sim: &FlashSimulation) -> VariableSet {
    sim.checkpoint().into_iter().map(|(v, d)| (v.name().to_string(), d)).collect()
}

fn main() {
    let dir = std::env::temp_dir().join(format!("numarck-fault-example-{}", std::process::id()));
    let store = CheckpointStore::open(&dir).expect("temp dir is writable");
    let config = Config::new(8, 0.001, Strategy::Clustering).expect("valid");
    let mut manager =
        CheckpointManager::new(store.clone(), config, ManagerPolicy::fixed(6));

    // Produce 12 checkpoints of a running simulation.
    let mut sim = FlashSimulation::paper_default(Problem::SodX, 4, 4);
    sim.run_steps(30);
    for iteration in 0..12u64 {
        if iteration > 0 {
            sim.run_steps(2);
        }
        manager.checkpoint(iteration, &to_variable_set(&sim)).expect("write");
    }
    println!("wrote 12 checkpoints (fulls at 0 and 6)");

    // Disaster strikes: one delta is bit-flipped, another truncated.
    inject(&store.path_of(3, false), Fault::BitFlip { offset: 100, mask: 0x20 })
        .expect("inject bitflip");
    inject(&store.path_of(9, false), Fault::Truncate { keep: 50 }).expect("inject truncation");
    println!("injected: bit flip in delta 3, truncation of delta 9");

    // Diagnose.
    println!("\nrestartability report:");
    let health = verify_store(&store).expect("verify");
    for h in &health {
        println!(
            "  iteration {:2}: {}",
            h.iteration,
            if h.restartable { "ok" } else { "UNRECOVERABLE" }
        );
    }
    // Damaged delta 3 kills 3..=5 (next full at 6 rescues); damaged 9
    // kills 9..=11.
    let broken: Vec<u64> =
        health.iter().filter(|h| !h.restartable).map(|h| h.iteration).collect();
    assert_eq!(broken, vec![3, 4, 5, 9, 10, 11]);

    // Restart from the newest surviving checkpoint.
    let engine = RestartEngine::new(store);
    let best = health.iter().rev().find(|h| h.restartable).expect("something survives");
    let restart = engine.restart_at(best.iteration).expect("verified restartable");
    println!(
        "\nrestarting from iteration {} (base full {}, {} deltas replayed)",
        best.iteration, restart.base_iteration, restart.deltas_applied
    );
    let mut resumed = FlashSimulation::paper_default(Problem::SodX, 4, 4);
    resumed
        .restore(
            &restart
                .vars
                .iter()
                .map(|(k, v)| {
                    (flash_sim::FlashVar::from_name(k).expect("known variable"), v.clone())
                })
                .collect(),
        )
        .expect("restore");
    resumed.run_steps(10);
    println!("simulation resumed and ran 10 more steps to t = {:.4} ✓", resumed.time());

    let _ = std::fs::remove_dir_all(&dir);
}
