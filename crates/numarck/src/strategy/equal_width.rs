//! Equal-width binning (paper §II-C.1).
//!
//! Partition `[min, max]` of the fit sample into `k` equal bins and use
//! the bin centres as representatives. The paper's analysis: with bin
//! width `W = range/k`, compression is perfect when `W ≤ 2E` (every point
//! is within `E` of its bin centre); when a long tail stretches the range
//! so that `W > 2E`, points near bin edges exceed the tolerance and fall
//! back to exact storage — the strategy's characteristic failure mode.

use numarck_par::reduce::par_min_max;

/// Representatives: the `k` equal-width bin centres over the sample range.
///
/// A degenerate sample (all values identical) yields that single value.
pub fn representatives(sample: &[f64], k: usize) -> Vec<f64> {
    debug_assert!(!sample.is_empty());
    let mm = par_min_max(sample);
    if mm.range() == 0.0 {
        return vec![mm.min];
    }
    let width = mm.range() / k as f64;
    (0..k).map(|i| mm.min + (i as f64 + 0.5) * width).collect()
}

/// The bin width `W` this strategy would use — exposed so callers can
/// check the paper's `W ≤ 2E` perfect-compression criterion.
pub fn bin_width(sample: &[f64], k: usize) -> f64 {
    par_min_max(sample).range() / k as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn centers_tile_the_range() {
        let sample = vec![0.0, 10.0];
        let reps = representatives(&sample, 5);
        assert_eq!(reps, vec![1.0, 3.0, 5.0, 7.0, 9.0]);
    }

    #[test]
    fn degenerate_sample() {
        let reps = representatives(&[0.42, 0.42, 0.42], 255);
        assert_eq!(reps, vec![0.42]);
    }

    #[test]
    fn every_sample_point_within_half_width_of_some_center() {
        let sample: Vec<f64> = (0..1000).map(|i| -3.0 + 0.006 * i as f64).collect();
        let k = 64;
        let reps = representatives(&sample, k);
        let w = bin_width(&sample, k);
        for &x in &sample {
            let best = reps.iter().map(|r| (r - x).abs()).fold(f64::INFINITY, f64::min);
            assert!(best <= w / 2.0 + 1e-12, "x={x} best={best} w={w}");
        }
    }

    #[test]
    fn outlier_stretches_bins() {
        // 999 points in [0, 0.001], one outlier at 1000.0: bin width becomes
        // ~ 1000/k, far above 2E for E = 0.1% — the failure mode in the
        // paper's §II-C.1.
        let mut sample: Vec<f64> = (0..999).map(|i| i as f64 * 1e-6).collect();
        sample.push(1000.0);
        let w = bin_width(&sample, 255);
        assert!(w > 2.0 * 0.001, "width {w} should exceed 2E");
    }
}
