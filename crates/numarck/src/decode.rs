//! Reconstruction (the paper's restart equation, §II-D).
//!
//! Given the previous iteration's values (exact or themselves
//! reconstructed) and a compressed block, each point is rebuilt as
//!
//! ```text
//! ε_ij = D_ij                      if point j is incompressible (ζ = 0)
//!      = D'_{i−1,j}                if index = 0 (change below E)
//!      = D'_{i−1,j} · (1 + Δ'_ij)  otherwise
//! ```
//!
//! Decoding is chunk-parallel and mirrors the encoder's rank-partitioned
//! packer: chunks are aligned to 64 points so each owns whole bitmap
//! words, and a block-granularity rank index (prefix popcount at chunk
//! starts only — O(chunks) memory, not O(words)) tells each chunk where
//! its indices and exact values start.

use rayon::prelude::*;

use numarck_par::chunk::{chunk_ranges, chunk_size_aligned, chunk_size_for};
use numarck_par::scan::chunked_popcount_ranks;

use crate::bitstream::read_at;
use crate::encode::CompressedIteration;
use crate::error::NumarckError;

/// Reconstruct the current iteration from `prev` and a compressed block.
///
/// `prev` may be exact data or a previous reconstruction (the restart
/// chain case); length must equal the block's `num_points`.
pub fn reconstruct(prev: &[f64], block: &CompressedIteration) -> Result<Vec<f64>, NumarckError> {
    crate::obs::decodes_total().inc();
    let _span = crate::obs::decode_ns().span();
    validate(prev, block)?;
    let n = block.num_points;
    if n == 0 {
        return Ok(Vec::new());
    }

    // Chunk decomposition mirrors the encoder's packer: chunks aligned
    // to 64 points own whole bitmap words, and the block-granularity rank
    // index gives each chunk the number of compressible points before it.
    let chunk = chunk_size_aligned(n, 64);
    let (chunk_ranks, _) = chunked_popcount_ranks(&block.bitmap, chunk / 64);

    let mut out = vec![0.0f64; n];
    out.par_chunks_mut(chunk).zip(chunk_ranks.par_iter()).enumerate().for_each(
        |(ci, (points, &rank))| {
            let base = ci * chunk;
            let mut comp_rank = rank as usize;
            // Exact rank: points before this chunk minus compressible
            // before it.
            let mut exact_rank = base - comp_rank;
            for (w, pts) in points.chunks_mut(64).enumerate() {
                let word = block.bitmap[base / 64 + w];
                for (b, slot) in pts.iter_mut().enumerate() {
                    let j = base + w * 64 + b;
                    if (word >> b) & 1 == 1 {
                        let code = read_at(&block.index_words, block.bits, comp_rank);
                        comp_rank += 1;
                        *slot = if code == 0 {
                            prev[j]
                        } else {
                            let rep = block.table.representative(code as usize - 1);
                            prev[j] * (1.0 + rep)
                        };
                    } else {
                        *slot = block.exact_values[exact_rank];
                        exact_rank += 1;
                    }
                }
            }
        },
    );
    Ok(out)
}

/// Sequential reference decoder (kept as the oracle the parallel path is
/// tested against; also used for tiny blocks in hot loops).
pub fn reconstruct_seq(
    prev: &[f64],
    block: &CompressedIteration,
) -> Result<Vec<f64>, NumarckError> {
    validate(prev, block)?;
    let mut out = Vec::with_capacity(block.num_points);
    let mut reader = crate::bitstream::BitReader::new(
        &block.index_words,
        block.num_compressible * block.bits as usize,
    );
    let mut exacts = block.exact_values.iter();
    for j in 0..block.num_points {
        if block.is_compressible(j) {
            let code = reader
                .read(block.bits)
                .ok_or_else(|| NumarckError::Corrupt("index stream exhausted".into()))?;
            if code == 0 {
                out.push(prev[j]);
            } else {
                out.push(prev[j] * (1.0 + block.table.representative(code as usize - 1)));
            }
        } else {
            let v = exacts
                .next()
                .ok_or_else(|| NumarckError::Corrupt("exact values exhausted".into()))?;
            out.push(*v);
        }
    }
    Ok(out)
}

fn validate(prev: &[f64], block: &CompressedIteration) -> Result<(), NumarckError> {
    if prev.len() != block.num_points {
        return Err(NumarckError::LengthMismatch { prev: prev.len(), curr: block.num_points });
    }
    let set_bits: usize = block.bitmap.iter().map(|w| w.count_ones() as usize).sum();
    if set_bits != block.num_compressible {
        return Err(NumarckError::Corrupt(format!(
            "bitmap has {set_bits} set bits but header claims {}",
            block.num_compressible
        )));
    }
    if block.num_compressible + block.exact_values.len() != block.num_points {
        return Err(NumarckError::Corrupt(
            "compressible + exact counts do not cover all points".into(),
        ));
    }
    // Indices must address the table; parallel max-code scan over the
    // bit-packed stream.
    let nc = block.num_compressible;
    let ranges: Vec<(usize, usize)> = chunk_ranges(nc, chunk_size_for(nc)).collect();
    let max_code = ranges
        .par_iter()
        .map(|&(s, e)| {
            (s..e).map(|i| read_at(&block.index_words, block.bits, i)).max().unwrap_or(0)
        })
        .max()
        .unwrap_or(0);
    if max_code as usize > block.table.len() {
        return Err(NumarckError::Corrupt(format!(
            "index {max_code} exceeds table length {}",
            block.table.len()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::encode::encode;
    use crate::strategy::Strategy;

    fn roundtrip(prev: &[f64], curr: &[f64], cfg: &Config) -> Vec<f64> {
        let (block, _) = encode(prev, curr, cfg).unwrap();
        let par = reconstruct(prev, &block).unwrap();
        let seq = reconstruct_seq(prev, &block).unwrap();
        assert_eq!(par, seq, "parallel and sequential decoders must agree");
        par
    }

    #[test]
    fn roundtrip_respects_error_bound() {
        let n = 10_000;
        let prev: Vec<f64> = (0..n).map(|i| 1.0 + ((i * 31) % 1009) as f64 / 100.0).collect();
        let curr: Vec<f64> =
            prev.iter().enumerate().map(|(i, v)| v * (1.0 + 0.004 * ((i % 11) as f64 - 5.0) / 5.0)).collect();
        for s in Strategy::all() {
            let cfg = Config::new(8, 0.001, s).unwrap();
            let restored = roundtrip(&prev, &curr, &cfg);
            for (j, (&r, &c)) in restored.iter().zip(&curr).enumerate() {
                // Value-space bound: E · |prev/curr| (changes here are at
                // most 0.4%, so the factor is ≤ 1/0.996).
                let rel = ((r - c) / c).abs();
                assert!(rel <= 0.001 / 0.996 + 1e-12, "{s} point {j}: rel err {rel}");
            }
        }
    }

    #[test]
    fn exact_points_are_bit_exact() {
        let prev = vec![0.0, 0.0, 1.0];
        let curr = vec![std::f64::consts::PI, -7.25, 1.0];
        let cfg = Config::new(8, 0.001, Strategy::Clustering).unwrap();
        let restored = roundtrip(&prev, &curr, &cfg);
        assert_eq!(restored[0], std::f64::consts::PI);
        assert_eq!(restored[1], -7.25);
        assert_eq!(restored[2], 1.0);
    }

    #[test]
    fn small_change_points_carry_previous_value() {
        let prev = vec![2.0, 3.0];
        let curr = vec![2.0001, 3.0]; // 0.005% and 0% — both below E = 0.1%
        let cfg = Config::new(8, 0.001, Strategy::EqualWidth).unwrap();
        let restored = roundtrip(&prev, &curr, &cfg);
        assert_eq!(restored, prev);
    }

    #[test]
    fn empty_block() {
        let cfg = Config::new(8, 0.001, Strategy::Clustering).unwrap();
        let (block, _) = encode(&[], &[], &cfg).unwrap();
        assert!(reconstruct(&[], &block).unwrap().is_empty());
    }

    #[test]
    fn length_mismatch_rejected() {
        let cfg = Config::new(8, 0.001, Strategy::Clustering).unwrap();
        let (block, _) = encode(&[1.0, 2.0], &[1.0, 2.0], &cfg).unwrap();
        assert!(matches!(
            reconstruct(&[1.0], &block),
            Err(NumarckError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn corrupt_bitmap_detected() {
        let cfg = Config::new(8, 0.001, Strategy::Clustering).unwrap();
        let prev = vec![1.0; 100];
        let curr: Vec<f64> = (0..100).map(|i| 1.0 + 0.01 * (i % 3) as f64).collect();
        let (mut block, _) = encode(&prev, &curr, &cfg).unwrap();
        block.bitmap[0] ^= 1; // flip one compressibility bit
        assert!(matches!(reconstruct(&prev, &block), Err(NumarckError::Corrupt(_))));
    }

    #[test]
    fn chain_reconstruction_accumulates_bounded_error() {
        // Apply 5 compressed deltas in sequence starting from the exact
        // base; relative error compounds roughly additively (paper §II-D).
        let n = 2000;
        let steps = 5usize;
        let tol = 0.001;
        let cfg = Config::new(8, tol, Strategy::Clustering).unwrap();
        let mut truth: Vec<Vec<f64>> = vec![(0..n).map(|i| 1.0 + (i % 97) as f64).collect()];
        for s in 1..=steps {
            let prev = truth.last().unwrap();
            let next: Vec<f64> = prev
                .iter()
                .enumerate()
                .map(|(i, v)| v * (1.0 + 0.003 * (((i + s) % 7) as f64 - 3.0) / 3.0))
                .collect();
            truth.push(next);
        }
        let mut reconstructed = truth[0].clone();
        for s in 1..=steps {
            let (block, _) = encode(&truth[s - 1], &truth[s], &cfg).unwrap();
            reconstructed = reconstruct(&reconstructed, &block).unwrap();
        }
        let budget = (1.0 + tol).powi(steps as i32) - 1.0 + 1e-9;
        for (r, t) in reconstructed.iter().zip(&truth[steps]) {
            let rel = ((r - t) / t).abs();
            assert!(rel <= budget, "rel {rel} > budget {budget}");
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            #[test]
            fn roundtrip_error_bounded(
                prev in proptest::collection::vec(0.5f64..50.0, 1..400),
                rates in proptest::collection::vec(-0.3f64..0.3, 1..400),
                bits in 3u8..10
            ) {
                let n = prev.len().min(rates.len());
                let prev = &prev[..n];
                let curr: Vec<f64> = (0..n).map(|i| prev[i] * (1.0 + rates[i])).collect();
                for s in crate::strategy::Strategy::all() {
                    let cfg = Config::new(bits, 0.005, s).unwrap();
                    let (block, _) = encode(prev, &curr, &cfg).unwrap();
                    let rp = reconstruct(prev, &block).unwrap();
                    let rs = reconstruct_seq(prev, &block).unwrap();
                    prop_assert_eq!(&rp, &rs);
                    for (i, (r, c)) in rp.iter().zip(&curr).enumerate() {
                        // The guarantee is on the change ratio:
                        // |Δ' − Δ| ≤ E. In value space that is
                        // |r − c| ≤ E · |prev|, i.e. a relative error of
                        // E · |prev/curr| w.r.t. the current value.
                        let bound = 0.005 * (prev[i] / c).abs() + 1e-12;
                        prop_assert!(
                            ((r - c) / c).abs() <= bound,
                            "rel {} > bound {bound}",
                            ((r - c) / c).abs()
                        );
                    }
                }
            }
        }
    }
}
