/root/repo/target/debug/deps/fig4-772e45db6abb274d.d: crates/numarck-bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-772e45db6abb274d: crates/numarck-bench/src/bin/fig4.rs

crates/numarck-bench/src/bin/fig4.rs:
