//! In-process cluster end-to-end: three real `numarck-serve` shards
//! fronted by the router, driven by the stock client. Covers routed
//! ingest + byte-identical restart vs the primary shard, visible
//! replication on both placement targets, restart failover after the
//! primary dies, typed `Busy` at the connection cap, stats fan-out
//! aggregation, and graceful drain.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use numarck::{Config, Strategy};
use numarck_checkpoint::VariableSet;
use numarck_cluster::{Router, RouterConfig, RouterHandle};
use numarck_serve::{Client, ClientError, Server, ServerConfig, ServerHandle};

const TIMEOUT: Duration = Duration::from_secs(10);

/// Self-cleaning unique temp directory (same shape as numarck-serve's
/// test util; this crate needs its own copy).
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let unique = format!(
            "numarck-cluster-test-{tag}-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .expect("clock after epoch")
                .as_nanos()
        );
        let path = std::env::temp_dir().join(unique);
        std::fs::create_dir_all(&path).expect("create temp dir");
        Self(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn test_config() -> Config {
    Config::new(8, 0.001, Strategy::Clustering).unwrap()
}

/// Deterministic truth data: `iters` iterations of two smoothly
/// evolving variables.
fn truth(iters: u64, points: usize) -> Vec<VariableSet> {
    let mut out = Vec::new();
    let mut u: Vec<f64> = (0..points).map(|j| 1.5 * (1.0 + (j % 7) as f64)).collect();
    let mut v: Vec<f64> = (0..points).map(|j| 2.5 * (1.0 + (j % 5) as f64)).collect();
    for it in 0..iters {
        if it > 0 {
            for (j, x) in u.iter_mut().enumerate() {
                *x *= 1.0 + 0.004 * (((j as u64 + it) % 9) as f64 - 4.0) / 4.0;
            }
            for (j, x) in v.iter_mut().enumerate() {
                *x *= 1.0 - 0.003 * (((j as u64 + 2 * it) % 5) as f64 - 2.0) / 2.0;
            }
        }
        let mut vars = VariableSet::new();
        vars.insert("u".into(), u.clone());
        vars.insert("v".into(), v.clone());
        out.push(vars);
    }
    out
}

fn assert_bit_exact(got: &VariableSet, want: &VariableSet, context: &str) {
    assert_eq!(got.len(), want.len(), "{context}: variable sets differ");
    for (name, want_vals) in want {
        let got_vals = &got[name];
        assert_eq!(got_vals.len(), want_vals.len(), "{context}/{name}: length");
        for (j, (g, w)) in got_vals.iter().zip(want_vals).enumerate() {
            assert_eq!(g.to_bits(), w.to_bits(), "{context}/{name}[{j}]: not bit-exact");
        }
    }
}

/// Three shards plus a router over them, all in-process.
struct Cluster {
    _tmp: TempDir,
    shards: Vec<Option<ServerHandle>>,
    router: Option<RouterHandle>,
}

impl Cluster {
    fn start(tag: &str, router_tweak: impl FnOnce(&mut RouterConfig)) -> Self {
        let tmp = TempDir::new(tag);
        let mut shards = Vec::new();
        for i in 0..3 {
            let mut config = ServerConfig::new(tmp.0.join(format!("shard-{i}")), test_config());
            config.full_interval = 4;
            shards.push(Some(Server::spawn("127.0.0.1:0", config).expect("spawn shard")));
        }
        let mut config = RouterConfig {
            shards: shards
                .iter()
                .map(|s| s.as_ref().unwrap().addr().to_string())
                .collect(),
            probe_interval: Duration::from_millis(100),
            probe_timeout: Duration::from_secs(2),
            markdown_after: 2,
            ..RouterConfig::default()
        };
        router_tweak(&mut config);
        let router = Router::spawn("127.0.0.1:0", config).expect("spawn router");
        Cluster { _tmp: tmp, shards, router: Some(router) }
    }

    fn router(&self) -> &RouterHandle {
        self.router.as_ref().unwrap()
    }

    fn client(&self) -> Client {
        Client::connect(self.router().addr(), TIMEOUT).expect("connect via router")
    }

    fn shard_client(&self, i: usize) -> Client {
        let addr = self.shards[i].as_ref().unwrap().addr();
        Client::connect(addr, TIMEOUT).expect("connect shard directly")
    }

    fn kill_shard(&mut self, i: usize) {
        self.shards[i].take().unwrap().shutdown();
    }

    fn wait_down(&self, i: usize) {
        let deadline = Instant::now() + TIMEOUT;
        while self.router().membership().is_up(i) {
            assert!(Instant::now() < deadline, "shard {i} never marked down");
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        if let Some(router) = self.router.take() {
            router.shutdown();
        }
        for shard in self.shards.iter_mut().filter_map(Option::take) {
            shard.shutdown();
        }
    }
}

fn counter(snapshot: &numarck_obs::Snapshot, name: &str) -> u64 {
    snapshot
        .counters
        .iter()
        .find(|(n, _)| n == name)
        .map(|&(_, v)| v)
        .unwrap_or_else(|| panic!("counter {name} missing from snapshot"))
}

#[test]
fn routed_ingest_replicates_and_restarts_byte_identical() {
    let cluster = Cluster::start("route", |_| {});
    let data = truth(6, 96);

    // Ingest entirely through the router with the stock client.
    let mut client = cluster.client();
    let session = client.open_session("ha").expect("open via router");
    for (it, vars) in data.iter().enumerate() {
        client.put_iteration(session, it as u64, vars).expect("put via router");
    }

    // The routed restart is the cluster's answer.
    let routed = client.restart(session, 5).expect("restart via router");
    assert_eq!(routed.achieved, 5);

    // Placement is ring arithmetic: both planned targets must hold the
    // session (replication factor 2), the third shard must not.
    let plan = cluster.router().plan("ha");
    assert_eq!(plan.len(), 2, "default replication factor is 2");
    for &target in &plan {
        let mut direct = cluster.shard_client(target);
        let stats = direct.stats().expect("direct shard stats");
        let s = stats
            .sessions
            .iter()
            .find(|s| s.name == "ha")
            .unwrap_or_else(|| panic!("shard {target} is a planned replica but lacks 'ha'"));
        assert_eq!(s.latest_restartable, Some(5), "replica {target} is behind");
    }
    let bystander = (0..3).find(|i| !plan.contains(i)).unwrap();
    let stats = cluster.shard_client(bystander).stats().expect("bystander stats");
    assert!(
        stats.sessions.iter().all(|s| s.name != "ha"),
        "shard {bystander} holds 'ha' but is not in the plan {plan:?}"
    );

    // Byte-identical to replaying directly on the primary shard: open
    // by name on the shard to learn its local id, then restart there.
    let mut primary = cluster.shard_client(plan[0]);
    let local = primary.open_session("ha").expect("reopen on primary");
    let direct = primary.restart(local, 5).expect("restart on primary");
    assert_eq!(direct.achieved, 5);
    assert_bit_exact(&routed.vars, &direct.vars, "router vs primary shard");

    // Fan-out stats through the router merge the session by name under
    // the gateway id the client was handed.
    let merged = client.stats().expect("stats via router");
    let s = merged.sessions.iter().find(|s| s.name == "ha").expect("merged session");
    assert_eq!(s.id, session, "aggregated stats must echo the gateway id");
    assert_eq!(s.latest_restartable, Some(5));

    client.close_session(session).expect("close via router");
}

#[test]
fn restart_fails_over_when_the_primary_shard_dies() {
    let mut cluster = Cluster::start("failover", |_| {});
    let data = truth(6, 64);

    let mut client = cluster.client();
    let session = client.open_session("ha").expect("open via router");
    for (it, vars) in data.iter().enumerate() {
        client.put_iteration(session, it as u64, vars).expect("put via router");
    }
    let healthy = client.restart(session, 5).expect("restart while healthy");

    // Kill the primary and wait for the health machinery to notice.
    let plan = cluster.router().plan("ha");
    cluster.kill_shard(plan[0]);
    cluster.wait_down(plan[0]);

    // The same client, same gateway session id: the router must serve
    // the restart from the surviving replica, byte-identical.
    let recovered = client.restart(session, 5).expect("restart after primary death");
    assert_eq!(recovered.achieved, 5);
    assert_bit_exact(&recovered.vars, &healthy.vars, "failover replica");

    let snapshot = cluster.router().metrics_snapshot();
    assert!(counter(&snapshot, "ncl_shard_markdowns_total") >= 1, "markdown not counted");
}

#[test]
fn connection_cap_answers_typed_busy() {
    let cluster = Cluster::start("busy", |c| c.max_connections = 1);

    // First client owns the only slot.
    let mut holder = cluster.client();
    holder.stats().expect("holder request");

    // The second connection is accepted just long enough to be told
    // Busy — the same typed backpressure the shard acceptor uses, so
    // the stock client classifies it as transient.
    let mut rejected = Client::connect(cluster.router().addr(), TIMEOUT).expect("tcp connect");
    match rejected.stats() {
        Err(e) => assert!(e.is_transient(), "connection-cap rejection must be transient: {e}"),
        Ok(_) => panic!("second connection should have been refused with Busy"),
    }
    drop(rejected);

    // Dropping the holder frees the slot.
    drop(holder);
    let deadline = Instant::now() + TIMEOUT;
    loop {
        let mut retry = Client::connect(cluster.router().addr(), TIMEOUT).expect("tcp connect");
        if retry.stats().is_ok() {
            break;
        }
        assert!(Instant::now() < deadline, "slot never freed after holder hung up");
        std::thread::sleep(Duration::from_millis(20));
    }

    let snapshot = cluster.router().metrics_snapshot();
    assert!(counter(&snapshot, "ncl_busy_total") >= 1, "busy rejection not counted");
}

#[test]
fn drain_finishes_in_flight_work_then_refuses_new_connections() {
    let mut cluster = Cluster::start("drain", |_| {});
    let data = truth(3, 32);

    let mut client = cluster.client();
    let session = client.open_session("drain-me").expect("open");
    for (it, vars) in data.iter().enumerate() {
        client.put_iteration(session, it as u64, vars).expect("put");
    }

    let router = cluster.router.take().unwrap();
    router.trigger_drain();

    // An established connection gets a typed Draining error, not a
    // hang-up mid-frame.
    match client.stats() {
        Err(ClientError::Server { .. } | ClientError::Io(_)) => {}
        Err(other) => panic!("unexpected drain-time error: {other}"),
        Ok(_) => panic!("draining router should refuse new work"),
    }
    drop(client);

    // The loop exits once the last client is gone; join must complete.
    router.join();

    // Shards are untouched by a router drain: the session's data is
    // still restartable on its primary.
    let plan = numarck_cluster::HashRing::new(3, numarck_cluster::DEFAULT_VNODES)
        .shards_for("drain-me", 2);
    let mut direct = cluster.shard_client(plan[0]);
    let local = direct.open_session("drain-me").expect("reopen on shard");
    let reply = direct.restart(local, 2).expect("restart on shard after router drain");
    assert_eq!(reply.achieved, 2);
}
