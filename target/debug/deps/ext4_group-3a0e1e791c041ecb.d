/root/repo/target/debug/deps/ext4_group-3a0e1e791c041ecb.d: crates/numarck-bench/src/bin/ext4_group.rs

/root/repo/target/debug/deps/ext4_group-3a0e1e791c041ecb: crates/numarck-bench/src/bin/ext4_group.rs

crates/numarck-bench/src/bin/ext4_group.rs:
