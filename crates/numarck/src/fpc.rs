//! FPC-style lossless floating-point compression (Burtscher &
//! Ratanaworabhan, IEEE ToC 2009 — reference \[4\] of the paper).
//!
//! The paper notes that NUMARCK's output (index stream + exact escapes)
//! "can further use a lossless compression technique like FPC ... to
//! achieve higher compression ratio" but leaves it out of scope. We
//! implement it as the optional post-pass: each `f64` is predicted by the
//! better of an FCM and a DFCM context predictor, XORed with the
//! prediction, and the leading zero bytes of the residual are elided.
//! Per value: 4 bits of metadata (1 bit predictor choice + 3 bits
//! zero-byte count) plus the non-zero residual bytes.
//!
//! Compression is strongest exactly where NUMARCK produces structure —
//! runs of identical table representatives and smooth exact-value
//! sections — and is always lossless, so it composes safely with the
//! error-bounded stage.

use crate::error::NumarckError;

/// log2 of the predictor hash-table size. 2^16 entries × 8 bytes = 512 KiB
/// per predictor — the sweet spot reported in the FPC paper.
const TABLE_BITS: u32 = 16;
const TABLE_SIZE: usize = 1 << TABLE_BITS;

/// Zero-byte counts representable by the 3-bit code. A true count of 4 is
/// encoded as 3 (one redundant byte) — the same quirk as reference FPC,
/// which reserves the codes for the more common counts.
const CODE_TO_ZEROS: [u32; 8] = [0, 1, 2, 3, 5, 6, 7, 8];

fn zeros_to_code(z: u32) -> u8 {
    match z {
        0..=3 => z as u8,
        4 => 3, // not representable; spend one extra byte
        5..=8 => (z - 1) as u8,
        _ => unreachable!("leading_zeros/8 is at most 8"),
    }
}

/// FCM predictor: hash of recent value history → last value seen in that
/// context.
struct Fcm {
    table: Vec<u64>,
    hash: usize,
}

impl Fcm {
    fn new() -> Self {
        Self { table: vec![0; TABLE_SIZE], hash: 0 }
    }

    #[inline]
    fn predict(&self) -> u64 {
        self.table[self.hash]
    }

    #[inline]
    fn update(&mut self, actual: u64) {
        self.table[self.hash] = actual;
        self.hash = ((self.hash << 6) ^ (actual >> 48) as usize) & (TABLE_SIZE - 1);
    }
}

/// DFCM predictor: like FCM but over value *deltas*.
struct Dfcm {
    table: Vec<u64>,
    hash: usize,
    last: u64,
}

impl Dfcm {
    fn new() -> Self {
        Self { table: vec![0; TABLE_SIZE], hash: 0, last: 0 }
    }

    #[inline]
    fn predict(&self) -> u64 {
        self.table[self.hash].wrapping_add(self.last)
    }

    #[inline]
    fn update(&mut self, actual: u64) {
        let delta = actual.wrapping_sub(self.last);
        self.table[self.hash] = delta;
        self.hash = ((self.hash << 2) ^ (delta >> 40) as usize) & (TABLE_SIZE - 1);
        self.last = actual;
    }
}

/// Losslessly compress a stream of doubles.
pub fn compress(data: &[f64]) -> Vec<u8> {
    let mut fcm = Fcm::new();
    let mut dfcm = Dfcm::new();
    // Header: element count.
    let mut out = Vec::with_capacity(8 + data.len() * 5);
    out.extend_from_slice(&(data.len() as u64).to_le_bytes());
    // Metadata nibbles for a pair of values share one byte; residual bytes
    // follow each metadata byte immediately (interleaved, as in FPC).
    let mut i = 0;
    while i < data.len() {
        let mut meta = 0u8;
        let mut residuals: Vec<u8> = Vec::with_capacity(16);
        for half in 0..2 {
            if i + half >= data.len() {
                break;
            }
            let bits = data[i + half].to_bits();
            let pf = fcm.predict();
            let pd = dfcm.predict();
            fcm.update(bits);
            dfcm.update(bits);
            let rf = bits ^ pf;
            let rd = bits ^ pd;
            let (sel, resid) = if rf.leading_zeros() >= rd.leading_zeros() {
                (0u8, rf)
            } else {
                (1u8, rd)
            };
            let zero_bytes = (resid.leading_zeros() / 8).min(8);
            let code = zeros_to_code(zero_bytes);
            let nibble = (sel << 3) | code;
            meta |= nibble << (4 * half);
            let keep = 8 - CODE_TO_ZEROS[code as usize] as usize;
            residuals.extend_from_slice(&resid.to_be_bytes()[8 - keep..]);
        }
        out.push(meta);
        out.extend_from_slice(&residuals);
        i += 2;
    }
    out
}

/// Decompress a stream produced by [`compress`].
pub fn decompress(data: &[u8]) -> Result<Vec<f64>, NumarckError> {
    if data.len() < 8 {
        return Err(NumarckError::Corrupt("fpc: missing header".into()));
    }
    let count = u64::from_le_bytes(data[..8].try_into().expect("8 bytes")) as usize;
    // Each pair of values consumes at least one metadata byte, so a
    // valid stream can hold at most 2×(payload bytes) values. A corrupt
    // header must not drive the allocation below.
    if count > (data.len() - 8).saturating_mul(2) {
        return Err(NumarckError::Corrupt(format!(
            "fpc: header claims {count} values but only {} payload bytes follow",
            data.len() - 8
        )));
    }
    let mut fcm = Fcm::new();
    let mut dfcm = Dfcm::new();
    let mut out = Vec::with_capacity(count);
    let mut pos = 8usize;
    while out.len() < count {
        if pos >= data.len() {
            return Err(NumarckError::Corrupt("fpc: truncated stream".into()));
        }
        let meta = data[pos];
        pos += 1;
        for half in 0..2 {
            if out.len() >= count {
                break;
            }
            let nibble = (meta >> (4 * half)) & 0xF;
            let sel = nibble >> 3;
            let code = (nibble & 0x7) as usize;
            let keep = 8 - CODE_TO_ZEROS[code] as usize;
            if pos + keep > data.len() {
                return Err(NumarckError::Corrupt("fpc: truncated residual".into()));
            }
            let mut buf = [0u8; 8];
            buf[8 - keep..].copy_from_slice(&data[pos..pos + keep]);
            pos += keep;
            let resid = u64::from_be_bytes(buf);
            let pred = if sel == 0 { fcm.predict() } else { dfcm.predict() };
            let bits = resid ^ pred;
            fcm.update(bits);
            dfcm.update(bits);
            out.push(f64::from_bits(bits));
        }
    }
    Ok(out)
}

/// Compression ratio achieved on `data` (fraction saved; negative when
/// the stream expands).
pub fn compression_ratio(data: &[f64]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    1.0 - compress(data).len() as f64 / (data.len() * 8) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_empty() {
        let c = compress(&[]);
        assert_eq!(decompress(&c).unwrap(), Vec::<f64>::new());
    }

    #[test]
    fn roundtrip_preserves_bits_exactly() {
        let data = vec![
            0.0,
            -0.0,
            1.0,
            std::f64::consts::PI,
            f64::MAX,
            f64::MIN_POSITIVE,
            -123.456e-30,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
        ];
        let back = decompress(&compress(&data)).unwrap();
        assert_eq!(back.len(), data.len());
        for (a, b) in data.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn roundtrip_odd_length() {
        let data: Vec<f64> = (0..1001).map(|i| (i as f64).sqrt()).collect();
        assert_eq!(decompress(&compress(&data)).unwrap(), data);
    }

    #[test]
    fn constant_stream_compresses_hard() {
        let data = vec![42.0; 10_000];
        let r = compression_ratio(&data);
        assert!(r > 0.9, "constant data should compress >90%, got {r}");
    }

    #[test]
    fn smooth_stream_compresses() {
        let data: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
        let r = compression_ratio(&data);
        assert!(r > 0.3, "linear ramp should compress, got {r}");
    }

    #[test]
    fn random_stream_does_not_explode() {
        let mut rng = numarck_par::rng::Xoshiro256PlusPlus::seed_from_u64(1);
        let data: Vec<f64> = (0..10_000).map(|_| f64::from_bits(rng.next_u64() | 0x3FF0 << 48)).collect();
        let r = compression_ratio(&data);
        // Incompressible data costs at most the 4-bit metadata overhead.
        assert!(r > -0.08, "overhead should be ~ -6.25%, got {r}");
        // Some generated patterns are NaN, so compare bit patterns.
        let back = decompress(&compress(&data)).unwrap();
        assert_eq!(back.len(), data.len());
        for (a, b) in data.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn truncated_stream_is_rejected() {
        let data: Vec<f64> = (0..100).map(|i| i as f64 * 1.5).collect();
        let c = compress(&data);
        for cut in [0usize, 4, 8, 20, c.len() - 1] {
            assert!(decompress(&c[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn zeros_to_code_covers_all_counts() {
        for z in 0..=8u32 {
            let code = zeros_to_code(z);
            let decoded = CODE_TO_ZEROS[code as usize];
            // The decoded count never exceeds the true count (that would
            // drop bytes).
            assert!(decoded <= z, "z={z} code={code} decoded={decoded}");
            assert!(z - decoded <= 1, "at most one redundant byte");
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn roundtrip_random_values(
                data in proptest::collection::vec(any::<f64>(), 0..500)
            ) {
                let back = decompress(&compress(&data)).unwrap();
                prop_assert_eq!(back.len(), data.len());
                for (a, b) in data.iter().zip(&back) {
                    prop_assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
    }
}
