//! The `numarck-serve` wire protocol.
//!
//! Length-prefixed binary frames over a byte stream, following the same
//! conventions as `numarck-checkpoint/format.rs` (little-endian fields,
//! u16-length-prefixed UTF-8 names, trailing CRC-32 over everything that
//! precedes it):
//!
//! ```text
//! [0..4)   magic b"NSRV"
//! [4..6)   protocol version (u16)
//! [6]      opcode (u8)
//! [7]      reserved (0)
//! [8..16)  request id (u64) — echoed verbatim in the response
//! [16..20) payload length (u32)
//! [20..)   payload (opcode-specific)
//! [..+4)   crc32 of every byte above (u32)
//! ```
//!
//! Requests use opcodes `0x01..=0x07`; responses set the high bit
//! (`0x81..`), plus two out-of-band replies: [`Response::Busy`] (`0xBB`,
//! sent by the acceptor when the work queue is full — the typed
//! backpressure signal) and [`Response::Error`] (`0xEE`). A frame that
//! fails CRC or structural validation is answered with
//! `Error { code: Malformed }` and the connection is closed, since the
//! stream can no longer be trusted to be frame-aligned.

use std::io::{self, Read, Write};

use numarck::serialize as nser;
use numarck_checkpoint::VariableSet;
use numarck_obs::HistogramSummary;

/// Magic bytes opening every frame.
pub const MAGIC: [u8; 4] = *b"NSRV";
/// Current protocol version. Bumped on any incompatible change; a server
/// answers a version it does not speak with `Error { Malformed }`.
pub const VERSION: u16 = 1;
/// Frame header length (magic + version + opcode + reserved + request id
/// + payload length).
pub const HEADER_LEN: usize = 20;
/// Hard ceiling on a single frame's payload, so a corrupt or hostile
/// length field cannot make either side allocate unboundedly.
pub const MAX_PAYLOAD: u32 = 256 * 1024 * 1024;

/// Wire opcodes. Public so that forwarding hops (the `numarck-cluster`
/// router) can classify frames without decoding payloads.
pub mod opcode {
    #![allow(missing_docs)]

    pub const OPEN_SESSION: u8 = 0x01;
    pub const PUT_ITERATIONS: u8 = 0x02;
    pub const RESTART: u8 = 0x03;
    pub const SCRUB: u8 = 0x04;
    pub const STATS: u8 = 0x05;
    pub const CLOSE_SESSION: u8 = 0x06;
    pub const SHUTDOWN: u8 = 0x07;

    pub const SESSION_OPENED: u8 = 0x81;
    pub const PUT_DONE: u8 = 0x82;
    pub const RESTART_DATA: u8 = 0x83;
    pub const SCRUB_DONE: u8 = 0x84;
    pub const STATS_DATA: u8 = 0x85;
    pub const SESSION_CLOSED: u8 = 0x86;
    pub const SHUTTING_DOWN: u8 = 0x87;
    pub const BUSY: u8 = 0xBB;
    pub const ERROR: u8 = 0xEE;
}

/// Why a request failed, as carried by [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame or payload did not parse (bad magic/version/CRC/shape).
    Malformed,
    /// The request named a session id the server does not have open.
    UnknownSession,
    /// Compression or reconstruction failed (NUMARCK-level error).
    Compress,
    /// Storage I/O failed after the retry policy was exhausted.
    Io,
    /// The server is draining and no longer accepts new work.
    Draining,
    /// The request was structurally valid but semantically rejected
    /// (bad session name, zero-count batch, ...).
    BadRequest,
    /// Nothing satisfies the request (no restartable iteration, ...).
    NotFound,
}

impl ErrorCode {
    fn to_u16(self) -> u16 {
        match self {
            ErrorCode::Malformed => 1,
            ErrorCode::UnknownSession => 2,
            ErrorCode::Compress => 3,
            ErrorCode::Io => 4,
            ErrorCode::Draining => 5,
            ErrorCode::BadRequest => 6,
            ErrorCode::NotFound => 7,
        }
    }

    fn from_u16(v: u16) -> io::Result<Self> {
        Ok(match v {
            1 => ErrorCode::Malformed,
            2 => ErrorCode::UnknownSession,
            3 => ErrorCode::Compress,
            4 => ErrorCode::Io,
            5 => ErrorCode::Draining,
            6 => ErrorCode::BadRequest,
            7 => ErrorCode::NotFound,
            other => return Err(corrupt(format!("unknown error code {other}"))),
        })
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ErrorCode::Malformed => "malformed",
            ErrorCode::UnknownSession => "unknown-session",
            ErrorCode::Compress => "compress",
            ErrorCode::Io => "io",
            ErrorCode::Draining => "draining",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::NotFound => "not-found",
        };
        f.write_str(name)
    }
}

/// What kind of checkpoint a `PutIterations` entry produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WrittenKind {
    /// A full checkpoint (scheduled, first-in-session, or forced).
    Full,
    /// A NUMARCK delta against the session's previous iteration.
    Delta,
    /// A full checkpoint forced by change-distribution drift.
    FullOnDrift,
}

impl WrittenKind {
    fn to_u8(self) -> u8 {
        match self {
            WrittenKind::Full => 0,
            WrittenKind::Delta => 1,
            WrittenKind::FullOnDrift => 2,
        }
    }

    fn from_u8(v: u8) -> io::Result<Self> {
        Ok(match v {
            0 => WrittenKind::Full,
            1 => WrittenKind::Delta,
            2 => WrittenKind::FullOnDrift,
            other => return Err(corrupt(format!("unknown written kind {other}"))),
        })
    }
}

/// Per-iteration outcome of an ingest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PutOutcome {
    /// The iteration that was checkpointed.
    pub iteration: u64,
    /// What was written for it.
    pub kind: WrittenKind,
    /// Storage-write retries the retry policy had to spend.
    pub retries: u32,
}

/// Per-session summary inside a [`StatsReply`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionStat {
    /// Server-assigned session id.
    pub id: u64,
    /// The name the session was opened under.
    pub name: String,
    /// Checkpoint files currently stored for the session.
    pub files: u32,
    /// Newest iteration that restarts cleanly, if any.
    pub latest_restartable: Option<u64>,
}

/// One named latency summary inside the [`StatsReply`] extension.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LatencyStat {
    /// Metric name (e.g. `nsrv_request_put_ns`).
    pub name: String,
    /// Count/sum plus p50/p90/p99 midpoints, in nanoseconds.
    pub summary: HistogramSummary,
}

/// Payload of [`Response::StatsData`].
///
/// The fields after `sessions` form the *observability extension*
/// introduced together with the `numarck-obs` registry. The extension
/// is appended after the original payload, so a new decoder reading an
/// old-format peer's reply (no trailing bytes after the sessions) fills
/// the extension with defaults instead of failing.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StatsReply {
    /// Connections accepted into service (excludes Busy rejections).
    pub accepted: u64,
    /// Requests answered (any response kind except Busy).
    pub served: u64,
    /// Connections rejected with [`Response::Busy`] by the acceptor.
    pub busy_rejected: u64,
    /// Iterations ingested across all sessions.
    pub iterations_ingested: u64,
    /// Raw payload bytes ingested (sum of `8 × points` over variables).
    pub bytes_ingested: u64,
    /// Storage-write retries spent across all sessions.
    pub write_retries: u64,
    /// Whether the server is draining.
    pub draining: bool,
    /// Per-session summaries, ordered by id.
    pub sessions: Vec<SessionStat>,
    /// Extension: connections sitting in the bounded hand-off queue at
    /// reply time (0 from an old-format peer).
    pub queue_depth: i64,
    /// Extension: per-request-type latency summaries (empty from an
    /// old-format peer).
    pub latencies: Vec<LatencyStat>,
    /// Durability extension: uncommitted journal intents replayed by
    /// recovery passes since the server started (0 from older peers, as
    /// for every field below).
    pub journal_replayed: u64,
    /// Durability extension: replayed intents whose write never finished
    /// and was rolled back.
    pub journal_rolled_back: u64,
    /// Durability extension: recovery passes that had to quarantine a
    /// half-applied write and re-anchor the chain.
    pub recovery_repairs: u64,
    /// Durability extension: idle connections disconnected to reclaim
    /// their worker (see `ServerConfig::idle_timeout`).
    pub idle_disconnects: u64,
    /// Durability extension: replica copies rewritten by read-repair
    /// during scrub (process-wide, replicated backends only).
    pub replica_repairs: u64,
    /// Durability extension: files where no replica quorum agreed on
    /// valid content (process-wide, replicated backends only).
    pub replica_quorum_failures: u64,
    /// Compaction extension: background maintenance passes run
    /// (process-wide, 0 from older peers, as for every field below).
    pub compact_runs: u64,
    /// Compaction extension: plain deltas superseded by merged deltas.
    pub compact_deltas_merged: u64,
    /// Compaction extension: store bytes reclaimed by compaction + GC.
    pub compact_bytes_reclaimed: u64,
    /// Compaction extension: files deleted by retention GC.
    pub gc_files_removed: u64,
}

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Open (or re-attach to) the named session.
    OpenSession {
        /// Session name; `[A-Za-z0-9._-]{1,64}`, doubles as the store
        /// subdirectory name.
        name: String,
    },
    /// Ingest a batch of iterations, in order, into a session.
    PutIterations {
        /// Session id from [`Response::SessionOpened`].
        session: u64,
        /// `(iteration, variables)` pairs; must be non-empty.
        iterations: Vec<(u64, VariableSet)>,
    },
    /// Rebuild the newest restartable state at or before an iteration.
    Restart {
        /// Session id.
        session: u64,
        /// Upper bound on the iteration to recover.
        at_or_before: u64,
    },
    /// Integrity-scrub a session's store (optionally repairing it).
    Scrub {
        /// Session id.
        session: u64,
        /// Also quarantine orphans and re-anchor (the repair pass).
        repair: bool,
    },
    /// Server and per-session counters.
    Stats,
    /// Close a session (its store stays on disk; the name can be
    /// reopened later).
    CloseSession {
        /// Session id.
        session: u64,
    },
    /// Ask the server to drain: finish in-flight work, refuse new work,
    /// close the listener, exit.
    Shutdown,
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The session is open under this id.
    SessionOpened {
        /// Server-assigned id, stable for the life of the session.
        session: u64,
    },
    /// The batch was ingested; one outcome per iteration, in order.
    PutDone {
        /// Per-iteration outcomes.
        outcomes: Vec<PutOutcome>,
    },
    /// A restart result.
    RestartData {
        /// The iteration actually recovered.
        achieved: u64,
        /// The full checkpoint the replay started from.
        base: u64,
        /// Deltas applied on top of the base.
        deltas_applied: u64,
        /// Iterations between the request and `achieved` that could not
        /// be recovered.
        lost: u32,
        /// The reconstructed variables.
        vars: VariableSet,
    },
    /// A scrub (or scrub+repair) finished.
    ScrubDone {
        /// Files examined.
        checked: u32,
        /// Files quarantined.
        quarantined: u32,
        /// Where the store was re-anchored (repair only).
        anchored_at: Option<u64>,
        /// Intact-but-orphaned iterations given up (repair only).
        lost: u32,
    },
    /// Counters.
    StatsData(Box<StatsReply>),
    /// The session is closed.
    SessionClosed,
    /// Drain has begun; this connection will be closed.
    ShuttingDown,
    /// The bounded work queue is full — retry later. Sent by the
    /// acceptor before the connection is dropped.
    Busy,
    /// The request failed.
    Error {
        /// Failure class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

/// One decoded frame: opcode + request id + raw payload.
#[derive(Debug, Clone)]
pub struct Frame {
    /// The opcode byte.
    pub opcode: u8,
    /// Request id (echoed between request and response).
    pub req_id: u64,
    /// Opcode-specific payload bytes.
    pub payload: Vec<u8>,
}

/// Outcome of a server-side frame read with an idle timeout.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete frame arrived.
    Frame(Frame),
    /// No bytes arrived within the socket timeout — the connection is
    /// idle (not an error; poll again, or close if draining).
    Idle,
    /// The peer closed the connection cleanly.
    Closed,
}

fn corrupt(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Serialise a complete frame (header + payload + trailing CRC) into a
/// byte vector. The writer-free twin of [`write_frame`], for callers
/// that assemble non-blocking write queues instead of writing straight
/// to a stream.
pub fn encode_frame(opcode: u8, req_id: u64, payload: &[u8]) -> Vec<u8> {
    assert!(payload.len() <= MAX_PAYLOAD as usize, "payload exceeds MAX_PAYLOAD");
    let mut buf = Vec::with_capacity(HEADER_LEN + payload.len() + 4);
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.push(opcode);
    buf.push(0);
    buf.extend_from_slice(&req_id.to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    let crc = nser::crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf
}

/// Serialise a frame and write it out, flushing.
pub fn write_frame(
    w: &mut impl Write,
    opcode: u8,
    req_id: u64,
    payload: &[u8],
) -> io::Result<()> {
    w.write_all(&encode_frame(opcode, req_id, payload))?;
    w.flush()
}

/// Try to extract one complete frame from the front of `buf`.
///
/// Returns `Ok(None)` when the buffer holds only a prefix of a frame
/// (read more bytes and retry), `Ok(Some((frame, consumed)))` when a
/// whole CRC-valid frame is present, and an error on structural
/// corruption (bad magic/version/length/CRC) — at which point the
/// stream can no longer be trusted to be frame-aligned and should be
/// closed. This is the incremental-parse entry point for
/// readiness-driven (non-blocking) readers.
pub fn frame_from_bytes(buf: &[u8]) -> io::Result<Option<(Frame, usize)>> {
    if buf.len() < HEADER_LEN {
        return Ok(None);
    }
    if buf[0..4] != MAGIC {
        return Err(corrupt("bad frame magic".into()));
    }
    let version = u16::from_le_bytes([buf[4], buf[5]]);
    if version != VERSION {
        return Err(corrupt(format!("unsupported protocol version {version}")));
    }
    let payload_len = u32::from_le_bytes(buf[16..20].try_into().expect("4 bytes"));
    if payload_len > MAX_PAYLOAD {
        return Err(corrupt(format!("payload length {payload_len} exceeds limit")));
    }
    let total = HEADER_LEN + payload_len as usize + 4;
    if buf.len() < total {
        return Ok(None);
    }
    let body = total - 4;
    let stored = u32::from_le_bytes(buf[body..total].try_into().expect("4 bytes"));
    let computed = nser::crc32(&buf[..body]);
    if stored != computed {
        return Err(corrupt(format!(
            "frame crc mismatch: stored {stored:#x}, computed {computed:#x}"
        )));
    }
    let frame = Frame {
        opcode: buf[6],
        req_id: u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes")),
        payload: buf[HEADER_LEN..body].to_vec(),
    };
    Ok(Some((frame, total)))
}

/// Whether a request opcode's payload begins with a session id
/// (little-endian u64 at payload offset 0). A routing hop rewrites that
/// id in flight when the downstream shard knows the session under a
/// different id than the gateway handed the client.
pub fn request_has_leading_session(op: u8) -> bool {
    matches!(
        op,
        opcode::PUT_ITERATIONS | opcode::RESTART | opcode::SCRUB | opcode::CLOSE_SESSION
    )
}

/// Recompute and rewrite the trailing CRC of a complete frame after an
/// in-place payload edit.
pub fn reseal_frame(frame: &mut [u8]) {
    assert!(frame.len() >= HEADER_LEN + 4, "not a complete frame");
    let body = frame.len() - 4;
    let crc = nser::crc32(&frame[..body]);
    frame[body..].copy_from_slice(&crc.to_le_bytes());
}

/// Rewrite the leading session id of a complete request frame
/// (header + payload + CRC) in place and reseal the trailing CRC.
/// Fails if the frame is too short to hold a session id or its opcode
/// is not one for which [`request_has_leading_session`] holds.
pub fn patch_session_id(frame: &mut [u8], session: u64) -> io::Result<()> {
    if frame.len() < HEADER_LEN + 8 + 4 {
        return Err(corrupt("frame too short to carry a session id".into()));
    }
    if !request_has_leading_session(frame[6]) {
        return Err(corrupt(format!(
            "opcode {:#x} has no leading session id",
            frame[6]
        )));
    }
    frame[HEADER_LEN..HEADER_LEN + 8].copy_from_slice(&session.to_le_bytes());
    reseal_frame(frame);
    Ok(())
}

/// Read one frame, blocking until it fully arrives.
pub fn read_frame(r: &mut impl Read) -> io::Result<Frame> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    finish_frame(r, header)
}

/// Read one frame with idle detection: a timeout before the *first* byte
/// is [`ReadOutcome::Idle`]; a timeout after it is a deadline violation
/// (the peer started a frame and stalled) and surfaces as an error.
pub fn read_frame_or_idle(r: &mut impl Read) -> io::Result<ReadOutcome> {
    let mut header = [0u8; HEADER_LEN];
    let mut got = 0usize;
    while got < HEADER_LEN {
        match r.read(&mut header[got..]) {
            Ok(0) => {
                return if got == 0 {
                    Ok(ReadOutcome::Closed)
                } else {
                    Err(corrupt("connection closed mid-frame".into()))
                }
            }
            Ok(n) => got += n,
            Err(e)
                if got == 0
                    && matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
            {
                return Ok(ReadOutcome::Idle)
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    finish_frame(r, header).map(ReadOutcome::Frame)
}

/// Read the rest of a frame whose first header byte has already been
/// consumed (the server's idle poll reads one byte at a fast poll
/// interval, then widens the socket timeout to the per-request deadline
/// and hands the byte here).
pub fn read_frame_rest(first: u8, r: &mut impl Read) -> io::Result<Frame> {
    let mut header = [0u8; HEADER_LEN];
    header[0] = first;
    r.read_exact(&mut header[1..])?;
    finish_frame(r, header)
}

/// Validate a header, read the payload + CRC, and check the CRC.
fn finish_frame(r: &mut impl Read, header: [u8; HEADER_LEN]) -> io::Result<Frame> {
    if header[0..4] != MAGIC {
        return Err(corrupt("bad frame magic".into()));
    }
    let version = u16::from_le_bytes([header[4], header[5]]);
    if version != VERSION {
        return Err(corrupt(format!("unsupported protocol version {version}")));
    }
    let opcode = header[6];
    let req_id = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
    let payload_len = u32::from_le_bytes(header[16..20].try_into().expect("4 bytes"));
    if payload_len > MAX_PAYLOAD {
        return Err(corrupt(format!("payload length {payload_len} exceeds limit")));
    }
    let mut rest = vec![0u8; payload_len as usize + 4];
    r.read_exact(&mut rest)?;
    let (payload, crc_bytes) = rest.split_at(payload_len as usize);
    let stored = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
    let mut crc_input = Vec::with_capacity(HEADER_LEN + payload.len());
    crc_input.extend_from_slice(&header);
    crc_input.extend_from_slice(payload);
    let computed = nser::crc32(&crc_input);
    if stored != computed {
        return Err(corrupt(format!(
            "frame crc mismatch: stored {stored:#x}, computed {computed:#x}"
        )));
    }
    Ok(Frame { opcode, req_id, payload: payload.to_vec() })
}

// ---------------------------------------------------------------------
// Payload cursor
// ---------------------------------------------------------------------

/// Checked little-endian reader over a payload slice.
struct Cursor<'a>(&'a [u8]);

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.0.len() < n {
            return Err(corrupt(format!("payload truncated: want {n}, have {}", self.0.len())));
        }
        let (head, tail) = self.0.split_at(n);
        self.0 = tail;
        Ok(head)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> io::Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn i64(&mut self) -> io::Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Pre-allocation guard for length-prefixed sequences: clamp a
    /// declared element count to what the remaining payload could
    /// possibly hold (`min_size` bytes per element), so a corrupt or
    /// hostile count cannot force a huge `Vec::with_capacity` before
    /// the first element read fails.
    fn seq_capacity(&self, declared: usize, min_size: usize) -> usize {
        declared.min(self.0.len() / min_size.max(1))
    }

    fn string(&mut self) -> io::Result<String> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| corrupt("string not UTF-8".into()))
    }

    fn vars(&mut self) -> io::Result<VariableSet> {
        let count = self.u32()? as usize;
        let mut vars = VariableSet::new();
        for _ in 0..count {
            let name = self.string()?;
            let byte_len = self.u64()? as usize;
            if !byte_len.is_multiple_of(8) {
                return Err(corrupt(format!(
                    "variable '{name}' payload not a multiple of 8 bytes"
                )));
            }
            let bytes = self.take(byte_len)?;
            let values: Vec<f64> = bytes
                .chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
                .collect();
            vars.insert(name, values);
        }
        Ok(vars)
    }

    fn done(&self) -> io::Result<()> {
        if self.0.is_empty() {
            Ok(())
        } else {
            Err(corrupt(format!("{} trailing payload bytes", self.0.len())))
        }
    }
}

fn put_string(buf: &mut Vec<u8>, s: &str) {
    assert!(s.len() <= u16::MAX as usize, "string too long for wire");
    buf.extend_from_slice(&(s.len() as u16).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

fn put_vars(buf: &mut Vec<u8>, vars: &VariableSet) {
    buf.extend_from_slice(&(vars.len() as u32).to_le_bytes());
    for (name, data) in vars {
        put_string(buf, name);
        buf.extend_from_slice(&((data.len() * 8) as u64).to_le_bytes());
        for &v in data {
            buf.extend_from_slice(&v.to_le_bytes());
        }
    }
}

// ---------------------------------------------------------------------
// Request encode/decode
// ---------------------------------------------------------------------

impl Request {
    /// The opcode this request travels under.
    pub fn opcode(&self) -> u8 {
        match self {
            Request::OpenSession { .. } => opcode::OPEN_SESSION,
            Request::PutIterations { .. } => opcode::PUT_ITERATIONS,
            Request::Restart { .. } => opcode::RESTART,
            Request::Scrub { .. } => opcode::SCRUB,
            Request::Stats => opcode::STATS,
            Request::CloseSession { .. } => opcode::CLOSE_SESSION,
            Request::Shutdown => opcode::SHUTDOWN,
        }
    }

    /// Serialise the payload (header and CRC are the framing layer's).
    pub fn payload(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Request::OpenSession { name } => put_string(&mut buf, name),
            Request::PutIterations { session, iterations } => {
                buf.extend_from_slice(&session.to_le_bytes());
                buf.extend_from_slice(&(iterations.len() as u32).to_le_bytes());
                for (iteration, vars) in iterations {
                    buf.extend_from_slice(&iteration.to_le_bytes());
                    put_vars(&mut buf, vars);
                }
            }
            Request::Restart { session, at_or_before } => {
                buf.extend_from_slice(&session.to_le_bytes());
                buf.extend_from_slice(&at_or_before.to_le_bytes());
            }
            Request::Scrub { session, repair } => {
                buf.extend_from_slice(&session.to_le_bytes());
                buf.push(u8::from(*repair));
            }
            Request::Stats | Request::Shutdown => {}
            Request::CloseSession { session } => {
                buf.extend_from_slice(&session.to_le_bytes());
            }
        }
        buf
    }

    /// Decode a request from a frame.
    pub fn from_frame(frame: &Frame) -> io::Result<Self> {
        let mut cur = Cursor(&frame.payload);
        let req = match frame.opcode {
            opcode::OPEN_SESSION => Request::OpenSession { name: cur.string()? },
            opcode::PUT_ITERATIONS => {
                let session = cur.u64()?;
                let count = cur.u32()? as usize;
                // 8-byte iteration + 4-byte variable count minimum.
                let mut iterations = Vec::with_capacity(cur.seq_capacity(count, 12));
                for _ in 0..count {
                    let iteration = cur.u64()?;
                    iterations.push((iteration, cur.vars()?));
                }
                Request::PutIterations { session, iterations }
            }
            opcode::RESTART => {
                Request::Restart { session: cur.u64()?, at_or_before: cur.u64()? }
            }
            opcode::SCRUB => Request::Scrub { session: cur.u64()?, repair: cur.u8()? != 0 },
            opcode::STATS => Request::Stats,
            opcode::CLOSE_SESSION => Request::CloseSession { session: cur.u64()? },
            opcode::SHUTDOWN => Request::Shutdown,
            other => return Err(corrupt(format!("unknown request opcode {other:#x}"))),
        };
        cur.done()?;
        Ok(req)
    }
}

// ---------------------------------------------------------------------
// Response encode/decode
// ---------------------------------------------------------------------

impl Response {
    /// The opcode this response travels under.
    pub fn opcode(&self) -> u8 {
        match self {
            Response::SessionOpened { .. } => opcode::SESSION_OPENED,
            Response::PutDone { .. } => opcode::PUT_DONE,
            Response::RestartData { .. } => opcode::RESTART_DATA,
            Response::ScrubDone { .. } => opcode::SCRUB_DONE,
            Response::StatsData(_) => opcode::STATS_DATA,
            Response::SessionClosed => opcode::SESSION_CLOSED,
            Response::ShuttingDown => opcode::SHUTTING_DOWN,
            Response::Busy => opcode::BUSY,
            Response::Error { .. } => opcode::ERROR,
        }
    }

    /// Serialise the payload (header and CRC are the framing layer's).
    pub fn payload(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Response::SessionOpened { session } => {
                buf.extend_from_slice(&session.to_le_bytes());
            }
            Response::PutDone { outcomes } => {
                buf.extend_from_slice(&(outcomes.len() as u32).to_le_bytes());
                for o in outcomes {
                    buf.extend_from_slice(&o.iteration.to_le_bytes());
                    buf.push(o.kind.to_u8());
                    buf.extend_from_slice(&o.retries.to_le_bytes());
                }
            }
            Response::RestartData { achieved, base, deltas_applied, lost, vars } => {
                buf.extend_from_slice(&achieved.to_le_bytes());
                buf.extend_from_slice(&base.to_le_bytes());
                buf.extend_from_slice(&deltas_applied.to_le_bytes());
                buf.extend_from_slice(&lost.to_le_bytes());
                put_vars(&mut buf, vars);
            }
            Response::ScrubDone { checked, quarantined, anchored_at, lost } => {
                buf.extend_from_slice(&checked.to_le_bytes());
                buf.extend_from_slice(&quarantined.to_le_bytes());
                buf.push(u8::from(anchored_at.is_some()));
                buf.extend_from_slice(&anchored_at.unwrap_or(0).to_le_bytes());
                buf.extend_from_slice(&lost.to_le_bytes());
            }
            Response::StatsData(s) => {
                for v in [
                    s.accepted,
                    s.served,
                    s.busy_rejected,
                    s.iterations_ingested,
                    s.bytes_ingested,
                    s.write_retries,
                ] {
                    buf.extend_from_slice(&v.to_le_bytes());
                }
                buf.push(u8::from(s.draining));
                buf.extend_from_slice(&(s.sessions.len() as u32).to_le_bytes());
                for sess in &s.sessions {
                    buf.extend_from_slice(&sess.id.to_le_bytes());
                    put_string(&mut buf, &sess.name);
                    buf.extend_from_slice(&sess.files.to_le_bytes());
                    buf.push(u8::from(sess.latest_restartable.is_some()));
                    buf.extend_from_slice(&sess.latest_restartable.unwrap_or(0).to_le_bytes());
                }
                // Observability extension (see `StatsReply` docs).
                buf.extend_from_slice(&s.queue_depth.to_le_bytes());
                buf.extend_from_slice(&(s.latencies.len() as u32).to_le_bytes());
                for lat in &s.latencies {
                    put_string(&mut buf, &lat.name);
                    for v in [
                        lat.summary.count,
                        lat.summary.sum,
                        lat.summary.p50,
                        lat.summary.p90,
                        lat.summary.p99,
                    ] {
                        buf.extend_from_slice(&v.to_le_bytes());
                    }
                }
                // Durability extension (see `StatsReply` docs).
                for v in [
                    s.journal_replayed,
                    s.journal_rolled_back,
                    s.recovery_repairs,
                    s.idle_disconnects,
                    s.replica_repairs,
                    s.replica_quorum_failures,
                ] {
                    buf.extend_from_slice(&v.to_le_bytes());
                }
                // Compaction extension (see `StatsReply` docs).
                for v in [
                    s.compact_runs,
                    s.compact_deltas_merged,
                    s.compact_bytes_reclaimed,
                    s.gc_files_removed,
                ] {
                    buf.extend_from_slice(&v.to_le_bytes());
                }
            }
            Response::SessionClosed | Response::ShuttingDown | Response::Busy => {}
            Response::Error { code, message } => {
                buf.extend_from_slice(&code.to_u16().to_le_bytes());
                put_string(&mut buf, message);
            }
        }
        buf
    }

    /// Decode a response from a frame.
    pub fn from_frame(frame: &Frame) -> io::Result<Self> {
        let mut cur = Cursor(&frame.payload);
        let resp = match frame.opcode {
            opcode::SESSION_OPENED => Response::SessionOpened { session: cur.u64()? },
            opcode::PUT_DONE => {
                let count = cur.u32()? as usize;
                // 8-byte iteration + kind byte + 4-byte retries.
                let mut outcomes = Vec::with_capacity(cur.seq_capacity(count, 13));
                for _ in 0..count {
                    outcomes.push(PutOutcome {
                        iteration: cur.u64()?,
                        kind: WrittenKind::from_u8(cur.u8()?)?,
                        retries: cur.u32()?,
                    });
                }
                Response::PutDone { outcomes }
            }
            opcode::RESTART_DATA => Response::RestartData {
                achieved: cur.u64()?,
                base: cur.u64()?,
                deltas_applied: cur.u64()?,
                lost: cur.u32()?,
                vars: cur.vars()?,
            },
            opcode::SCRUB_DONE => {
                let checked = cur.u32()?;
                let quarantined = cur.u32()?;
                let has_anchor = cur.u8()? != 0;
                let anchor = cur.u64()?;
                let lost = cur.u32()?;
                Response::ScrubDone {
                    checked,
                    quarantined,
                    anchored_at: has_anchor.then_some(anchor),
                    lost,
                }
            }
            opcode::STATS_DATA => {
                let mut s = StatsReply {
                    accepted: cur.u64()?,
                    served: cur.u64()?,
                    busy_rejected: cur.u64()?,
                    iterations_ingested: cur.u64()?,
                    bytes_ingested: cur.u64()?,
                    write_retries: cur.u64()?,
                    draining: cur.u8()? != 0,
                    ..StatsReply::default()
                };
                let count = cur.u32()? as usize;
                for _ in 0..count {
                    let id = cur.u64()?;
                    let name = cur.string()?;
                    let files = cur.u32()?;
                    let has_latest = cur.u8()? != 0;
                    let latest = cur.u64()?;
                    s.sessions.push(SessionStat {
                        id,
                        name,
                        files,
                        latest_restartable: has_latest.then_some(latest),
                    });
                }
                // Observability extension: absent from old-format peers,
                // in which case the defaults above stand.
                if !cur.is_empty() {
                    s.queue_depth = cur.i64()?;
                    let lat_count = cur.u32()? as usize;
                    for _ in 0..lat_count {
                        let name = cur.string()?;
                        let summary = HistogramSummary {
                            count: cur.u64()?,
                            sum: cur.u64()?,
                            p50: cur.u64()?,
                            p90: cur.u64()?,
                            p99: cur.u64()?,
                        };
                        s.latencies.push(LatencyStat { name, summary });
                    }
                    // Durability extension: again absent from peers that
                    // predate it; defaults stand. A *truncated* tail is
                    // still an error (the u64 reads below fail).
                    if !cur.is_empty() {
                        s.journal_replayed = cur.u64()?;
                        s.journal_rolled_back = cur.u64()?;
                        s.recovery_repairs = cur.u64()?;
                        s.idle_disconnects = cur.u64()?;
                        s.replica_repairs = cur.u64()?;
                        s.replica_quorum_failures = cur.u64()?;
                        // Compaction extension: once more, absent from
                        // peers that predate it; defaults stand.
                        if !cur.is_empty() {
                            s.compact_runs = cur.u64()?;
                            s.compact_deltas_merged = cur.u64()?;
                            s.compact_bytes_reclaimed = cur.u64()?;
                            s.gc_files_removed = cur.u64()?;
                        }
                    }
                }
                Response::StatsData(Box::new(s))
            }
            opcode::SESSION_CLOSED => Response::SessionClosed,
            opcode::SHUTTING_DOWN => Response::ShuttingDown,
            opcode::BUSY => Response::Busy,
            opcode::ERROR => Response::Error {
                code: ErrorCode::from_u16(cur.u16()?)?,
                message: cur.string()?,
            },
            other => return Err(corrupt(format!("unknown response opcode {other:#x}"))),
        };
        cur.done()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_vars() -> VariableSet {
        let mut vars = VariableSet::new();
        vars.insert("dens".into(), (0..64).map(|i| 1.0 + i as f64 * 0.5).collect());
        vars.insert("ρ".into(), vec![-1.5, 0.0, f64::MAX, f64::MIN_POSITIVE]);
        vars
    }

    fn roundtrip_request(req: Request) {
        let mut buf = Vec::new();
        write_frame(&mut buf, req.opcode(), 7, &req.payload()).unwrap();
        let frame = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!(frame.req_id, 7);
        assert_eq!(Request::from_frame(&frame).unwrap(), req);
    }

    fn roundtrip_response(resp: Response) {
        let mut buf = Vec::new();
        write_frame(&mut buf, resp.opcode(), 99, &resp.payload()).unwrap();
        let frame = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!(frame.req_id, 99);
        assert_eq!(Response::from_frame(&frame).unwrap(), resp);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_request(Request::OpenSession { name: "sim-0".into() });
        roundtrip_request(Request::PutIterations {
            session: 3,
            iterations: vec![(0, sample_vars()), (1, sample_vars())],
        });
        roundtrip_request(Request::Restart { session: 3, at_or_before: u64::MAX });
        roundtrip_request(Request::Scrub { session: 1, repair: true });
        roundtrip_request(Request::Scrub { session: 1, repair: false });
        roundtrip_request(Request::Stats);
        roundtrip_request(Request::CloseSession { session: 8 });
        roundtrip_request(Request::Shutdown);
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_response(Response::SessionOpened { session: 12 });
        roundtrip_response(Response::PutDone {
            outcomes: vec![
                PutOutcome { iteration: 0, kind: WrittenKind::Full, retries: 0 },
                PutOutcome { iteration: 1, kind: WrittenKind::Delta, retries: 2 },
                PutOutcome { iteration: 2, kind: WrittenKind::FullOnDrift, retries: 0 },
            ],
        });
        roundtrip_response(Response::RestartData {
            achieved: 9,
            base: 8,
            deltas_applied: 1,
            lost: 2,
            vars: sample_vars(),
        });
        roundtrip_response(Response::ScrubDone {
            checked: 10,
            quarantined: 2,
            anchored_at: Some(7),
            lost: 1,
        });
        roundtrip_response(Response::ScrubDone {
            checked: 4,
            quarantined: 0,
            anchored_at: None,
            lost: 0,
        });
        roundtrip_response(Response::StatsData(Box::new(StatsReply {
            accepted: 5,
            served: 40,
            busy_rejected: 2,
            iterations_ingested: 64,
            bytes_ingested: 1 << 20,
            write_retries: 3,
            draining: true,
            sessions: vec![
                SessionStat { id: 1, name: "a".into(), files: 16, latest_restartable: Some(15) },
                SessionStat { id: 2, name: "b".into(), files: 0, latest_restartable: None },
            ],
            queue_depth: 3,
            latencies: vec![
                LatencyStat {
                    name: "nsrv_request_put_ns".into(),
                    summary: HistogramSummary {
                        count: 40,
                        sum: 4_000_000,
                        p50: 90_000,
                        p90: 150_000,
                        p99: 400_000,
                    },
                },
                LatencyStat { name: "nsrv_request_stats_ns".into(), summary: Default::default() },
            ],
            journal_replayed: 4,
            journal_rolled_back: 1,
            recovery_repairs: 1,
            idle_disconnects: 6,
            replica_repairs: 9,
            replica_quorum_failures: 2,
            compact_runs: 11,
            compact_deltas_merged: 44,
            compact_bytes_reclaimed: 1 << 16,
            gc_files_removed: 33,
        })));
        roundtrip_response(Response::SessionClosed);
        roundtrip_response(Response::ShuttingDown);
        roundtrip_response(Response::Busy);
        roundtrip_response(Response::Error {
            code: ErrorCode::UnknownSession,
            message: "session 9 is not open".into(),
        });
    }

    /// A `StatsData` payload from an old-format peer (no observability
    /// extension after the sessions) decodes with the extension fields
    /// at their defaults instead of failing.
    #[test]
    fn old_format_stats_reply_decodes_with_default_extension() {
        let mut payload = Vec::new();
        for v in [5u64, 40, 2, 64, 1 << 20, 3] {
            payload.extend_from_slice(&v.to_le_bytes());
        }
        payload.push(1); // draining
        payload.extend_from_slice(&1u32.to_le_bytes()); // one session
        payload.extend_from_slice(&7u64.to_le_bytes());
        put_string(&mut payload, "legacy");
        payload.extend_from_slice(&16u32.to_le_bytes());
        payload.push(1);
        payload.extend_from_slice(&15u64.to_le_bytes());
        // No extension bytes: this is where an old encoder stopped.
        let mut buf = Vec::new();
        write_frame(&mut buf, opcode::STATS_DATA, 11, &payload).unwrap();
        let frame = read_frame(&mut buf.as_slice()).unwrap();
        match Response::from_frame(&frame).unwrap() {
            Response::StatsData(s) => {
                assert_eq!(s.accepted, 5);
                assert_eq!(s.write_retries, 3);
                assert!(s.draining);
                assert_eq!(s.sessions.len(), 1);
                assert_eq!(s.sessions[0].name, "legacy");
                assert_eq!(s.sessions[0].latest_restartable, Some(15));
                assert_eq!(s.queue_depth, 0, "extension default");
                assert!(s.latencies.is_empty(), "extension default");
                assert_eq!(s.journal_replayed, 0, "durability extension default");
                assert_eq!(s.replica_repairs, 0, "durability extension default");
            }
            other => panic!("expected StatsData, got {other:?}"),
        }
    }

    /// A peer with the observability extension but not the durability
    /// one (it stops after the latencies) decodes with the durability
    /// fields at their defaults.
    #[test]
    fn stats_reply_without_durability_extension_decodes_with_defaults() {
        let full = Response::StatsData(Box::new(StatsReply {
            queue_depth: 2,
            latencies: vec![LatencyStat { name: "x_ns".into(), summary: Default::default() }],
            journal_replayed: 7,
            idle_disconnects: 3,
            ..Default::default()
        }));
        let payload = full.payload();
        // The durability extension is six u64s, the compaction
        // extension four more: 80 tail bytes in total.
        let short = &payload[..payload.len() - 80];
        let mut buf = Vec::new();
        write_frame(&mut buf, opcode::STATS_DATA, 1, short).unwrap();
        let frame = read_frame(&mut buf.as_slice()).unwrap();
        match Response::from_frame(&frame).unwrap() {
            Response::StatsData(s) => {
                assert_eq!(s.queue_depth, 2, "first extension still decodes");
                assert_eq!(s.latencies.len(), 1);
                assert_eq!(s.journal_replayed, 0, "durability default");
                assert_eq!(s.idle_disconnects, 0, "durability default");
                assert_eq!(s.compact_runs, 0, "compaction default");
            }
            other => panic!("expected StatsData, got {other:?}"),
        }
    }

    /// A peer with the durability extension but not the compaction one
    /// (it stops after the six durability u64s) decodes with the
    /// compaction fields at their defaults.
    #[test]
    fn stats_reply_without_compaction_extension_decodes_with_defaults() {
        let full = Response::StatsData(Box::new(StatsReply {
            journal_replayed: 7,
            replica_repairs: 5,
            compact_runs: 9,
            gc_files_removed: 4,
            ..Default::default()
        }));
        let payload = full.payload();
        // The compaction extension is exactly four u64s at the tail.
        let short = &payload[..payload.len() - 32];
        let mut buf = Vec::new();
        write_frame(&mut buf, opcode::STATS_DATA, 1, short).unwrap();
        let frame = read_frame(&mut buf.as_slice()).unwrap();
        match Response::from_frame(&frame).unwrap() {
            Response::StatsData(s) => {
                assert_eq!(s.journal_replayed, 7, "durability still decodes");
                assert_eq!(s.replica_repairs, 5, "durability still decodes");
                assert_eq!(s.compact_runs, 0, "compaction default");
                assert_eq!(s.gc_files_removed, 0, "compaction default");
            }
            other => panic!("expected StatsData, got {other:?}"),
        }
    }

    /// A *truncated* extension (bytes present but not a whole one) is
    /// still a decode error, not a silent partial parse.
    #[test]
    fn truncated_stats_extension_is_rejected() {
        let full = Response::StatsData(Box::new(StatsReply {
            queue_depth: 2,
            latencies: vec![LatencyStat { name: "x_ns".into(), summary: Default::default() }],
            ..Default::default()
        }));
        let payload = full.payload();
        for cut in 1..12 {
            let short = &payload[..payload.len() - cut];
            let mut buf = Vec::new();
            write_frame(&mut buf, opcode::STATS_DATA, 1, short).unwrap();
            let frame = read_frame(&mut buf.as_slice()).unwrap();
            assert!(Response::from_frame(&frame).is_err(), "cut {cut} bytes");
        }
    }

    #[test]
    fn corrupted_frames_are_rejected() {
        let req = Request::PutIterations { session: 1, iterations: vec![(0, sample_vars())] };
        let mut buf = Vec::new();
        write_frame(&mut buf, req.opcode(), 1, &req.payload()).unwrap();
        // Flip one bit at several positions: magic, version, opcode,
        // length, payload, crc.
        for pos in [0usize, 4, 6, 17, HEADER_LEN + 3, buf.len() - 1] {
            let mut bad = buf.clone();
            bad[pos] ^= 0x20;
            assert!(read_frame(&mut bad.as_slice()).is_err(), "flip at {pos}");
        }
    }

    #[test]
    fn truncated_frames_are_rejected() {
        let req = Request::Restart { session: 1, at_or_before: 5 };
        let mut buf = Vec::new();
        write_frame(&mut buf, req.opcode(), 1, &req.payload()).unwrap();
        for cut in [0usize, 5, HEADER_LEN - 1, HEADER_LEN + 2, buf.len() - 1] {
            assert!(read_frame(&mut &buf[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn oversized_payload_length_is_rejected_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.push(opcode::STATS);
        buf.push(0);
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = read_frame(&mut buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("exceeds limit"), "{err}");
    }

    #[test]
    fn trailing_payload_bytes_are_rejected() {
        let mut payload = Request::Stats.payload();
        payload.push(0xAB);
        let mut buf = Vec::new();
        write_frame(&mut buf, opcode::STATS, 1, &payload).unwrap();
        let frame = read_frame(&mut buf.as_slice()).unwrap();
        assert!(Request::from_frame(&frame).is_err());
    }

    #[test]
    fn frame_from_bytes_handles_prefixes_wholes_and_tails() {
        let req = Request::Restart { session: 9, at_or_before: 42 };
        let bytes = encode_frame(req.opcode(), 5, &req.payload());
        // Every strict prefix is "need more bytes", never an error.
        for cut in 0..bytes.len() {
            assert!(
                matches!(frame_from_bytes(&bytes[..cut]), Ok(None)),
                "prefix of {cut} bytes"
            );
        }
        // The whole frame parses and reports its exact length, even with
        // trailing bytes from a pipelined successor behind it.
        let mut two = bytes.clone();
        two.extend_from_slice(&bytes);
        let (frame, used) = frame_from_bytes(&two).unwrap().unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(frame.req_id, 5);
        assert_eq!(Request::from_frame(&frame).unwrap(), req);
        let (frame2, used2) = frame_from_bytes(&two[used..]).unwrap().unwrap();
        assert_eq!(used2, bytes.len());
        assert_eq!(frame2.req_id, 5);
        // Corruption in magic, version or CRC is an error.
        for pos in [0usize, 4, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x10;
            assert!(frame_from_bytes(&bad).is_err(), "flip at {pos}");
        }
    }

    #[test]
    fn patch_session_id_reseals_a_valid_frame() {
        for req in [
            Request::PutIterations { session: 1, iterations: vec![(0, sample_vars())] },
            Request::Restart { session: 1, at_or_before: u64::MAX },
            Request::Scrub { session: 1, repair: true },
            Request::CloseSession { session: 1 },
        ] {
            let mut bytes = encode_frame(req.opcode(), 3, &req.payload());
            patch_session_id(&mut bytes, 7777).unwrap();
            // The patched frame still passes full CRC validation...
            let (frame, _) = frame_from_bytes(&bytes).unwrap().unwrap();
            // ...and decodes to the same request under the new id.
            match Request::from_frame(&frame).unwrap() {
                Request::PutIterations { session, .. }
                | Request::Restart { session, .. }
                | Request::Scrub { session, .. }
                | Request::CloseSession { session } => assert_eq!(session, 7777),
                other => panic!("unexpected request {other:?}"),
            }
        }
        // Opcodes without a leading session id are refused.
        let mut stats = encode_frame(opcode::STATS, 1, &Request::Stats.payload());
        assert!(patch_session_id(&mut stats, 1).is_err());
        let mut open =
            encode_frame(opcode::OPEN_SESSION, 1, &Request::OpenSession { name: "x".into() }.payload());
        assert!(patch_session_id(&mut open, 1).is_err());
    }

    #[test]
    fn read_or_idle_sees_closed_and_frames() {
        // A closed (empty) stream reads as Closed.
        match read_frame_or_idle(&mut io::empty()).unwrap() {
            ReadOutcome::Closed => {}
            other => panic!("expected Closed, got {other:?}"),
        }
        // A full frame reads as Frame.
        let mut buf = Vec::new();
        write_frame(&mut buf, opcode::SHUTDOWN, 2, &[]).unwrap();
        match read_frame_or_idle(&mut buf.as_slice()).unwrap() {
            ReadOutcome::Frame(f) => assert_eq!(f.opcode, opcode::SHUTDOWN),
            other => panic!("expected Frame, got {other:?}"),
        }
        // A stream that dies mid-frame is an error, not Idle.
        assert!(read_frame_or_idle(&mut &buf[..7]).is_err());
    }
}
