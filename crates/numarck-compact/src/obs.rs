//! Observability hooks for the compaction policy engine.
//!
//! Mirrors the [`numarck_checkpoint::obs`] idiom: cached handles into
//! the process-wide [`numarck_obs::Registry`], so compaction outcomes
//! show up on `/metrics` and in the stats wire reply without threading
//! report values through every call site.
//!
//! Metric names (see DESIGN.md §7):
//! * `nck_compact_runs_total` — maintenance passes started;
//! * `nck_compact_deltas_merged_total` — plain deltas superseded by a
//!   merged delta;
//! * `nck_compact_merges_total` — merged delta files written;
//! * `nck_compact_fulls_promoted_total` — fulls materialised by the
//!   placement policy;
//! * `nck_compact_bytes_reclaimed_total` — store bytes freed by a pass
//!   (compaction + GC combined);
//! * `nck_gc_files_removed_total` — files deleted by retention GC;
//! * `nck_compact_run_ns` — wall time of one full maintenance pass.

use std::sync::{Arc, OnceLock};

use numarck_obs::{Counter, Histogram, Registry};

macro_rules! cached {
    ($fn_name:ident, $kind:ident, $ty:ty, $metric:literal) => {
        /// Cached handle to the global-registry instrument `
        #[doc = $metric]
        /// `.
        pub fn $fn_name() -> &'static Arc<$ty> {
            static CELL: OnceLock<Arc<$ty>> = OnceLock::new();
            CELL.get_or_init(|| Registry::global().$kind($metric))
        }
    };
}

cached!(runs_total, counter, Counter, "nck_compact_runs_total");
cached!(deltas_merged_total, counter, Counter, "nck_compact_deltas_merged_total");
cached!(merges_total, counter, Counter, "nck_compact_merges_total");
cached!(fulls_promoted_total, counter, Counter, "nck_compact_fulls_promoted_total");
cached!(bytes_reclaimed_total, counter, Counter, "nck_compact_bytes_reclaimed_total");
cached!(gc_files_removed_total, counter, Counter, "nck_gc_files_removed_total");
cached!(run_ns, histogram, Histogram, "nck_compact_run_ns");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_alias_the_global_registry() {
        assert!(Arc::ptr_eq(
            runs_total(),
            &Registry::global().counter("nck_compact_runs_total")
        ));
        assert!(Arc::ptr_eq(run_ns(), &Registry::global().histogram("nck_compact_run_ns")));
    }
}
