/root/repo/target/debug/deps/concurrent_scrub-4755c1931e9c3f5f.d: crates/numarck-serve/tests/concurrent_scrub.rs crates/numarck-serve/tests/util/mod.rs

/root/repo/target/debug/deps/concurrent_scrub-4755c1931e9c3f5f: crates/numarck-serve/tests/concurrent_scrub.rs crates/numarck-serve/tests/util/mod.rs

crates/numarck-serve/tests/concurrent_scrub.rs:
crates/numarck-serve/tests/util/mod.rs:
