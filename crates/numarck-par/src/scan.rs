//! Parallel prefix sums (scans).
//!
//! The decoder needs, for every 64-point bitmap word, the number of
//! compressible points before it — an exclusive prefix sum of popcounts.
//! For the multi-million-word bitmaps of large checkpoint variables the
//! classic two-pass blocked scan (per-block sums, scan the block sums
//! sequentially, then offset each block in parallel) is worthwhile;
//! below the threshold a simple sequential scan wins.

use rayon::prelude::*;

use crate::chunk::{chunk_ranges, chunk_size_for};

/// Minimum length for the parallel path (two passes over the data must
/// beat one sequential pass).
pub const PAR_THRESHOLD: usize = 1 << 16;

/// Sequential exclusive prefix sum: `out[i] = Σ_{j<i} f(in[j])`.
/// Returns the vector and the grand total.
pub fn exclusive_scan_seq<T, F>(input: &[T], f: F) -> (Vec<u64>, u64)
where
    F: Fn(&T) -> u64,
{
    let mut out = Vec::with_capacity(input.len());
    let mut acc = 0u64;
    for x in input {
        out.push(acc);
        acc += f(x);
    }
    (out, acc)
}

/// Parallel exclusive prefix sum with the same contract as
/// [`exclusive_scan_seq`]. `f` must be pure.
pub fn exclusive_scan<T, F>(input: &[T], f: F) -> (Vec<u64>, u64)
where
    T: Sync,
    F: Fn(&T) -> u64 + Sync,
{
    if input.len() < PAR_THRESHOLD {
        return exclusive_scan_seq(input, f);
    }
    let chunk = chunk_size_for(input.len());
    let ranges: Vec<(usize, usize)> = chunk_ranges(input.len(), chunk).collect();
    // Pass 1: per-block totals.
    let block_sums: Vec<u64> = ranges
        .par_iter()
        .map(|&(s, e)| input[s..e].iter().map(&f).sum())
        .collect();
    // Scan the (few) block sums sequentially.
    let (block_offsets, total) = exclusive_scan_seq(&block_sums, |&x| x);
    // Pass 2: per-block local scans shifted by the block offset.
    let mut out = vec![0u64; input.len()];
    out.par_chunks_mut(chunk).zip(ranges.par_iter()).zip(block_offsets.par_iter()).for_each(
        |((o, &(s, e)), &offset)| {
            let mut acc = offset;
            for (slot, x) in o.iter_mut().zip(&input[s..e]) {
                *slot = acc;
                acc += f(x);
            }
        },
    );
    (out, total)
}

/// Exclusive prefix popcount over bitmap words — the decoder's rank
/// index: `rank[w]` = set bits in words `0..w`.
pub fn popcount_ranks(bitmap: &[u64]) -> (Vec<u64>, u64) {
    exclusive_scan(bitmap, |w| w.count_ones() as u64)
}

/// Exclusive prefix popcount at block granularity: `ranks[c]` = set bits
/// in words `0..c*words_per_block`. This is the decoder's rank index when
/// it decodes one block of points per parallel task — it needs only the
/// rank at each block start (O(blocks) memory), not at every word
/// (O(words) memory like [`popcount_ranks`]). Block popcounts run in
/// parallel; the scan over the (few) block sums is sequential.
pub fn chunked_popcount_ranks(bitmap: &[u64], words_per_block: usize) -> (Vec<u64>, u64) {
    let ranges: Vec<(usize, usize)> = chunk_ranges(bitmap.len(), words_per_block).collect();
    let sums: Vec<u64> = ranges
        .par_iter()
        .map(|&(s, e)| numarck_simd::popcount::popcount_sum(&bitmap[s..e]))
        .collect();
    exclusive_scan_seq(&sums, |&x| x)
}

/// Exclusive scan over `(u64, u64)` tally pairs, scanning both components
/// independently. The encoder's rank-partitioned packer feeds it per-chunk
/// `(num_compressible, num_escaped)` counts; the result gives every chunk
/// its exact start rank in the bit-packed index stream and in the escaped
/// exact-value array. Sequential on purpose: the input has one entry per
/// parallel chunk, so its length is O(threads), not O(points).
pub fn exclusive_scan_pairs(input: &[(u64, u64)]) -> (Vec<(u64, u64)>, (u64, u64)) {
    let mut out = Vec::with_capacity(input.len());
    let mut acc = (0u64, 0u64);
    for &(a, b) in input {
        out.push(acc);
        acc.0 += a;
        acc.1 += b;
    }
    (out, acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_scan_basic() {
        let (scan, total) = exclusive_scan_seq(&[1u64, 2, 3, 4], |&x| x);
        assert_eq!(scan, vec![0, 1, 3, 6]);
        assert_eq!(total, 10);
    }

    #[test]
    fn empty_scan() {
        let (scan, total) = exclusive_scan::<u64, _>(&[], |&x| x);
        assert!(scan.is_empty());
        assert_eq!(total, 0);
    }

    #[test]
    fn par_matches_seq_across_threshold() {
        let input: Vec<u64> = (0..PAR_THRESHOLD as u64 + 1000).map(|i| i % 7).collect();
        let (par, pt) = exclusive_scan(&input, |&x| x);
        let (seq, st) = exclusive_scan_seq(&input, |&x| x);
        assert_eq!(par, seq);
        assert_eq!(pt, st);
    }

    #[test]
    fn popcount_ranks_hand_checked() {
        let bitmap = [0b1011u64, 0, u64::MAX, 0b1];
        let (ranks, total) = popcount_ranks(&bitmap);
        assert_eq!(ranks, vec![0, 3, 3, 67]);
        assert_eq!(total, 68);
    }

    #[test]
    fn chunked_popcount_ranks_matches_per_word_ranks() {
        let bitmap: Vec<u64> = (0..1000u64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15)).collect();
        let (word_ranks, word_total) = popcount_ranks(&bitmap);
        for wpb in [1usize, 3, 7, 64, 1000, 5000] {
            let (block_ranks, total) = chunked_popcount_ranks(&bitmap, wpb);
            assert_eq!(total, word_total, "wpb={wpb}");
            assert_eq!(block_ranks.len(), bitmap.len().div_ceil(wpb), "wpb={wpb}");
            for (c, &r) in block_ranks.iter().enumerate() {
                assert_eq!(r, word_ranks[c * wpb], "wpb={wpb} block={c}");
            }
        }
    }

    #[test]
    fn chunked_popcount_ranks_empty_bitmap() {
        let (ranks, total) = chunked_popcount_ranks(&[], 64);
        assert!(ranks.is_empty());
        assert_eq!(total, 0);
    }

    #[test]
    fn pair_scan_scans_components_independently() {
        let input = [(1u64, 10u64), (2, 0), (0, 5), (7, 7)];
        let (scan, total) = exclusive_scan_pairs(&input);
        assert_eq!(scan, vec![(0, 0), (1, 10), (3, 10), (3, 15)]);
        assert_eq!(total, (10, 22));
        let (empty, zero) = exclusive_scan_pairs(&[]);
        assert!(empty.is_empty());
        assert_eq!(zero, (0, 0));
    }

    #[test]
    fn scan_is_deterministic() {
        let input: Vec<u64> = (0..200_000).map(|i| (i * 31) % 13).collect();
        let a = exclusive_scan(&input, |&x| x);
        let b = exclusive_scan(&input, |&x| x);
        assert_eq!(a, b);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn scan_invariant(xs in proptest::collection::vec(0u64..1000, 0..500)) {
                let (scan, total) = exclusive_scan(&xs, |&x| x);
                prop_assert_eq!(scan.len(), xs.len());
                let mut acc = 0u64;
                for (s, x) in scan.iter().zip(&xs) {
                    prop_assert_eq!(*s, acc);
                    acc += x;
                }
                prop_assert_eq!(total, acc);
            }
        }
    }
}
