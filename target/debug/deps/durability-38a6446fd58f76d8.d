/root/repo/target/debug/deps/durability-38a6446fd58f76d8.d: crates/numarck-serve/tests/durability.rs crates/numarck-serve/tests/util/mod.rs

/root/repo/target/debug/deps/durability-38a6446fd58f76d8: crates/numarck-serve/tests/durability.rs crates/numarck-serve/tests/util/mod.rs

crates/numarck-serve/tests/durability.rs:
crates/numarck-serve/tests/util/mod.rs:
