//! Cluster layer over `numarck-serve`: a consistent-hash session
//! sharding router with a readiness-driven event loop.
//!
//! One `numarck-serve` process is a single fault domain with a
//! thread-per-worker ceiling. This crate scales it out without touching
//! the wire protocol clients speak:
//!
//! * [`ring`] — deterministic virtual-node consistent hashing: session
//!   name → ordered shard placement, pinned by tests so every router
//!   instance (and every test) agrees without coordination.
//! * [`poller`] — std-only readiness polling: raw-FFI epoll on Linux
//!   with a `poll(2)` fallback (`NUMARCK_POLLER=poll` forces it), so
//!   one thread can hold thousands of idle ingest connections.
//! * [`router`] — the gateway event loop: forwards the versioned CRC
//!   frames transparently, replicates ingest to ≥2 shards, fails
//!   restarts over to surviving replicas, fans out and aggregates
//!   stats, and preserves typed `Busy` backpressure plus graceful
//!   drain end to end.
//! * [`health`] — cluster membership: periodic shard probes plus
//!   traffic-driven failure reports, consecutive-failure mark-down,
//!   single-success mark-up.
//! * [`stats`] — the fan-out `StatsReply` fold.
//!
//! Everything is std-only (raw `extern "C"` for `epoll`/`poll`, the
//! same trick `numarck-serve` uses for `signal(2)`), unix-only like the
//! rest of the service layer's process machinery.
//!
//! See DESIGN.md §8 "Cluster architecture" for the normative
//! description (placement, replication, failover, drain).

pub mod health;
pub mod poller;
pub mod ring;
pub mod router;
pub mod stats;

pub use health::{HealthInstruments, Membership, ProberConfig};
pub use ring::{ring_hash, HashRing, DEFAULT_VNODES};
pub use router::{Router, RouterConfig, RouterHandle};
