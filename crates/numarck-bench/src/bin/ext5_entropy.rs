//! Extension experiment 5: entropy coding of the index stream.
//!
//! The paper charges a fixed `B` bits per compressible point and leaves
//! "further lossless compression" as future work. The index stream is
//! strongly skewed (index 0 dominates whenever most changes sit below
//! the tolerance), so canonical Huffman coding recovers most of the gap
//! between `B` and the stream's Shannon entropy — often several bits per
//! point of additional saving, for one byte per table entry of code
//! description.

use climate_sim::ClimateVar;
use flash_sim::FlashVar;
use numarck::huffman::index_entropy_stats;
use numarck::{Compressor, Config, Strategy};
use numarck_bench::data::{climate_sequence, flash_sequences, FlashConfig};
use numarck_bench::report::{print_table, write_csv};
use numarck_bench::RESULTS_DIR;

fn main() {
    let config = Config::new(8, 0.001, Strategy::Clustering).expect("valid");
    let compressor = Compressor::new(config);

    let mut table = vec![vec![
        "dataset".to_string(),
        "fixed bits/pt".to_string(),
        "entropy bits/pt".to_string(),
        "huffman bits/pt".to_string(),
        "extra saving %".to_string(),
    ]];
    let mut csv = vec![vec![
        "dataset".to_string(),
        "fixed".to_string(),
        "entropy".to_string(),
        "huffman".to_string(),
    ]];

    let mut eval = |name: &str, prev: &[f64], curr: &[f64]| {
        let (block, _) = compressor.compress(prev, curr).expect("finite data");
        let s = index_entropy_stats(&block);
        // Extra saving relative to the full fixed-width raw data (the
        // index stream is B/64 of raw; entropy coding shrinks that part).
        let extra = (s.fixed_bits - s.huffman_bits) / 64.0 * 100.0;
        table.push(vec![
            name.to_string(),
            format!("{:.1}", s.fixed_bits),
            format!("{:.3}", s.entropy_bits),
            format!("{:.3}", s.huffman_bits),
            format!("{:.2}", extra),
        ]);
        csv.push(vec![
            name.to_string(),
            s.fixed_bits.to_string(),
            s.entropy_bits.to_string(),
            s.huffman_bits.to_string(),
        ]);
    };

    for var in [ClimateVar::Rlus, ClimateVar::Rlds, ClimateVar::Abs550aer] {
        let seq = climate_sequence(var, 2);
        eval(var.name(), &seq[0], &seq[1]);
    }
    let flash = flash_sequences(FlashConfig::default(), 2);
    for var in [FlashVar::Dens, FlashVar::Pres] {
        eval(var.name(), &flash[&var][0], &flash[&var][1]);
    }

    println!("Extension 5: Huffman coding of the B-bit index stream (E = 0.1%, B = 8)");
    print_table(&table);
    println!("\n(expected: near-zero entropy for easy variables — almost everything is");
    println!(" index 0 — recovering most of the 12.5% index-stream cost; hard variables");
    println!(" approach the fixed width from below)");
    match write_csv(RESULTS_DIR, "ext5_entropy_coding", &csv) {
        Ok(p) => println!("wrote {p}"),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
