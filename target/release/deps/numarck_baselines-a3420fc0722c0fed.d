/root/repo/target/release/deps/numarck_baselines-a3420fc0722c0fed.d: crates/numarck-baselines/src/lib.rs crates/numarck-baselines/src/bsplines.rs crates/numarck-baselines/src/isabela.rs

/root/repo/target/release/deps/libnumarck_baselines-a3420fc0722c0fed.rlib: crates/numarck-baselines/src/lib.rs crates/numarck-baselines/src/bsplines.rs crates/numarck-baselines/src/isabela.rs

/root/repo/target/release/deps/libnumarck_baselines-a3420fc0722c0fed.rmeta: crates/numarck-baselines/src/lib.rs crates/numarck-baselines/src/bsplines.rs crates/numarck-baselines/src/isabela.rs

crates/numarck-baselines/src/lib.rs:
crates/numarck-baselines/src/bsplines.rs:
crates/numarck-baselines/src/isabela.rs:
