//! The maintenance pass: compaction → placement → GC, journaled.
//!
//! [`Compactor::run`] executes one pass over a store. Every write goes
//! through the same discipline as live ingest: the exact bytes are
//! built and **verified in memory first**, their CRC is recorded in the
//! caller's write-ahead intent journal ([`IntentLog`]), the store write
//! lands atomically (temp file + rename + dir fsync), the bytes are
//! read back and CRC-checked, and only then is the intent committed. A
//! crash at any boundary leaves either the old artefact (rename not yet
//! landed) or the new, verified one — never a torn file — and the
//! outstanding intent tells recovery which it must be. A read-back
//! mismatch (storage corruption between write and verify) quarantines
//! the damaged file so the existing scrub/re-anchor machinery repairs
//! the chain.

use std::io;

use numarck::error::NumarckError;
use numarck_checkpoint::format::{CheckpointFile, CheckpointKind};
use numarck_checkpoint::restart::RestartEngine;
use numarck_checkpoint::store::CheckpointStore;

use crate::chain::{ChainView, CostModel};
use crate::gc::{self, GcReport};
use crate::merge::{self, MergeStats};
use crate::obs;

/// The write-ahead intent interface compaction writes go through.
///
/// `numarck-serve` implements this for its session intent journal, so
/// background compaction shares the crash-recovery contract of live
/// ingest. Standalone callers (CLI on a bare store) can use
/// [`NoJournal`]: the store's atomic writes alone still guarantee
/// old-or-new, just without recovery's CRC cross-check.
pub trait IntentLog {
    /// Record the intent to write `content_crc` at `iteration`; returns
    /// the sequence number to commit. Must be durable before the store
    /// write starts.
    fn begin(&mut self, iteration: u64, is_full: bool, content_crc: u32) -> io::Result<u64>;
    /// Record that the write for `seq` landed.
    fn commit(&mut self, seq: u64) -> io::Result<()>;
}

/// No-op journal for standalone stores.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoJournal;

impl IntentLog for NoJournal {
    fn begin(&mut self, _iteration: u64, _is_full: bool, _content_crc: u32) -> io::Result<u64> {
        Ok(0)
    }
    fn commit(&mut self, _seq: u64) -> io::Result<()> {
        Ok(())
    }
}

/// Knobs for one maintenance pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompactionConfig {
    /// Merge this many consecutive plain deltas into one. 0 or 1
    /// disables compaction.
    pub merge_window: u64,
    /// Modeled worst-case restart latency target; `None` disables the
    /// placement policy.
    pub restart_slo_ns: Option<u64>,
    /// Retention: keep the newest N full checkpoints restartable. 0
    /// disables GC entirely.
    pub keep_last_fulls: usize,
    /// Retention: additionally keep every iteration divisible by this.
    /// 0 keeps only chain-needed iterations.
    pub keep_every: u64,
    /// Retention: never delete a file younger than this.
    pub min_age_secs: u64,
    /// The restart cost model placement decisions use.
    pub cost: CostModel,
}

impl Default for CompactionConfig {
    fn default() -> Self {
        Self {
            merge_window: 4,
            restart_slo_ns: None,
            keep_last_fulls: 0,
            keep_every: 0,
            min_age_secs: 0,
            cost: CostModel::default(),
        }
    }
}

/// What one maintenance pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CompactionReport {
    /// Merged delta files written.
    pub merges: u64,
    /// Plain deltas those merges superseded.
    pub deltas_merged: u64,
    /// Per-point accounting across all merges.
    pub merge_stats: MergeStats,
    /// Full checkpoints materialised by the placement policy.
    pub fulls_promoted: u64,
    /// Files deleted by retention GC.
    pub gc: GcReport,
    /// Store bytes freed by the whole pass (compaction + GC).
    pub bytes_reclaimed: u64,
    /// Worst modeled restart cost after the pass, over resolvable
    /// iterations.
    pub worst_case_cost_ns: Option<u64>,
}

/// Runs maintenance passes under a [`CompactionConfig`].
#[derive(Debug, Clone)]
pub struct Compactor {
    config: CompactionConfig,
}

impl Compactor {
    /// A compactor with `config`.
    pub fn new(config: CompactionConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &CompactionConfig {
        &self.config
    }

    /// One full maintenance pass: merge plain-delta windows, promote
    /// fulls until the modeled worst-case restart cost meets the SLO,
    /// then collect superseded artefacts.
    ///
    /// The caller owns mutual exclusion with ingest and scrub (the
    /// serve worker holds the session lock, exactly as scrub does).
    pub fn run(
        &self,
        store: &CheckpointStore,
        journal: &mut dyn IntentLog,
    ) -> Result<CompactionReport, NumarckError> {
        obs::runs_total().inc();
        let _span = obs::run_ns().span();
        let mut report = CompactionReport::default();
        let bytes_before = ChainView::load(store)
            .map_err(|e| NumarckError::Io(format!("chain snapshot failed: {e}")))?
            .total_bytes();

        if self.config.merge_window >= 2 {
            self.compact(store, journal, &mut report)?;
        }
        if let Some(slo) = self.config.restart_slo_ns {
            self.place(store, journal, slo, &mut report)?;
        }
        if self.config.keep_last_fulls > 0 {
            report.gc = gc::collect(
                store,
                self.config.keep_last_fulls,
                self.config.keep_every,
                self.config.min_age_secs,
            )?;
            obs::gc_files_removed_total().add(report.gc.removed);
        }

        let after = ChainView::load(store)
            .map_err(|e| NumarckError::Io(format!("chain snapshot failed: {e}")))?;
        report.bytes_reclaimed = bytes_before.saturating_sub(after.total_bytes());
        obs::bytes_reclaimed_total().add(report.bytes_reclaimed);
        report.worst_case_cost_ns = after.worst_case_cost_ns(&self.config.cost);
        Ok(report)
    }

    /// Merge every complete `merge_window`-sized window of consecutive
    /// plain deltas. Each merged delta is verified bit-exact against
    /// the current chain's replay before it replaces anything; the
    /// superseded plain deltas stay on disk for GC to judge.
    fn compact(
        &self,
        store: &CheckpointStore,
        journal: &mut dyn IntentLog,
        report: &mut CompactionReport,
    ) -> Result<(), NumarckError> {
        let w = self.config.merge_window;
        let view = ChainView::load(store)
            .map_err(|e| NumarckError::Io(format!("chain snapshot failed: {e}")))?;
        for (a, b) in view.plain_runs() {
            let mut start = a;
            while start + w - 1 <= b {
                let end = start + w - 1;
                let merged = merge::merge_window(store, end, w)?;
                journaled_write(
                    store,
                    journal,
                    merged.file.iteration,
                    false,
                    &merged.bytes,
                    merged.content_crc,
                )?;
                report.merges += 1;
                report.deltas_merged += w;
                report.merge_stats.unchanged += merged.stats.unchanged;
                report.merge_stats.ratio_coded += merged.stats.ratio_coded;
                report.merge_stats.escaped += merged.stats.escaped;
                obs::merges_total().inc();
                obs::deltas_merged_total().add(w);
                start = end + 1;
            }
        }
        Ok(())
    }

    /// Promote full checkpoints until every resolvable iteration's
    /// modeled restart cost is within `slo` — walking iterations in
    /// order and materialising a full at the first offender, exactly
    /// the "materialize a fresh full" trick repair uses, but as policy
    /// rather than emergency.
    fn place(
        &self,
        store: &CheckpointStore,
        journal: &mut dyn IntentLog,
        slo: u64,
        report: &mut CompactionReport,
    ) -> Result<(), NumarckError> {
        let model = &self.config.cost;
        let view = ChainView::load(store)
            .map_err(|e| NumarckError::Io(format!("chain snapshot failed: {e}")))?;
        // (hops, base full bytes) per iteration, updated as promotions
        // land so downstream costs see the new fulls.
        let mut memo: std::collections::BTreeMap<u64, (u64, u64)> =
            std::collections::BTreeMap::new();
        let engine = RestartEngine::new(store.clone());
        for it in view.iterations().collect::<Vec<_>>() {
            let entry = *view.entry(it).expect("iterated key");
            let resolved = if let Some(bytes) = entry.full_bytes {
                Some((0u64, bytes))
            } else if entry.delta_bytes.is_some() {
                let span = entry.delta_span.max(1);
                it.checked_sub(span)
                    .and_then(|base| memo.get(&base).copied())
                    .map(|(hops, base_bytes)| (hops + 1, base_bytes))
            } else {
                None
            };
            let Some((hops, base_bytes)) = resolved else { continue };
            let cost = model.cost_ns(base_bytes, hops);
            // Promote only when a full would actually fix it: if the
            // full-decode cost alone already blows the SLO, promotion
            // per iteration would bloat the store without meeting it.
            if cost > slo && hops >= 1 && model.cost_ns(base_bytes, 0) <= slo {
                let vars = engine.restart_at(it)?.vars;
                let file = CheckpointFile::new(it, CheckpointKind::Full(vars));
                let bytes = file.to_bytes();
                let crc = numarck::serialize::crc32(&bytes);
                journaled_write(store, journal, it, true, &bytes, crc)?;
                report.fulls_promoted += 1;
                obs::fulls_promoted_total().inc();
                memo.insert(it, (0, bytes.len() as u64));
            } else {
                memo.insert(it, (hops, base_bytes));
            }
        }
        Ok(())
    }
}

/// The shared write discipline: journal intent → atomic store write →
/// read-back CRC verify → journal commit. On a read-back mismatch the
/// damaged file is quarantined (feeding the scrub/re-anchor path) and
/// the intent is deliberately left outstanding for recovery to judge.
fn journaled_write(
    store: &CheckpointStore,
    journal: &mut dyn IntentLog,
    iteration: u64,
    is_full: bool,
    bytes: &[u8],
    content_crc: u32,
) -> Result<(), NumarckError> {
    let seq = journal
        .begin(iteration, is_full, content_crc)
        .map_err(|e| NumarckError::Io(format!("journal intent failed: {e}")))?;
    store
        .write_raw(iteration, is_full, bytes)
        .map_err(|e| NumarckError::Io(format!("compaction write failed: {e}")))?;
    let back = store
        .read_raw(iteration, is_full)
        .map_err(|e| NumarckError::Io(format!("compaction read-back failed: {e}")))?;
    if numarck::serialize::crc32(&back) != content_crc {
        let _ = store.quarantine(iteration, is_full);
        return Err(NumarckError::Corrupt(format!(
            "compaction write of iteration {iteration} failed read-back verification; quarantined"
        )));
    }
    journal
        .commit(seq)
        .map_err(|e| NumarckError::Io(format!("journal commit failed: {e}")))?;
    Ok(())
}
