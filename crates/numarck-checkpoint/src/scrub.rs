//! Offline integrity scrubbing and chain repair.
//!
//! [`scrub`] is the detector: it re-reads every stored file, validates
//! it end to end (CRC, header, iteration/extension agreement) and moves
//! anything damaged into the store's `quarantine/` directory — never
//! deleting, so post-mortems keep their evidence.
//!
//! [`repair`] is the responder: after scrubbing it quarantines the
//! now-orphaned chain segments (intact deltas whose base or predecessor
//! is gone), then *re-anchors* the store by materializing a fresh full
//! checkpoint at the newest restartable iteration, so future deltas and
//! prunes have a sound base. The materialized full is built by chain
//! replay, so it carries the chain's accumulated (tolerance-bounded)
//! error — see DESIGN.md's failure-model section.

use std::path::PathBuf;

use numarck::error::NumarckError;

use crate::fault::diagnose_store;
use crate::format::{CheckpointFile, CheckpointKind};
use crate::restart::{LostIteration, RestartEngine};
use crate::store::{CheckpointStore, StoreEntry};

/// One file the scrubber pulled out of service.
#[derive(Debug, Clone)]
pub struct ScrubFinding {
    /// The damaged entry.
    pub entry: StoreEntry,
    /// What the validation failure was.
    pub reason: String,
    /// Where the file now lives.
    pub quarantined_to: PathBuf,
}

/// Result of a [`scrub`] pass.
#[derive(Debug, Clone)]
pub struct ScrubReport {
    /// Files examined.
    pub checked: usize,
    /// Files that failed validation and were quarantined.
    pub quarantined: Vec<ScrubFinding>,
}

impl ScrubReport {
    /// True when every stored file validated.
    pub fn is_clean(&self) -> bool {
        self.quarantined.is_empty()
    }
}

/// Validate every stored checkpoint file; quarantine the ones that fail.
///
/// A file fails when its bytes don't parse (bad magic, bad CRC, torn
/// tail), when its header claims a different iteration than its name, or
/// when its payload kind contradicts its extension. Damaged files are
/// *moved* to `quarantine/`, not deleted.
pub fn scrub(store: &CheckpointStore) -> Result<ScrubReport, NumarckError> {
    let entries = store
        .list()
        .map_err(|e| NumarckError::Io(format!("store listing failed: {e}")))?;
    let checked = entries.len();
    crate::obs::scrub_runs_total().inc();
    crate::obs::scrub_checked_total().add(checked as u64);
    let mut quarantined = Vec::new();
    for entry in entries {
        let Some(reason) = validate(store, entry) else { continue };
        let quarantined_to = store
            .quarantine(entry.iteration, entry.is_full)
            .map_err(|e| NumarckError::Io(format!("quarantine failed: {e}")))?;
        crate::obs::quarantined_total().inc();
        numarck_obs::Registry::global().events().push(
            numarck_obs::Level::Error,
            format!("ckpt scrub quarantined iter={}: {reason}", entry.iteration),
        );
        quarantined.push(ScrubFinding { entry, reason, quarantined_to });
    }
    Ok(ScrubReport { checked, quarantined })
}

/// `None` when the entry validates; otherwise why it doesn't.
fn validate(store: &CheckpointStore, entry: StoreEntry) -> Option<String> {
    let bytes = match store.read_raw(entry.iteration, entry.is_full) {
        Ok(bytes) => bytes,
        Err(e) => return Some(format!("unreadable: {e}")),
    };
    let file = match CheckpointFile::from_bytes(&bytes) {
        Ok(file) => file,
        Err(e) => return Some(e.to_string()),
    };
    if file.iteration != entry.iteration {
        return Some(format!(
            "header claims iteration {}, file name says {}",
            file.iteration, entry.iteration
        ));
    }
    let is_full_payload = matches!(file.kind, CheckpointKind::Full(_));
    if is_full_payload != entry.is_full {
        return Some(format!(
            "payload kind ({}) contradicts extension ({})",
            if is_full_payload { "full" } else { "delta" },
            if entry.is_full { "full" } else { "delta" },
        ));
    }
    None
}

/// Result of a [`repair`] pass.
#[derive(Debug, Clone)]
pub struct RepairReport {
    /// The scrub that ran first.
    pub scrub: ScrubReport,
    /// The iteration the store was re-anchored at (newest restartable),
    /// or `None` when nothing in the store is restartable.
    pub anchored_at: Option<u64>,
    /// Whether a fresh full checkpoint was materialized at the anchor
    /// (false when the anchor already was a full checkpoint).
    pub wrote_full: bool,
    /// Iterations given up during repair: their files were intact but
    /// their restart chains ran through quarantined data.
    pub lost: Vec<LostIteration>,
}

/// Scrub, then put the store back into a fully-restartable state.
///
/// After the scrub pass, intact files can still be unrestartable — a
/// delta whose base full or predecessor delta got quarantined is an
/// orphan. `repair` quarantines those orphans (recording them in
/// `lost`), then writes a fresh full checkpoint at the newest
/// restartable iteration if that iteration only had a delta, so the
/// store ends with every listed iteration restartable and a full
/// checkpoint at its head.
pub fn repair(store: &CheckpointStore) -> Result<RepairReport, NumarckError> {
    let scrub_report = scrub(store)?;
    let diagnosis = diagnose_store(store)
        .map_err(|e| NumarckError::Io(format!("diagnosis failed: {e}")))?;
    let mut lost = Vec::new();
    let mut anchored_at = None;
    for d in &diagnosis {
        match &d.error {
            None => anchored_at = Some(anchored_at.map_or(d.iteration, |a: u64| a.max(d.iteration))),
            Some(reason) => {
                store
                    .quarantine(d.iteration, d.is_full)
                    .map_err(|e| NumarckError::Io(format!("quarantine failed: {e}")))?;
                lost.push(LostIteration { iteration: d.iteration, reason: reason.clone() });
            }
        }
    }
    // Newest-first reads better in reports (mirrors degraded restart).
    lost.sort_by_key(|l| std::cmp::Reverse(l.iteration));
    let mut wrote_full = false;
    if let Some(anchor) = anchored_at {
        let already_full = diagnosis
            .iter()
            .any(|d| d.iteration == anchor && d.is_full && d.error.is_none());
        if !already_full {
            let result = RestartEngine::new(store.clone()).restart_at(anchor)?;
            let file =
                CheckpointFile { iteration: anchor, kind: CheckpointKind::Full(result.vars) };
            store
                .write(&file)
                .map_err(|e| NumarckError::Io(format!("anchor write failed: {e}")))?;
            wrote_full = true;
        }
    }
    crate::obs::repairs_total().inc();
    crate::obs::repair_lost_total().add(lost.len() as u64);
    if !lost.is_empty() || wrote_full {
        numarck_obs::Registry::global().events().push(
            numarck_obs::Level::Info,
            format!(
                "ckpt repair anchored_at={anchored_at:?} wrote_full={wrote_full} lost={}",
                lost.len()
            ),
        );
    }
    Ok(RepairReport { scrub: scrub_report, anchored_at, wrote_full, lost })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{inject, verify_store, Fault};
    use crate::manager::{CheckpointManager, ManagerPolicy};
    use crate::store::testutil::TempDir;
    use crate::VariableSet;
    use numarck::{Config, Strategy};

    fn build(tmp: &TempDir, iters: u64, full_interval: u64) -> CheckpointStore {
        let store = CheckpointStore::open(&tmp.0).unwrap();
        let cfg = Config::new(8, 0.001, Strategy::Clustering).unwrap();
        let mut mgr =
            CheckpointManager::new(store.clone(), cfg, ManagerPolicy::fixed(full_interval));
        let mut state: Vec<f64> = (0..150).map(|i| 1.0 + (i % 9) as f64).collect();
        for it in 0..iters {
            if it > 0 {
                for v in state.iter_mut() {
                    *v *= 1.002;
                }
            }
            let mut vars = VariableSet::new();
            vars.insert("x".into(), state.clone());
            mgr.checkpoint(it, &vars).unwrap();
        }
        store
    }

    #[test]
    fn scrub_of_healthy_store_is_clean_and_touches_nothing() {
        let tmp = TempDir::new("scrub-clean");
        let store = build(&tmp, 10, 4);
        let report = scrub(&store).unwrap();
        assert!(report.is_clean());
        assert_eq!(report.checked, 10);
        assert_eq!(store.list().unwrap().len(), 10);
    }

    #[test]
    fn scrub_quarantines_exactly_the_damaged_files() {
        let tmp = TempDir::new("scrub-quarantine");
        let store = build(&tmp, 12, 4);
        inject(&store.path_of(5, false), Fault::BitFlip { offset: 33, mask: 0x40 }).unwrap();
        inject(&store.path_of(9, false), Fault::Truncate { keep: 12 }).unwrap();
        let report = scrub(&store).unwrap();
        assert_eq!(report.checked, 12);
        let bad: Vec<u64> = report.quarantined.iter().map(|f| f.entry.iteration).collect();
        assert_eq!(bad, vec![5, 9]);
        for f in &report.quarantined {
            assert!(f.quarantined_to.starts_with(store.quarantine_dir()));
            assert!(std::fs::metadata(&f.quarantined_to).unwrap().is_file());
            assert!(!f.reason.is_empty());
        }
        // The ten healthy files are still in service.
        assert_eq!(store.list().unwrap().len(), 10);
        // A second scrub finds nothing left to do.
        assert!(scrub(&store).unwrap().is_clean());
    }

    #[test]
    fn scrub_catches_name_header_mismatch() {
        let tmp = TempDir::new("scrub-mismatch");
        let store = build(&tmp, 2, 10);
        // Copy iteration 0's full under iteration 7's name: valid CRC,
        // lying name.
        let bytes = store.read_raw(0, true).unwrap();
        std::fs::write(store.path_of(7, true), bytes).unwrap();
        let report = scrub(&store).unwrap();
        assert_eq!(report.quarantined.len(), 1);
        assert_eq!(report.quarantined[0].entry.iteration, 7);
        assert!(report.quarantined[0].reason.contains("claims iteration 0"));
    }

    #[test]
    fn repair_reanchors_after_mid_chain_damage() {
        let tmp = TempDir::new("repair-anchor");
        // Fulls at 0, 4, 8; deltas to 10.
        let store = build(&tmp, 11, 4);
        inject(&store.path_of(9, false), Fault::BitFlip { offset: 50, mask: 0x02 }).unwrap();
        let report = repair(&store).unwrap();
        assert_eq!(report.scrub.quarantined.len(), 1);
        // Iteration 10's file was intact but orphaned by losing 9.
        let lost: Vec<u64> = report.lost.iter().map(|l| l.iteration).collect();
        assert_eq!(lost, vec![10]);
        // Newest restartable was 8 — already a full, so nothing written.
        assert_eq!(report.anchored_at, Some(8));
        assert!(!report.wrote_full);
        // The store is fully restartable again.
        assert!(verify_store(&store).unwrap().iter().all(|h| h.restartable));
    }

    #[test]
    fn repair_materializes_a_full_when_the_anchor_was_a_delta() {
        let tmp = TempDir::new("repair-full");
        // Fulls at 0, 4, 8; deltas to 10; newest restartable (10) is a
        // delta, so repair must write a full there.
        let store = build(&tmp, 11, 4);
        inject(&store.path_of(2, false), Fault::Truncate { keep: 8 }).unwrap();
        let report = repair(&store).unwrap();
        assert_eq!(report.anchored_at, Some(10));
        assert!(report.wrote_full);
        // Iterations 2 and 3 rode on the truncated delta.
        let lost: Vec<u64> = report.lost.iter().map(|l| l.iteration).collect();
        assert_eq!(lost, vec![3]);
        assert!(std::fs::metadata(store.path_of(10, true)).unwrap().is_file());
        assert!(verify_store(&store).unwrap().iter().all(|h| h.restartable));
        // The materialized full carries only the chain's bounded error:
        // restarting at 10 is now a zero-delta read of it.
        let r = RestartEngine::new(store.clone()).restart_at(10).unwrap();
        assert_eq!(r.base_iteration, 10);
        assert_eq!(r.deltas_applied, 0);
    }

    #[test]
    fn repair_of_unrecoverable_store_reports_no_anchor() {
        let tmp = TempDir::new("repair-empty");
        let store = build(&tmp, 3, 10);
        // Destroy the only full: nothing restarts.
        inject(&store.path_of(0, true), Fault::Truncate { keep: 4 }).unwrap();
        let report = repair(&store).unwrap();
        assert_eq!(report.anchored_at, None);
        assert!(!report.wrote_full);
        assert_eq!(report.lost.len(), 2, "both orphan deltas recorded");
        assert!(store.list().unwrap().is_empty());
    }

    #[test]
    fn repair_of_healthy_store_is_a_noop() {
        let tmp = TempDir::new("repair-noop");
        let store = build(&tmp, 9, 4);
        let report = repair(&store).unwrap();
        assert!(report.scrub.is_clean());
        assert!(report.lost.is_empty());
        // Fulls land at 0, 4, 8, so the anchor is already a full.
        assert_eq!(report.anchored_at, Some(8));
        assert!(!report.wrote_full);
        assert_eq!(store.list().unwrap().len(), 9);
    }
}
