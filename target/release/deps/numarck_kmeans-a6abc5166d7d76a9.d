/root/repo/target/release/deps/numarck_kmeans-a6abc5166d7d76a9.d: crates/numarck-kmeans/src/lib.rs crates/numarck-kmeans/src/general.rs crates/numarck-kmeans/src/init.rs crates/numarck-kmeans/src/lloyd1d.rs

/root/repo/target/release/deps/libnumarck_kmeans-a6abc5166d7d76a9.rlib: crates/numarck-kmeans/src/lib.rs crates/numarck-kmeans/src/general.rs crates/numarck-kmeans/src/init.rs crates/numarck-kmeans/src/lloyd1d.rs

/root/repo/target/release/deps/libnumarck_kmeans-a6abc5166d7d76a9.rmeta: crates/numarck-kmeans/src/lib.rs crates/numarck-kmeans/src/general.rs crates/numarck-kmeans/src/init.rs crates/numarck-kmeans/src/lloyd1d.rs

crates/numarck-kmeans/src/lib.rs:
crates/numarck-kmeans/src/general.rs:
crates/numarck-kmeans/src/init.rs:
crates/numarck-kmeans/src/lloyd1d.rs:
