/root/repo/target/debug/deps/fig5-db745479f5389eb7.d: crates/numarck-bench/src/bin/fig5.rs

/root/repo/target/debug/deps/libfig5-db745479f5389eb7.rmeta: crates/numarck-bench/src/bin/fig5.rs

crates/numarck-bench/src/bin/fig5.rs:
