/root/repo/target/debug/deps/numarck-6c7cdba618774041.d: crates/numarck-cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libnumarck-6c7cdba618774041.rmeta: crates/numarck-cli/src/main.rs Cargo.toml

crates/numarck-cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
