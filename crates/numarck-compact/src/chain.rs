//! Chain-shape inspection and the restart cost model.
//!
//! A [`ChainView`] is a cheap structural snapshot of a checkpoint
//! store: which iterations hold fulls, which hold deltas, how many
//! bytes each file occupies, and how far back each delta's base state
//! lives (its span). Resolution mirrors
//! [`numarck_checkpoint::restart::RestartEngine`]'s backward walk but
//! works from headers alone — no payload decoding — so policy decisions
//! and the `numarck chain` inspector stay O(files).
//!
//! The [`CostModel`] turns a resolved chain into a modeled restart
//! latency: the base full's decode cost (proportional to its size) plus
//! a per-delta replay cost, seeded from the measured
//! `numarck_decode_ns` timings in the global registry when available.

use std::collections::BTreeMap;
use std::io;

use numarck_checkpoint::store::CheckpointStore;

/// One iteration's stored artefacts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChainEntry {
    /// Size of the `.full` file, if one exists.
    pub full_bytes: Option<u64>,
    /// Size of the `.delta` file, if one exists.
    pub delta_bytes: Option<u64>,
    /// The delta's span (≥ 1; legacy files normalise 0 → 1). 0 when no
    /// delta is stored.
    pub delta_span: u64,
}

/// How a chain walk from one iteration resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolvedChain {
    /// The base full checkpoint the walk ended at.
    pub base: u64,
    /// Size of the base full, bytes.
    pub base_bytes: u64,
    /// Delta iterations on the path, newest first.
    pub path: Vec<u64>,
}

/// Structural snapshot of a store's chain shape.
#[derive(Debug, Clone, Default)]
pub struct ChainView {
    entries: BTreeMap<u64, ChainEntry>,
}

impl ChainView {
    /// Snapshot `store`. Reads every file's bytes once (for sizes and
    /// header spans) but decodes no payloads; unparseable files keep a
    /// span of 1 — resolution through them then fails the same way
    /// restart would.
    pub fn load(store: &CheckpointStore) -> io::Result<Self> {
        let mut entries: BTreeMap<u64, ChainEntry> = BTreeMap::new();
        for e in store.list()? {
            let bytes = match store.read_raw(e.iteration, e.is_full) {
                Ok(b) => b,
                // Racing a concurrent delete is not an error: the file
                // simply is not part of the snapshot.
                Err(err) if err.kind() == io::ErrorKind::NotFound => continue,
                Err(err) => return Err(err),
            };
            let entry = entries.entry(e.iteration).or_default();
            if e.is_full {
                entry.full_bytes = Some(bytes.len() as u64);
            } else {
                entry.delta_bytes = Some(bytes.len() as u64);
                entry.delta_span = peek_span(&bytes);
            }
        }
        Ok(Self { entries })
    }

    /// True when the store holds no checkpoint files at all.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterations with at least one stored file, ascending.
    pub fn iterations(&self) -> impl Iterator<Item = u64> + '_ {
        self.entries.keys().copied()
    }

    /// The entry at `iteration`, if any file is stored there.
    pub fn entry(&self, iteration: u64) -> Option<&ChainEntry> {
        self.entries.get(&iteration)
    }

    /// The newest stored iteration.
    pub fn latest(&self) -> Option<u64> {
        self.entries.keys().next_back().copied()
    }

    /// Iterations holding a full checkpoint, ascending.
    pub fn fulls(&self) -> Vec<u64> {
        self.entries
            .iter()
            .filter(|(_, e)| e.full_bytes.is_some())
            .map(|(&it, _)| it)
            .collect()
    }

    /// Resolve the restart chain for `target` by the same backward walk
    /// the restart engine performs: a full ends the walk, a delta steps
    /// back by its span. `None` when the chain is broken (a needed
    /// iteration has no stored file, or a span points past iteration 0).
    pub fn resolve(&self, target: u64) -> Option<ResolvedChain> {
        let mut path = Vec::new();
        let mut cur = target;
        loop {
            let entry = self.entries.get(&cur)?;
            if let Some(bytes) = entry.full_bytes {
                return Some(ResolvedChain { base: cur, base_bytes: bytes, path });
            }
            entry.delta_bytes?;
            let span = entry.delta_span.max(1);
            if span > cur {
                return None;
            }
            path.push(cur);
            cur -= span;
        }
    }

    /// Maximal runs `[a, b]` of consecutive iterations that hold only a
    /// plain span-1 delta (no full) — the units compaction merges.
    pub fn plain_runs(&self) -> Vec<(u64, u64)> {
        let mut runs = Vec::new();
        let mut cur: Option<(u64, u64)> = None;
        for (&it, e) in &self.entries {
            let plain = e.full_bytes.is_none() && e.delta_bytes.is_some() && e.delta_span <= 1;
            match (plain, cur) {
                (true, Some((a, b))) if it == b + 1 => cur = Some((a, it)),
                (true, _) => {
                    if let Some(run) = cur.take() {
                        runs.push(run);
                    }
                    cur = Some((it, it));
                }
                (false, _) => {
                    if let Some(run) = cur.take() {
                        runs.push(run);
                    }
                }
            }
        }
        if let Some(run) = cur {
            runs.push(run);
        }
        runs
    }

    /// Modeled restart cost for `target`, or `None` when its chain is
    /// broken.
    pub fn restart_cost_ns(&self, target: u64, model: &CostModel) -> Option<u64> {
        let chain = self.resolve(target)?;
        Some(model.cost_ns(chain.base_bytes, chain.path.len() as u64))
    }

    /// The worst modeled restart cost over every *resolvable* stored
    /// iteration. Broken chains are excluded — they cannot restart at
    /// any cost.
    pub fn worst_case_cost_ns(&self, model: &CostModel) -> Option<u64> {
        self.entries
            .keys()
            .filter_map(|&it| self.restart_cost_ns(it, model))
            .max()
    }

    /// Total bytes stored across all checkpoint files.
    pub fn total_bytes(&self) -> u64 {
        self.entries
            .values()
            .map(|e| e.full_bytes.unwrap_or(0) + e.delta_bytes.unwrap_or(0))
            .sum()
    }
}

/// Read a delta's span straight out of the container header (bytes
/// [20..24) of the NCKP layout), without parsing the payload. Anything
/// unrecognisable reads as a plain span-1 delta.
pub fn peek_span(bytes: &[u8]) -> u64 {
    if bytes.len() >= 24 && bytes[0..4] == *b"NCKP" && bytes[6] == 1 {
        u64::from(u32::from_le_bytes(bytes[20..24].try_into().expect("4 bytes"))).max(1)
    } else {
        1
    }
}

/// Linear restart-latency model: full-decode cost proportional to the
/// base full's size, plus a fixed replay cost per delta file on the
/// path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Nanoseconds to read + decode one byte of a full checkpoint.
    pub full_ns_per_byte: f64,
    /// Nanoseconds to decode + apply one delta file (all variables).
    pub delta_replay_ns: f64,
}

impl CostModel {
    /// Fallback per-delta replay cost when no decode timing has been
    /// measured yet (≈ the decode of a mid-sized block).
    pub const DEFAULT_DELTA_REPLAY_NS: f64 = 500_000.0;
    /// Fallback full-decode throughput, ≈ 1 GB/s.
    pub const DEFAULT_FULL_NS_PER_BYTE: f64 = 1.0;

    /// Seed the model from the measured `numarck_decode_ns` histogram
    /// in the global registry: mean per-block decode time × the number
    /// of blocks a delta holds (`vars_per_delta`). Falls back to
    /// defaults before any decode has been observed.
    pub fn from_obs(vars_per_delta: usize) -> Self {
        let h = numarck_obs::Registry::global().histogram("numarck_decode_ns");
        let per_block = if h.count() > 0 {
            h.sum() as f64 / h.count() as f64
        } else {
            Self::DEFAULT_DELTA_REPLAY_NS
        };
        Self {
            full_ns_per_byte: Self::DEFAULT_FULL_NS_PER_BYTE,
            delta_replay_ns: per_block * vars_per_delta.max(1) as f64,
        }
    }

    /// Modeled restart latency for a chain: `base_bytes` of full decode
    /// plus `hops` delta replays.
    pub fn cost_ns(&self, base_bytes: u64, hops: u64) -> u64 {
        (base_bytes as f64 * self.full_ns_per_byte + hops as f64 * self.delta_replay_ns) as u64
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            full_ns_per_byte: Self::DEFAULT_FULL_NS_PER_BYTE,
            delta_replay_ns: Self::DEFAULT_DELTA_REPLAY_NS,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(entries: &[(u64, Option<u64>, Option<(u64, u64)>)]) -> ChainView {
        // (iteration, full bytes, (delta bytes, span))
        let mut map = BTreeMap::new();
        for &(it, full, delta) in entries {
            map.insert(
                it,
                ChainEntry {
                    full_bytes: full,
                    delta_bytes: delta.map(|(b, _)| b),
                    delta_span: delta.map(|(_, s)| s).unwrap_or(0),
                },
            );
        }
        ChainView { entries: map }
    }

    #[test]
    fn resolve_walks_spans_and_prefers_fulls() {
        let v = view(&[
            (0, Some(1000), None),
            (3, None, Some((100, 3))),
            (4, None, Some((100, 1))),
            (5, Some(1000), Some((100, 1))),
            (6, None, Some((100, 1))),
        ]);
        let r = v.resolve(4).unwrap();
        assert_eq!((r.base, r.path.clone()), (0, vec![4, 3]));
        // The full at 5 wins over its own delta.
        assert_eq!(v.resolve(5).unwrap().path, Vec::<u64>::new());
        assert_eq!(v.resolve(6).unwrap().base, 5);
    }

    #[test]
    fn broken_chains_resolve_to_none() {
        let v = view(&[(0, Some(1000), None), (2, None, Some((100, 1)))]);
        assert!(v.resolve(2).is_none(), "hole at 1");
        assert!(v.resolve(9).is_none(), "nothing stored");
        let over = view(&[(2, None, Some((100, 5)))]);
        assert!(over.resolve(2).is_none(), "span past iteration 0");
    }

    #[test]
    fn plain_runs_split_on_fulls_and_merged_deltas() {
        let v = view(&[
            (0, Some(1000), None),
            (1, None, Some((100, 1))),
            (2, None, Some((100, 1))),
            (3, None, Some((100, 3))), // merged: breaks the run
            (4, None, Some((100, 1))),
            (5, Some(1000), Some((100, 1))), // full: breaks the run
            (6, None, Some((100, 1))),
            (7, None, Some((100, 1))),
        ]);
        assert_eq!(v.plain_runs(), vec![(1, 2), (4, 4), (6, 7)]);
    }

    #[test]
    fn cost_model_is_linear_in_hops_and_base_bytes() {
        let m = CostModel { full_ns_per_byte: 2.0, delta_replay_ns: 10.0 };
        assert_eq!(m.cost_ns(100, 0), 200);
        assert_eq!(m.cost_ns(100, 5), 250);
        let v = view(&[
            (0, Some(100), None),
            (1, None, Some((10, 1))),
            (2, None, Some((10, 1))),
        ]);
        assert_eq!(v.restart_cost_ns(2, &m), Some(220));
        assert_eq!(v.worst_case_cost_ns(&m), Some(220));
    }

    #[test]
    fn peek_span_tolerates_garbage() {
        assert_eq!(peek_span(b"junk"), 1);
        assert_eq!(peek_span(&[]), 1);
        let mut hdr = Vec::new();
        hdr.extend_from_slice(b"NCKP");
        hdr.extend_from_slice(&1u16.to_le_bytes());
        hdr.push(1); // delta
        hdr.push(0);
        hdr.extend_from_slice(&9u64.to_le_bytes());
        hdr.extend_from_slice(&1u32.to_le_bytes());
        hdr.extend_from_slice(&7u32.to_le_bytes());
        assert_eq!(peek_span(&hdr), 7);
        hdr[6] = 0; // full: span slot ignored
        assert_eq!(peek_span(&hdr), 1);
    }
}
