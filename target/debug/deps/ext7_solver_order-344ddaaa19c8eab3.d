/root/repo/target/debug/deps/ext7_solver_order-344ddaaa19c8eab3.d: crates/numarck-bench/src/bin/ext7_solver_order.rs

/root/repo/target/debug/deps/libext7_solver_order-344ddaaa19c8eab3.rmeta: crates/numarck-bench/src/bin/ext7_solver_order.rs

crates/numarck-bench/src/bin/ext7_solver_order.rs:
