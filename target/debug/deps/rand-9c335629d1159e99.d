/root/repo/target/debug/deps/rand-9c335629d1159e99.d: .stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-9c335629d1159e99.rlib: .stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-9c335629d1159e99.rmeta: .stubs/rand/src/lib.rs

.stubs/rand/src/lib.rs:
