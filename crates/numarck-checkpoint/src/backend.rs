//! Storage backends: the syscall boundary of the checkpoint store.
//!
//! [`CheckpointStore`](crate::store::CheckpointStore) performs every
//! filesystem operation through a [`StorageBackend`], so recovery tests
//! can inject faults *at the I/O layer* — ENOSPC on the Nth write, a
//! write torn at byte K, bit rot on a read — instead of mutating files
//! after the fact. [`FsBackend`] is the real thing; [`FaultyBackend`]
//! wraps it with a deterministic [`FaultSchedule`].

use std::collections::BTreeMap;
use std::fs;
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::mmapio::AlignedBytes;

/// The set of filesystem operations the checkpoint store needs.
///
/// Implementations must be usable from `&self` (the store is cloned
/// freely), hence the interior counters in [`FaultyBackend`].
pub trait StorageBackend: std::fmt::Debug + Send + Sync {
    /// Create `dir` and any missing parents.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;

    /// Create (truncating) `path`, write all of `bytes`, fsync the file.
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Append `bytes` to `path` (creating it if needed) and fsync — the
    /// write-ahead journal's primitive. Unlike [`Self::write`] this must
    /// never truncate existing content.
    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Atomically rename `from` to `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Fsync the directory itself so a completed rename survives a
    /// crash (a rename is only durable once its directory entry is).
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;

    /// Read the entire file at `path`.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Read the file at `path` as [`AlignedBytes`], mapping it into
    /// memory when the backend can. The default routes through
    /// [`Self::read`] into an aligned copy — deliberately, so wrappers
    /// (fault injection, replication quorums) keep intercepting mapped
    /// reads exactly like plain ones. Only backends that own a real
    /// file (e.g. [`FsBackend`]) should override this with `mmap`.
    fn map(&self, path: &Path) -> io::Result<AlignedBytes> {
        self.read(path).map(AlignedBytes::from_vec)
    }

    /// Delete the file at `path`.
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// File names (not paths) of the entries in `dir`.
    fn list_dir(&self, dir: &Path) -> io::Result<Vec<String>>;

    /// Downcast hook: `Some` when this backend (or the backend a
    /// pass-through wrapper delegates to) is a
    /// [`ReplicatedBackend`](crate::replicated::ReplicatedBackend), so
    /// layered tooling (scrub's cross-replica repair pass) can reach the
    /// per-replica API behind the trait-object boundary.
    fn as_replicated(&self) -> Option<&crate::replicated::ReplicatedBackend> {
        None
    }
}

/// The real filesystem.
#[derive(Debug, Clone, Copy, Default)]
pub struct FsBackend;

impl StorageBackend for FsBackend {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut f = fs::File::create(path)?;
        f.write_all(bytes)?;
        f.sync_all()
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut f = fs::OpenOptions::new().create(true).append(true).open(path)?;
        f.write_all(bytes)?;
        f.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        // Directories can be opened and fsynced on unix; elsewhere the
        // rename discipline alone is the best available.
        #[cfg(unix)]
        {
            fs::File::open(dir)?.sync_all()
        }
        #[cfg(not(unix))]
        {
            let _ = dir;
            Ok(())
        }
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn map(&self, path: &Path) -> io::Result<AlignedBytes> {
        AlignedBytes::map_file(path)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn list_dir(&self, dir: &Path) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in fs::read_dir(dir)? {
            if let Some(name) = entry?.file_name().to_str() {
                names.push(name.to_string());
            }
        }
        Ok(names)
    }
}

/// A way for a backend write to go wrong.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// Fail with this error kind; nothing reaches the disk.
    Error(io::ErrorKind),
    /// Write only the first `keep` bytes, then report failure — the
    /// partial temp file is left behind for a retry to overwrite.
    Torn {
        /// Bytes that reach the disk before the failure.
        keep: usize,
    },
    /// Write only the first `keep` bytes but *report success*: a torn
    /// write below the rename discipline. The resulting file survives
    /// the rename and is only caught later by CRC validation (scrub).
    SilentTorn {
        /// Bytes that reach the disk.
        keep: usize,
    },
}

/// A way for a backend read to go wrong.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadFault {
    /// Fail with this error kind.
    Error(io::ErrorKind),
    /// XOR `mask` into the byte at `offset` (clamped to the file) of the
    /// data returned — bit rot between the platters and the caller.
    BitRot {
        /// Byte offset to damage.
        offset: usize,
        /// Mask XORed into that byte (0 is a no-op).
        mask: u8,
    },
}

/// Deterministic fault plan: which write/read operation (1-based, in
/// order of issue) misbehaves, and how.
#[derive(Debug, Clone, Default)]
pub struct FaultSchedule {
    write_faults: BTreeMap<u64, WriteFault>,
    read_faults: BTreeMap<u64, ReadFault>,
    kill_after_ops: Option<u64>,
}

impl FaultSchedule {
    /// An empty schedule (behaves exactly like [`FsBackend`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Make the `nth` write (1-based) suffer `fault`.
    pub fn fail_write(mut self, nth: u64, fault: WriteFault) -> Self {
        self.write_faults.insert(nth, fault);
        self
    }

    /// Make the `nth` read (1-based) suffer `fault`.
    pub fn fail_read(mut self, nth: u64, fault: ReadFault) -> Self {
        self.read_faults.insert(nth, fault);
        self
    }

    /// Fail-stop mode: let the first `ops` backend operations (of any
    /// kind) complete, then abort the whole process at the entry of the
    /// next one — equivalent to SIGKILL at that instruction boundary.
    /// `ops = 0` dies before the very first operation.
    pub fn die_after_ops(mut self, ops: u64) -> Self {
        self.kill_after_ops = Some(ops);
        self
    }
}

/// A [`StorageBackend`] wrapper that misbehaves on schedule.
///
/// Only `write`/`append` and `read` suffer scheduled faults — they carry
/// the payload bytes, which is where ENOSPC, torn writes and bit rot
/// live. Metadata operations pass straight through, but *every*
/// operation counts toward [`FaultSchedule::die_after_ops`], so a kill
/// sweep covers rename/sync/list boundaries too.
#[derive(Debug)]
pub struct FaultyBackend {
    inner: Arc<dyn StorageBackend>,
    schedule: FaultSchedule,
    writes: AtomicU64,
    reads: AtomicU64,
    ops: AtomicU64,
}

impl Default for FaultyBackend {
    fn default() -> Self {
        Self::new(FaultSchedule::default())
    }
}

impl FaultyBackend {
    /// Backend over the real filesystem following `schedule`.
    pub fn new(schedule: FaultSchedule) -> Self {
        Self::wrapping(Arc::new(FsBackend), schedule)
    }

    /// Wrap an arbitrary backend (e.g. a
    /// [`ReplicatedBackend`](crate::replicated::ReplicatedBackend))
    /// with `schedule`.
    pub fn wrapping(inner: Arc<dyn StorageBackend>, schedule: FaultSchedule) -> Self {
        Self {
            inner,
            schedule,
            writes: AtomicU64::new(0),
            reads: AtomicU64::new(0),
            ops: AtomicU64::new(0),
        }
    }

    /// Number of write operations issued so far.
    pub fn writes_attempted(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// Number of read operations issued so far.
    pub fn reads_attempted(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    /// Count one operation toward the fail-stop allowance, aborting the
    /// process (fail-stop, not unwind — destructors must not run, just
    /// as they would not under SIGKILL) once it is exhausted.
    fn count_op(&self) {
        let nth = self.ops.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(allowed) = self.schedule.kill_after_ops {
            if nth > allowed {
                eprintln!("faulty backend: fail-stop after {allowed} ops");
                std::process::abort();
            }
        }
    }
}

fn injected(kind: io::ErrorKind, what: &str) -> io::Error {
    io::Error::new(kind, format!("injected fault: {what}"))
}

impl StorageBackend for FaultyBackend {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        self.count_op();
        self.inner.create_dir_all(dir)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.count_op();
        let nth = self.writes.fetch_add(1, Ordering::Relaxed) + 1;
        match self.schedule.write_faults.get(&nth) {
            None => self.inner.write(path, bytes),
            Some(WriteFault::Error(kind)) => Err(injected(*kind, "write error")),
            Some(WriteFault::Torn { keep }) => {
                self.inner.write(path, &bytes[..(*keep).min(bytes.len())])?;
                Err(injected(io::ErrorKind::Other, "torn write"))
            }
            Some(WriteFault::SilentTorn { keep }) => {
                self.inner.write(path, &bytes[..(*keep).min(bytes.len())])
            }
        }
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.count_op();
        let nth = self.writes.fetch_add(1, Ordering::Relaxed) + 1;
        match self.schedule.write_faults.get(&nth) {
            None => self.inner.append(path, bytes),
            Some(WriteFault::Error(kind)) => Err(injected(*kind, "append error")),
            Some(WriteFault::Torn { keep }) => {
                self.inner.append(path, &bytes[..(*keep).min(bytes.len())])?;
                Err(injected(io::ErrorKind::Other, "torn append"))
            }
            Some(WriteFault::SilentTorn { keep }) => {
                self.inner.append(path, &bytes[..(*keep).min(bytes.len())])
            }
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.count_op();
        self.inner.rename(from, to)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        self.count_op();
        self.inner.sync_dir(dir)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.count_op();
        let nth = self.reads.fetch_add(1, Ordering::Relaxed) + 1;
        match self.schedule.read_faults.get(&nth) {
            None => self.inner.read(path),
            Some(ReadFault::Error(kind)) => Err(injected(*kind, "read error")),
            Some(ReadFault::BitRot { offset, mask }) => {
                let mut data = self.inner.read(path)?;
                if !data.is_empty() {
                    let o = (*offset).min(data.len() - 1);
                    data[o] ^= mask;
                }
                Ok(data)
            }
        }
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.count_op();
        self.inner.remove_file(path)
    }

    fn list_dir(&self, dir: &Path) -> io::Result<Vec<String>> {
        self.count_op();
        self.inner.list_dir(dir)
    }

    fn as_replicated(&self) -> Option<&crate::replicated::ReplicatedBackend> {
        self.inner.as_replicated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::testutil::TempDir;

    #[test]
    fn fs_backend_roundtrip_and_listing() {
        let tmp = TempDir::new("backend-fs");
        let b = FsBackend;
        let p = tmp.0.join("a.bin");
        b.write(&p, b"hello").unwrap();
        assert_eq!(b.read(&p).unwrap(), b"hello");
        let q = tmp.0.join("b.bin");
        b.rename(&p, &q).unwrap();
        b.sync_dir(&tmp.0).unwrap();
        let mut names = b.list_dir(&tmp.0).unwrap();
        names.sort();
        assert_eq!(names, vec!["b.bin"]);
        b.remove_file(&q).unwrap();
        assert!(b.list_dir(&tmp.0).unwrap().is_empty());
    }

    #[test]
    fn faulty_backend_fails_the_scheduled_write_only() {
        let tmp = TempDir::new("backend-nth");
        let b = FaultyBackend::new(
            FaultSchedule::new().fail_write(2, WriteFault::Error(io::ErrorKind::StorageFull)),
        );
        let p = tmp.0.join("x");
        b.write(&p, b"one").unwrap();
        let err = b.write(&p, b"two").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        // Third attempt (the retry) succeeds.
        b.write(&p, b"two").unwrap();
        assert_eq!(b.read(&p).unwrap(), b"two");
        assert_eq!(b.writes_attempted(), 3);
    }

    #[test]
    fn torn_write_leaves_partial_bytes_and_errors() {
        let tmp = TempDir::new("backend-torn");
        let b = FaultyBackend::new(FaultSchedule::new().fail_write(1, WriteFault::Torn { keep: 3 }));
        let p = tmp.0.join("x");
        assert!(b.write(&p, b"abcdef").is_err());
        assert_eq!(b.read(&p).unwrap(), b"abc");
    }

    #[test]
    fn silent_torn_write_reports_success() {
        let tmp = TempDir::new("backend-silent");
        let b = FaultyBackend::new(
            FaultSchedule::new().fail_write(1, WriteFault::SilentTorn { keep: 2 }),
        );
        let p = tmp.0.join("x");
        b.write(&p, b"abcdef").unwrap();
        assert_eq!(b.read(&p).unwrap(), b"ab");
    }

    #[test]
    fn append_accumulates_without_truncating() {
        let tmp = TempDir::new("backend-append");
        let b = FsBackend;
        let p = tmp.0.join("log");
        b.append(&p, b"one").unwrap();
        b.append(&p, b"two").unwrap();
        assert_eq!(b.read(&p).unwrap(), b"onetwo");
        // A faulty wrapper counts appends as write-class operations.
        let f = FaultyBackend::new(
            FaultSchedule::new().fail_write(2, WriteFault::Error(io::ErrorKind::StorageFull)),
        );
        f.append(&p, b"a").unwrap();
        let err = f.append(&p, b"b").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        assert_eq!(f.read(&p).unwrap(), b"onetwoa");
    }

    #[test]
    fn wrapping_delegates_to_inner_backend() {
        let tmp = TempDir::new("backend-wrap");
        let inner: Arc<dyn StorageBackend> = Arc::new(FsBackend);
        let b = FaultyBackend::wrapping(
            inner,
            FaultSchedule::new().fail_write(1, WriteFault::Error(io::ErrorKind::StorageFull)),
        );
        let p = tmp.0.join("x");
        assert!(b.write(&p, b"nope").is_err());
        b.write(&p, b"yes").unwrap();
        assert_eq!(b.read(&p).unwrap(), b"yes");
    }

    #[test]
    fn map_is_real_on_fs_and_faultable_through_wrappers() {
        let tmp = TempDir::new("backend-map");
        let p = tmp.0.join("x");
        FsBackend.write(&p, b"abcdefgh").unwrap();
        let mapped = FsBackend.map(&p).unwrap();
        assert_eq!(&*mapped, b"abcdefgh");
        #[cfg(unix)]
        assert!(mapped.is_mapped());

        // The default map() routes through read(), so scheduled read
        // faults hit mapped reads too — zero-copy must not become a
        // fault-injection blind spot.
        let b = FaultyBackend::new(
            FaultSchedule::new().fail_read(1, ReadFault::BitRot { offset: 0, mask: 0xFF }),
        );
        let rotted = b.map(&p).unwrap();
        assert!(!rotted.is_mapped());
        assert_eq!(rotted[0], b'a' ^ 0xFF);
        assert_eq!(&b.map(&p).unwrap()[..], b"abcdefgh");
    }

    #[test]
    fn bit_rot_damages_one_read_not_the_file() {
        let tmp = TempDir::new("backend-rot");
        let b = FaultyBackend::new(
            FaultSchedule::new().fail_read(1, ReadFault::BitRot { offset: 1, mask: 0xFF }),
        );
        let p = tmp.0.join("x");
        b.write(&p, b"abc").unwrap();
        let rotted = b.read(&p).unwrap();
        assert_eq!(rotted, vec![b'a', b'b' ^ 0xFF, b'c']);
        // The file on disk is intact; the next read is clean.
        assert_eq!(b.read(&p).unwrap(), b"abc");
    }
}
