/root/repo/target/debug/deps/fig1-08030f985e1dfd68.d: crates/numarck-bench/src/bin/fig1.rs

/root/repo/target/debug/deps/fig1-08030f985e1dfd68: crates/numarck-bench/src/bin/fig1.rs

crates/numarck-bench/src/bin/fig1.rs:
