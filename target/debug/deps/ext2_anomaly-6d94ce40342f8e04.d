/root/repo/target/debug/deps/ext2_anomaly-6d94ce40342f8e04.d: crates/numarck-bench/src/bin/ext2_anomaly.rs

/root/repo/target/debug/deps/ext2_anomaly-6d94ce40342f8e04: crates/numarck-bench/src/bin/ext2_anomaly.rs

crates/numarck-bench/src/bin/ext2_anomaly.rs:
