/root/repo/target/debug/deps/fault_recovery-c4db71afdd62691c.d: tests/fault_recovery.rs

/root/repo/target/debug/deps/fault_recovery-c4db71afdd62691c: tests/fault_recovery.rs

tests/fault_recovery.rs:
