//! Restart-path cost: replaying a chain of compressed deltas on top of a
//! full checkpoint (the paper's §II-D recovery procedure). Restart time
//! scales linearly with the distance from the last full checkpoint —
//! the trade-off the full-checkpoint interval policy balances.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use numarck::{Config, DeltaChain, Strategy};
use numarck_par::rng::Xoshiro256PlusPlus;

fn build_chain(n: usize, deltas: usize) -> DeltaChain {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(9);
    let base: Vec<f64> = (0..n).map(|_| 5.0 + rng.uniform(0.0, 1.0)).collect();
    let config = Config::new(8, 0.001, Strategy::Clustering).expect("valid");
    let mut chain = DeltaChain::new(base, config);
    let mut state = chain.base().to_vec();
    for _ in 0..deltas {
        for v in state.iter_mut() {
            *v *= 1.0 + rng.normal_with(0.0, 0.002);
        }
        chain.append(&state).expect("finite");
    }
    chain
}

fn bench_replay(c: &mut Criterion) {
    let n = 1 << 18;
    let chain = build_chain(n, 8);
    let mut group = c.benchmark_group("restart_replay");
    group.throughput(Throughput::Bytes((n * 8) as u64));
    group.sample_size(10);
    for depth in [1usize, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &depth| {
            b.iter(|| chain.reconstruct(depth).expect("in range"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_replay);
criterion_main!(benches);
