//! Empty stand-in: the workspace declares `rand` but no code imports it.
