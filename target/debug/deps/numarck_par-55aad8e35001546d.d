/root/repo/target/debug/deps/numarck_par-55aad8e35001546d.d: crates/numarck-par/src/lib.rs crates/numarck-par/src/chunk.rs crates/numarck-par/src/histogram.rs crates/numarck-par/src/pool.rs crates/numarck-par/src/quantile.rs crates/numarck-par/src/reduce.rs crates/numarck-par/src/rng.rs crates/numarck-par/src/scan.rs

/root/repo/target/debug/deps/libnumarck_par-55aad8e35001546d.rmeta: crates/numarck-par/src/lib.rs crates/numarck-par/src/chunk.rs crates/numarck-par/src/histogram.rs crates/numarck-par/src/pool.rs crates/numarck-par/src/quantile.rs crates/numarck-par/src/reduce.rs crates/numarck-par/src/rng.rs crates/numarck-par/src/scan.rs

crates/numarck-par/src/lib.rs:
crates/numarck-par/src/chunk.rs:
crates/numarck-par/src/histogram.rs:
crates/numarck-par/src/pool.rs:
crates/numarck-par/src/quantile.rs:
crates/numarck-par/src/reduce.rs:
crates/numarck-par/src/rng.rs:
crates/numarck-par/src/scan.rs:
