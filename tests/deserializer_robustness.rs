//! Robustness: no deserializer in the workspace may panic on arbitrary
//! input — corrupt checkpoint bytes must always surface as `Err`, never
//! as a crash (a checkpointing system that aborts while *reading* a
//! damaged checkpoint defeats its own purpose).

use proptest::prelude::*;

use numarck_checkpoint::{AlignedBytes, CheckpointFile, CheckpointKind, MappedCheckpoint};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn numarck_block_from_bytes_never_panics(
        bytes in proptest::collection::vec(any::<u8>(), 0..2000)
    ) {
        let _ = numarck::serialize::from_bytes(&bytes);
    }

    #[test]
    fn checkpoint_file_from_bytes_never_panics(
        bytes in proptest::collection::vec(any::<u8>(), 0..2000)
    ) {
        let _ = CheckpointFile::from_bytes(&bytes);
    }

    #[test]
    fn fpc_decompress_never_panics(
        bytes in proptest::collection::vec(any::<u8>(), 0..2000)
    ) {
        let _ = numarck::fpc::decompress(&bytes);
    }

    #[test]
    fn mutated_valid_block_never_panics_or_lies(
        flips in proptest::collection::vec((0usize..4096, 0u8..8), 1..8)
    ) {
        // Start from a VALID serialized block and flip arbitrary bits:
        // the reader must either reject it or return a block (bit flips
        // that only touch the exact-value payload... are caught by the
        // CRC, so in practice: reject).
        let prev: Vec<f64> = (0..500).map(|i| 1.0 + (i % 9) as f64).collect();
        let curr: Vec<f64> = prev.iter().map(|v| v * 1.01).collect();
        let config =
            numarck::Config::new(8, 0.001, numarck::Strategy::Clustering).expect("valid");
        let (block, _) =
            numarck::Compressor::new(config).compress(&prev, &curr).expect("finite");
        let mut bytes = numarck::serialize::to_bytes(&block).to_vec();
        for (pos, bit) in flips {
            let p = pos % bytes.len();
            bytes[p] ^= 1 << bit;
        }
        // A flip pair that cancels out reproduces the original; any
        // accepted result must decode cleanly.
        if let Ok(b) = numarck::serialize::from_bytes(&bytes) {
            let _ = numarck::decode::reconstruct(&prev, &b);
        }
    }

    #[test]
    fn huffman_from_lengths_never_panics(
        lengths in proptest::collection::vec(0u8..64, 0..300)
    ) {
        // Arbitrary code-length tables: invalid ones (Kraft violation,
        // overlong codes) must come back as Err, not a crash.
        let _ = numarck::huffman::HuffmanCode::from_lengths(lengths);
    }

    #[test]
    fn huffman_decode_never_panics_on_arbitrary_streams(
        lengths in proptest::collection::vec(0u8..16, 1..40),
        words in proptest::collection::vec(any::<u64>(), 0..64),
        len_bits in 0usize..8192,
        count in 0usize..2000,
    ) {
        // Only structurally valid codes can reach the decoder in real
        // use, so pair a valid code with a completely arbitrary bit
        // stream (including len_bits lying past the buffer).
        if let Ok(code) = numarck::huffman::HuffmanCode::from_lengths(lengths) {
            let encoded = numarck::huffman::HuffmanEncoded { code, words, len_bits, count };
            let _ = numarck::huffman::decode_symbols(&encoded);
        }
    }

    #[test]
    fn mutated_huffman_block_never_panics(
        flips in proptest::collection::vec((0usize..4096, 0u8..8), 1..8)
    ) {
        let prev: Vec<f64> = (0..500).map(|i| 2.0 + (i % 7) as f64).collect();
        let curr: Vec<f64> = prev.iter().map(|v| v * 1.004).collect();
        let config =
            numarck::Config::new(8, 0.001, numarck::Strategy::Clustering).expect("valid");
        let (block, _) =
            numarck::Compressor::new(config).compress(&prev, &curr).expect("finite");
        let mut bytes = numarck::serialize::to_bytes_with(
            &block,
            numarck::serialize::IndexEncoding::Huffman,
        )
        .to_vec();
        for (pos, bit) in flips {
            let p = pos % bytes.len();
            bytes[p] ^= 1 << bit;
        }
        if let Ok(b) = numarck::serialize::from_bytes(&bytes) {
            let _ = numarck::decode::reconstruct(&prev, &b);
        }
    }
}

// ---------------------------------------------------------------------------
// Container v2: adversarial inputs beyond random corruption.
//
// Random bit flips die on the whole-file CRC; a deliberate attacker (or
// a buggy writer) re-seals the outer checksums after lying somewhere
// structural. These tests mutate real v2 files and then *recompute every
// CRC*, so the only remaining defence is the layout validation itself.
// ---------------------------------------------------------------------------

/// Header/directory surgery kit for the v2 container. Offsets mirror
/// `format/v2.rs`; the tests are allowed to know the layout — that is
/// the point.
mod v2lab {
    pub use numarck::serialize::crc32;

    pub fn rd_u32(b: &[u8], at: usize) -> u32 {
        u32::from_le_bytes(b[at..at + 4].try_into().unwrap())
    }
    pub fn rd_u64(b: &[u8], at: usize) -> u64 {
        u64::from_le_bytes(b[at..at + 8].try_into().unwrap())
    }
    pub fn wr_u32(b: &mut [u8], at: usize, v: u32) {
        b[at..at + 4].copy_from_slice(&v.to_le_bytes());
    }
    pub fn wr_u64(b: &mut [u8], at: usize, v: u64) {
        b[at..at + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// One directory row plus the byte positions of its mutable fields.
    pub struct DirRow {
        pub off: usize,
        pub len: usize,
        pub off_pos: usize,
        pub len_pos: usize,
        pub crc_pos: usize,
    }

    /// Walk the directory rows of a sealed v2 file.
    pub fn dir_rows(b: &[u8]) -> Vec<DirRow> {
        let count = rd_u32(b, 16) as usize;
        let mut p = rd_u64(b, 24) as usize;
        let mut rows = Vec::new();
        for _ in 0..count {
            let name_len = u16::from_le_bytes(b[p..p + 2].try_into().unwrap()) as usize;
            p += 2 + name_len;
            let row = DirRow {
                off: rd_u64(b, p) as usize,
                len: rd_u64(b, p + 8) as usize,
                off_pos: p,
                len_pos: p + 8,
                crc_pos: p + 16,
            };
            p += 20;
            rows.push(row);
        }
        rows
    }

    /// Recompute every checksum (section CRCs in the directory, dict
    /// CRC, dir CRC, header CRC, trailing file CRC) so a structural lie
    /// survives all integrity checks and must be caught by validation.
    pub fn reseal(b: &mut [u8]) {
        let n = b.len();
        let rows: Vec<(usize, usize, usize)> =
            dir_rows(b).iter().map(|r| (r.off, r.len, r.crc_pos)).collect();
        for (off, len, crc_pos) in rows {
            if off.saturating_add(len) <= n {
                let crc = crc32(&b[off..off + len]);
                wr_u32(b, crc_pos, crc);
            }
        }
        let dict_off = rd_u64(b, 32) as usize;
        let dict_entries = rd_u32(b, 40) as usize;
        if dict_off > 0 && dict_off + dict_entries * 8 <= n {
            let crc = crc32(&b[dict_off..dict_off + dict_entries * 8]);
            wr_u32(b, 44, crc);
        }
        let dir_off = rd_u64(b, 24) as usize;
        if dir_off < n - 4 {
            let crc = crc32(&b[dir_off..n - 4]);
            wr_u32(b, 48, crc);
        }
        let crc = crc32(&b[..52]);
        wr_u32(b, 52, crc);
        let crc = crc32(&b[..n - 4]);
        wr_u32(b, n - 4, crc);
    }
}

fn v2_sample_delta() -> Vec<u8> {
    // Two variables with *different* value shapes so their tables
    // differ and each section carries explicit dictionary references
    // (not the whole-dict shortcut).
    let cfg = numarck::Config::new(8, 0.001, numarck::Strategy::Clustering).expect("valid");
    let mut blocks = std::collections::BTreeMap::new();
    for (name, base, step) in [("dens", 1.0f64, 1.003f64), ("temp", 40.0, 1.011)] {
        let prev: Vec<f64> = (0..400).map(|i| base + (i % 13) as f64 * 0.5).collect();
        let curr: Vec<f64> =
            prev.iter().enumerate().map(|(i, v)| v * step.powi((i % 3) as i32)).collect();
        let (block, _) = numarck::encode::encode(&prev, &curr, &cfg).expect("finite");
        blocks.insert(name.to_string(), block);
    }
    CheckpointFile::new(7, CheckpointKind::Delta(blocks)).to_bytes()
}

fn v2_sample_full() -> Vec<u8> {
    let mut vars = std::collections::BTreeMap::new();
    vars.insert("rho".to_string(), (0..300).map(|i| 1.0 + (i % 9) as f64).collect());
    CheckpointFile::new(3, CheckpointKind::Full(vars)).to_bytes()
}

/// Both readers must reject the mutated bytes; the mapped reader sees
/// them through the same aligned buffer the backend hands it.
fn assert_both_readers_reject(bytes: &[u8], what: &str) {
    assert!(CheckpointFile::from_bytes(bytes).is_err(), "owned reader accepted {what}");
    assert!(
        MappedCheckpoint::parse(AlignedBytes::from_vec(bytes.to_vec())).is_err(),
        "mapped reader accepted {what}"
    );
}

#[test]
fn v2_every_prefix_truncation_is_rejected() {
    for (what, bytes) in [("full", v2_sample_full()), ("delta", v2_sample_delta())] {
        for cut in 0..bytes.len() {
            assert_both_readers_reject(&bytes[..cut], &format!("v2 {what} truncated to {cut}"));
        }
    }
}

#[test]
fn v2_lying_directory_offsets_are_rejected() {
    let base = v2_sample_delta();
    let rows = v2lab::dir_rows(&base);
    for (i, row) in rows.iter().enumerate() {
        // Point the section elsewhere: at the header, at the next
        // 64-byte slot, or past the end of the file.
        for lie in [0usize, row.off + 64, base.len()] {
            let mut b = base.clone();
            v2lab::wr_u64(&mut b, row.off_pos, lie as u64);
            v2lab::reseal(&mut b);
            assert_both_readers_reject(&b, &format!("dir row {i} offset lying as {lie}"));
        }
    }
}

#[test]
fn v2_lying_directory_lengths_are_rejected() {
    let base = v2_sample_delta();
    let rows = v2lab::dir_rows(&base);
    for (i, row) in rows.iter().enumerate() {
        // Off-by-one lies land inside the same 64-byte alignment slot,
        // so the layout tiling still closes: the mapped reader is
        // allowed to accept the directory and must instead fail when
        // the section's internal geometry is checked at decode.
        for lie in [0usize, row.len - 1, row.len + 1, row.len + 64, base.len()] {
            let mut b = base.clone();
            v2lab::wr_u64(&mut b, row.len_pos, lie as u64);
            v2lab::reseal(&mut b);
            assert_rejected_or_undecodable(&b, &format!("dir row {i} length lying as {lie}"));
        }
    }
}

#[test]
fn v2_overlapping_sections_are_rejected() {
    // Alias the second section onto the first: two directory rows
    // claiming the same bytes. The exact-tiling rule (every section
    // starts where the previous one, padded, ended) makes any overlap —
    // even this self-consistent-looking one — unrepresentable.
    let base = v2_sample_delta();
    let rows = v2lab::dir_rows(&base);
    assert!(rows.len() >= 2, "need two sections to overlap");
    let mut b = base.clone();
    v2lab::wr_u64(&mut b, rows[1].off_pos, rows[0].off as u64);
    v2lab::wr_u64(&mut b, rows[1].len_pos, rows[0].len as u64);
    v2lab::reseal(&mut b);
    assert_both_readers_reject(&b, "aliased overlapping sections");
}

/// Bogus dictionary references live inside a section, which the mapped
/// reader validates lazily: its `parse` may accept the layout, but the
/// tampered section must then fail to decode.
fn assert_rejected_or_undecodable(bytes: &[u8], what: &str) {
    assert!(CheckpointFile::from_bytes(bytes).is_err(), "owned reader accepted {what}");
    if let Ok(m) = MappedCheckpoint::parse(AlignedBytes::from_vec(bytes.to_vec())) {
        let prev: Vec<f64> = (0..400).map(|i| 1.0 + (i % 13) as f64 * 0.5).collect();
        let names: Vec<String> = m.variable_names().map(str::to_string).collect();
        assert!(
            names.iter().any(|n| m.decode_variable(n, &prev).is_err()),
            "mapped reader decoded {what} cleanly"
        );
    }
}

#[test]
fn v2_bogus_dictionary_references_are_rejected() {
    let base = v2_sample_delta();
    let dict_entries = v2lab::rd_u32(&base, 40) as usize;
    let rows = v2lab::dir_rows(&base);
    // Find a section carrying explicit dictionary references.
    let (sec_off, table_len) = rows
        .iter()
        .find_map(|r| {
            let flags = base[r.off];
            let table_len = v2lab::rd_u32(&base, r.off + 4) as usize;
            (flags & 0x02 == 0 && table_len >= 2).then_some((r.off, table_len))
        })
        .expect("sample delta must have a section with explicit dict refs");
    let refs_at = |i: usize| sec_off + 64 + 4 * i;

    // Reference past the end of the dictionary.
    let mut b = base.clone();
    v2lab::wr_u32(&mut b, refs_at(table_len - 1), dict_entries as u32 + 5);
    v2lab::reseal(&mut b);
    assert_rejected_or_undecodable(&b, "dict reference past the dictionary");

    // References out of order (table must stay strictly ascending).
    let mut b = base.clone();
    let first = v2lab::rd_u32(&b, refs_at(0));
    let second = v2lab::rd_u32(&b, refs_at(1));
    v2lab::wr_u32(&mut b, refs_at(0), second);
    v2lab::wr_u32(&mut b, refs_at(1), first);
    v2lab::reseal(&mut b);
    assert_rejected_or_undecodable(&b, "non-ascending dict references");

    // Duplicate reference (would collapse two table entries into one).
    let mut b = base.clone();
    let first = v2lab::rd_u32(&b, refs_at(0));
    v2lab::wr_u32(&mut b, refs_at(1), first);
    v2lab::reseal(&mut b);
    assert_rejected_or_undecodable(&b, "duplicate dict references");
}

#[test]
fn v2_resealed_unmutated_file_still_parses() {
    // Guard on the lab itself: reseal() of an untouched file must be a
    // no-op, proving the rejections above come from the lies, not from
    // a miscomputed checksum in the test kit.
    let mut b = v2_sample_delta();
    let orig = b.clone();
    v2lab::reseal(&mut b);
    assert_eq!(orig, b, "reseal changed a valid file's checksums");
    assert!(CheckpointFile::from_bytes(&b).is_ok());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Round-trip over both container versions: any full checkpoint
    /// (arbitrary finite payloads, arbitrary names) survives
    /// serialise → parse bit-exactly, in v1 and v2, through both
    /// readers.
    #[test]
    fn checkpoint_roundtrips_bit_exactly_in_both_versions(
        entries in proptest::collection::vec(
            (
                0usize..6,
                proptest::collection::vec(
                    prop_oneof![
                        -1e12f64..1e12,
                        Just(0.0),
                        Just(-0.0),
                        Just(f64::MIN_POSITIVE),
                    ],
                    0..80,
                ),
            ),
            0..4,
        ),
        iteration in 0u64..u64::MAX / 2,
    ) {
        const NAMES: [&str; 6] = ["dens", "ener", "p", "temp_k", "velx", "z9"];
        let vars: std::collections::BTreeMap<String, Vec<f64>> =
            entries.into_iter().map(|(i, data)| (NAMES[i].to_string(), data)).collect();
        let file = CheckpointFile::new(iteration, CheckpointKind::Full(vars));
        for bytes in [file.to_bytes(), file.to_bytes_v1()] {
            let back = CheckpointFile::from_bytes(&bytes).expect("own bytes parse");
            prop_assert_eq!(&back.iteration, &file.iteration);
            let (CheckpointKind::Full(a), CheckpointKind::Full(b)) = (&file.kind, &back.kind)
            else { panic!("kind changed") };
            prop_assert_eq!(a.len(), b.len());
            for ((n1, d1), (n2, d2)) in a.iter().zip(b) {
                prop_assert_eq!(n1, n2);
                let bits1: Vec<u64> = d1.iter().map(|v| v.to_bits()).collect();
                let bits2: Vec<u64> = d2.iter().map(|v| v.to_bits()).collect();
                prop_assert_eq!(bits1, bits2);
            }
        }
        // The zero-copy reader agrees with the owned one on v2 bytes.
        let mapped = MappedCheckpoint::parse(AlignedBytes::from_vec(file.to_bytes()))
            .expect("own bytes parse mapped");
        let CheckpointKind::Full(a) = &file.kind else { unreachable!() };
        let m = mapped.full_variables().expect("full decode");
        prop_assert_eq!(a.len(), m.len());
        for ((n1, d1), (n2, d2)) in a.iter().zip(&m) {
            prop_assert_eq!(n1, n2);
            let bits1: Vec<u64> = d1.iter().map(|v| v.to_bits()).collect();
            let bits2: Vec<u64> = d2.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(bits1, bits2);
        }
    }

    /// Bit flips against a sealed v2 delta: the readers reject or — when
    /// a flip pair cancels — decode cleanly. Never a panic, never a lie.
    #[test]
    fn v2_mutated_delta_never_panics(
        flips in proptest::collection::vec((0usize..8192, 0u8..8), 1..10)
    ) {
        let mut bytes = v2_sample_delta();
        for (pos, bit) in flips {
            let p = pos % bytes.len();
            bytes[p] ^= 1 << bit;
        }
        let prev: Vec<f64> = (0..400).map(|i| 1.0 + (i % 13) as f64 * 0.5).collect();
        if let Ok(file) = CheckpointFile::from_bytes(&bytes) {
            if let CheckpointKind::Delta(blocks) = &file.kind {
                for block in blocks.values() {
                    let _ = numarck::decode::reconstruct(&prev, block);
                }
            }
        }
        if let Ok(m) = MappedCheckpoint::parse(AlignedBytes::from_vec(bytes)) {
            for name in m.variable_names() {
                let _ = m.decode_variable(name, &prev);
            }
        }
    }
}

#[test]
fn truncations_of_valid_blobs_are_all_rejected() {
    let prev: Vec<f64> = (0..300).map(|i| 1.0 + (i % 11) as f64).collect();
    let curr: Vec<f64> = prev.iter().map(|v| v * 1.002).collect();
    let config = numarck::Config::new(9, 0.001, numarck::Strategy::LogScale).expect("valid");
    let (block, _) = numarck::Compressor::new(config).compress(&prev, &curr).expect("finite");
    for encoding in [
        numarck::serialize::IndexEncoding::FixedWidth,
        numarck::serialize::IndexEncoding::Huffman,
    ] {
        let bytes = numarck::serialize::to_bytes_with(&block, encoding);
        for cut in 0..bytes.len() {
            assert!(
                numarck::serialize::from_bytes(&bytes[..cut]).is_err(),
                "{encoding:?}: truncation to {cut} accepted"
            );
        }
    }
}
