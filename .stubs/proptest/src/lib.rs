//! Deterministic mini property-testing stand-in for the `proptest`
//! crate, covering the subset of its API the workspace uses: the
//! `proptest!` macro, `prop_assert!`/`prop_assert_eq!`, `prop_oneof!`,
//! `Just`, `any::<T>()`, numeric-range strategies, tuple strategies and
//! `proptest::collection::vec`.
//!
//! Cases are generated from a SplitMix64 stream seeded by the test name,
//! so runs are reproducible; there is no shrinking — a failing case
//! reports its case index and message.

pub mod test_runner {
    /// Error produced by `prop_assert!` and friends inside a case body.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            Self(msg.into())
        }
    }

    /// Runner configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// SplitMix64 value stream.
    #[derive(Debug, Clone)]
    pub struct Rng {
        state: u64,
    }

    impl Rng {
        /// Deterministic per-(test, case) stream: seed from an FNV-1a
        /// hash of the test name mixed with the case index.
        pub fn for_case(name: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            Self { state: h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)) }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    use crate::test_runner::Rng;

    /// A value generator. Object-safe so `prop_oneof!` can box arms.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut Rng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut Rng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut Rng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut Rng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut Rng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut Rng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128) % span;
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut Rng) -> $t {
                    self.start + (rng.next_f64() as $t) * (self.end - self.start)
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut Rng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! { (A) (A, B) (A, B, C) (A, B, C, D) (A, B, C, D, E) }

    /// `any::<T>()` support: full-domain generation for primitives.
    pub trait Arbitrary {
        fn arbitrary(rng: &mut Rng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut Rng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut Rng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut Rng) -> f64 {
            f64::from_bits(rng.next_u64())
        }
    }

    /// Strategy form of [`Arbitrary`]; built by [`crate::prelude::any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Self(std::marker::PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut Rng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct OneOf<V> {
        arms: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> OneOf<V> {
        pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Self { arms }
        }
    }

    impl<V> Strategy for OneOf<V> {
        type Value = V;
        fn generate(&self, rng: &mut Rng) -> V {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    /// Helper with inferable types for the `prop_oneof!` expansion.
    pub fn one_of<V>(arms: Vec<Box<dyn Strategy<Value = V>>>) -> OneOf<V> {
        OneOf::new(arms)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::Rng;

    /// `Vec` strategy with a length drawn from `len` and elements from
    /// `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut Rng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

pub mod prelude {
    pub use crate::strategy::{Any, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Full-domain strategy for a primitive type.
    pub fn any<T: crate::strategy::Arbitrary>() -> Any<T> {
        Any::default()
    }
}

/// Property-test harness macro: runs each body `cases` times over
/// deterministically generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @run ($cfg); $($rest)* }
    };
    (@run ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                for case in 0..config.cases {
                    let mut rng =
                        $crate::test_runner::Rng::for_case(stringify!($name), case);
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("proptest case {case} of {}: {e}", stringify!($name));
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @run ($crate::test_runner::Config::default()); $($rest)* }
    };
}

/// Assert inside a proptest body; failure fails the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} != {:?}", a, b),
            ));
        }
    }};
}

/// Inequality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a != b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} == {:?}", a, b),
            ));
        }
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::one_of(vec![
            $(::std::boxed::Box::new($arm) as _),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..10, y in -5i32..5, f in -1.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_in_range(v in crate::collection::vec(any::<u8>(), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn oneof_picks_an_arm(x in prop_oneof![Just(1u8), Just(2u8), 5u8..7]) {
            prop_assert!(x == 1 || x == 2 || x == 5 || x == 6);
        }

        #[test]
        fn tuples_generate_pairwise((a, b) in (0u32..4, 10usize..20)) {
            prop_assert!(a < 4 && (10..20).contains(&b));
        }
    }

    #[test]
    fn same_name_same_case_is_deterministic() {
        let mut r1 = crate::test_runner::Rng::for_case("t", 3);
        let mut r2 = crate::test_runner::Rng::for_case("t", 3);
        assert_eq!(r1.next_u64(), r2.next_u64());
    }
}
