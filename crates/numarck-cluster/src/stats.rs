//! Fan-out `StatsReply` aggregation.
//!
//! A cluster `Stats` request fans out to every up shard and the replies
//! are folded into one `StatsReply` a stock client decodes unchanged.
//! Aggregation rules:
//!
//! * **Counters** (`accepted`, `served`, `iterations_ingested`, ...)
//!   are summed. They count *shard-side* work, so with replication
//!   factor R an ingested iteration appears R times in the sum —
//!   that is the true amount of work the cluster did, and per-shard
//!   gauges on the router's own `/metrics` endpoint give the
//!   de-duplicated view.
//! * **Sessions** are merged by *name* (each replica shard reports the
//!   session under its own local id): `files` and `latest_restartable`
//!   take the max across replicas — the best any single replica can
//!   serve — and the reported id is the gateway id when the router
//!   knows the name, so a follow-up `Restart { session }` from the same
//!   client works.
//! * **Latency summaries** merge by metric name: counts and sums add;
//!   p50/p90/p99 take the max (a lossy but conservative merge — true
//!   cluster-wide quantiles would need the raw buckets on the wire).
//! * `queue_depth` sums; `draining` reflects the *router*, since that
//!   is what the asking client is connected to.

use std::collections::BTreeMap;

use numarck_serve::wire::{LatencyStat, SessionStat, StatsReply};

/// Fold per-shard replies into one cluster-level reply.
///
/// `gateway_id` maps a session name to the id the router handed its
/// clients, for sessions the router opened; unknown names (sessions
/// opened by talking to a shard directly) keep the first shard-local id
/// seen.
pub fn aggregate(
    replies: &[StatsReply],
    gateway_id: impl Fn(&str) -> Option<u64>,
    draining: bool,
) -> StatsReply {
    let mut out = StatsReply { draining, ..StatsReply::default() };
    let mut sessions: BTreeMap<String, SessionStat> = BTreeMap::new();
    let mut latencies: BTreeMap<String, LatencyStat> = BTreeMap::new();
    for r in replies {
        out.accepted += r.accepted;
        out.served += r.served;
        out.busy_rejected += r.busy_rejected;
        out.iterations_ingested += r.iterations_ingested;
        out.bytes_ingested += r.bytes_ingested;
        out.write_retries += r.write_retries;
        out.queue_depth += r.queue_depth;
        out.journal_replayed += r.journal_replayed;
        out.journal_rolled_back += r.journal_rolled_back;
        out.recovery_repairs += r.recovery_repairs;
        out.idle_disconnects += r.idle_disconnects;
        out.replica_repairs += r.replica_repairs;
        out.replica_quorum_failures += r.replica_quorum_failures;
        for s in &r.sessions {
            let entry = sessions.entry(s.name.clone()).or_insert_with(|| SessionStat {
                id: gateway_id(&s.name).unwrap_or(s.id),
                name: s.name.clone(),
                files: 0,
                latest_restartable: None,
            });
            entry.files = entry.files.max(s.files);
            entry.latest_restartable = match (entry.latest_restartable, s.latest_restartable) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            };
        }
        for l in &r.latencies {
            let entry = latencies
                .entry(l.name.clone())
                .or_insert_with(|| LatencyStat { name: l.name.clone(), ..Default::default() });
            entry.summary.count += l.summary.count;
            entry.summary.sum += l.summary.sum;
            entry.summary.p50 = entry.summary.p50.max(l.summary.p50);
            entry.summary.p90 = entry.summary.p90.max(l.summary.p90);
            entry.summary.p99 = entry.summary.p99.max(l.summary.p99);
        }
    }
    out.sessions = sessions.into_values().collect();
    out.sessions.sort_by_key(|s| s.id);
    out.latencies = latencies.into_values().collect();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use numarck_obs::HistogramSummary;

    fn shard_reply(id: u64, name: &str, latest: Option<u64>, ingested: u64) -> StatsReply {
        StatsReply {
            accepted: 1,
            served: 2,
            iterations_ingested: ingested,
            sessions: vec![SessionStat {
                id,
                name: name.into(),
                files: latest.map_or(0, |l| l as u32 + 1),
                latest_restartable: latest,
            }],
            latencies: vec![LatencyStat {
                name: "nsrv_request_put_ns".into(),
                summary: HistogramSummary { count: ingested, sum: ingested * 10, p50: 5, p90: 9, p99: 12 },
            }],
            ..Default::default()
        }
    }

    #[test]
    fn counters_sum_and_sessions_merge_by_name() {
        // The same session replicated on two shards under different
        // local ids; one replica is one iteration behind.
        let a = shard_reply(1, "ha", Some(7), 8);
        let b = shard_reply(3, "ha", Some(6), 7);
        let merged = aggregate(&[a, b], |name| (name == "ha").then_some(42), false);
        assert_eq!(merged.iterations_ingested, 15, "shard-side work sums");
        assert_eq!(merged.accepted, 2);
        assert_eq!(merged.sessions.len(), 1, "merged by name, not id");
        let s = &merged.sessions[0];
        assert_eq!(s.id, 42, "gateway id wins");
        assert_eq!(s.latest_restartable, Some(7), "best replica");
        assert_eq!(s.files, 8);
        assert_eq!(merged.latencies.len(), 1);
        assert_eq!(merged.latencies[0].summary.count, 15);
        assert_eq!(merged.latencies[0].summary.sum, 150);
        assert_eq!(merged.latencies[0].summary.p99, 12, "max quantile");
        assert!(!merged.draining);
    }

    #[test]
    fn unknown_sessions_keep_their_shard_id() {
        let a = shard_reply(5, "direct", Some(1), 2);
        let merged = aggregate(&[a], |_| None, true);
        assert_eq!(merged.sessions[0].id, 5);
        assert!(merged.draining, "router drain state, not shard");
    }

    #[test]
    fn empty_fanout_is_all_defaults() {
        let merged = aggregate(&[], |_| None, false);
        assert_eq!(merged, StatsReply::default());
    }
}
