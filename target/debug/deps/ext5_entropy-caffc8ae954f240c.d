/root/repo/target/debug/deps/ext5_entropy-caffc8ae954f240c.d: crates/numarck-bench/src/bin/ext5_entropy.rs

/root/repo/target/debug/deps/ext5_entropy-caffc8ae954f240c: crates/numarck-bench/src/bin/ext5_entropy.rs

crates/numarck-bench/src/bin/ext5_entropy.rs:
