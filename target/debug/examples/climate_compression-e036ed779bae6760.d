/root/repo/target/debug/examples/climate_compression-e036ed779bae6760.d: examples/climate_compression.rs

/root/repo/target/debug/examples/libclimate_compression-e036ed779bae6760.rmeta: examples/climate_compression.rs

examples/climate_compression.rs:
