//! Extension experiment 2: soft-error detection via the change
//! distribution (the paper's §V: "identifying erroneous calculations due
//! to soft errors or hardware errors").
//!
//! Protocol: take a clean FLASH transition, inject single bit flips at
//! every bit position into a sample of points, and measure which flips
//! the change-ratio outlier detector catches — plus the false-positive
//! rate on clean data.

use flash_sim::FlashVar;
use numarck::anomaly::{detect, AnomalyConfig};
use numarck_bench::data::{flash_sequence, FlashConfig};
use numarck_bench::report::{print_table, write_csv};
use numarck_bench::RESULTS_DIR;
use numarck_par::rng::Xoshiro256PlusPlus;

fn main() {
    let seq = flash_sequence(FlashConfig::default(), FlashVar::Pres, 2);
    let (prev, curr) = (&seq[0], &seq[1]);
    let config = AnomalyConfig::default();

    // False positives on the clean transition.
    let clean = detect(prev, curr, &config).expect("lengths match");
    println!(
        "clean transition: {} points, {} false positives ({:.4}%)",
        clean.num_points,
        clean.anomalies.len(),
        clean.anomalies.len() as f64 / clean.num_points as f64 * 100.0
    );

    // Detection rate per flipped bit position (sampled points).
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(2024);
    let trials_per_bit = 20usize;
    let mut table = vec![vec![
        "bit".to_string(),
        "region".to_string(),
        "detected".to_string(),
        "rate %".to_string(),
    ]];
    let mut csv =
        vec![vec!["bit".to_string(), "detected".to_string(), "trials".to_string()]];
    for bit in (0..64).step_by(4).chain([51usize, 62, 63]) {
        let mut detected = 0usize;
        for _ in 0..trials_per_bit {
            let victim = rng.below(curr.len());
            let mut corrupted = curr.clone();
            corrupted[victim] = f64::from_bits(corrupted[victim].to_bits() ^ (1u64 << bit));
            let report = detect(prev, &corrupted, &config).expect("lengths match");
            if report.anomalies.iter().any(|a| a.index == victim) {
                detected += 1;
            }
        }
        let region = match bit {
            63 => "sign",
            52..=62 => "exponent",
            _ => "mantissa",
        };
        table.push(vec![
            bit.to_string(),
            region.to_string(),
            format!("{detected}/{trials_per_bit}"),
            format!("{:.0}", detected as f64 / trials_per_bit as f64 * 100.0),
        ]);
        csv.push(vec![bit.to_string(), detected.to_string(), trials_per_bit.to_string()]);
    }
    println!("\nExtension 2: single-bit-flip detection rate by bit position (pres)");
    print_table(&table);
    println!("\n(expected: exponent/sign flips ~100% detected; high-mantissa flips mostly");
    println!(" detected; low-mantissa flips are sub-tolerance by definition and invisible —");
    println!(" they are also harmless at NUMARCK's operating tolerances)");
    match write_csv(RESULTS_DIR, "ext2_anomaly_detection", &csv) {
        Ok(p) => println!("wrote {p}"),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
