/root/repo/target/debug/deps/fault_recovery-08cfbe27e9ef5c37.d: tests/fault_recovery.rs

/root/repo/target/debug/deps/libfault_recovery-08cfbe27e9ef5c37.rmeta: tests/fault_recovery.rs

tests/fault_recovery.rs:
