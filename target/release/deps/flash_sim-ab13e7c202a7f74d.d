/root/repo/target/release/deps/flash_sim-ab13e7c202a7f74d.d: crates/flash-sim/src/lib.rs crates/flash-sim/src/block.rs crates/flash-sim/src/dim3/mod.rs crates/flash-sim/src/dim3/block3.rs crates/flash-sim/src/dim3/euler3.rs crates/flash-sim/src/dim3/mesh3.rs crates/flash-sim/src/dim3/sim3.rs crates/flash-sim/src/eos.rs crates/flash-sim/src/euler.rs crates/flash-sim/src/mesh.rs crates/flash-sim/src/problems.rs crates/flash-sim/src/sim.rs crates/flash-sim/src/vars.rs

/root/repo/target/release/deps/libflash_sim-ab13e7c202a7f74d.rlib: crates/flash-sim/src/lib.rs crates/flash-sim/src/block.rs crates/flash-sim/src/dim3/mod.rs crates/flash-sim/src/dim3/block3.rs crates/flash-sim/src/dim3/euler3.rs crates/flash-sim/src/dim3/mesh3.rs crates/flash-sim/src/dim3/sim3.rs crates/flash-sim/src/eos.rs crates/flash-sim/src/euler.rs crates/flash-sim/src/mesh.rs crates/flash-sim/src/problems.rs crates/flash-sim/src/sim.rs crates/flash-sim/src/vars.rs

/root/repo/target/release/deps/libflash_sim-ab13e7c202a7f74d.rmeta: crates/flash-sim/src/lib.rs crates/flash-sim/src/block.rs crates/flash-sim/src/dim3/mod.rs crates/flash-sim/src/dim3/block3.rs crates/flash-sim/src/dim3/euler3.rs crates/flash-sim/src/dim3/mesh3.rs crates/flash-sim/src/dim3/sim3.rs crates/flash-sim/src/eos.rs crates/flash-sim/src/euler.rs crates/flash-sim/src/mesh.rs crates/flash-sim/src/problems.rs crates/flash-sim/src/sim.rs crates/flash-sim/src/vars.rs

crates/flash-sim/src/lib.rs:
crates/flash-sim/src/block.rs:
crates/flash-sim/src/dim3/mod.rs:
crates/flash-sim/src/dim3/block3.rs:
crates/flash-sim/src/dim3/euler3.rs:
crates/flash-sim/src/dim3/mesh3.rs:
crates/flash-sim/src/dim3/sim3.rs:
crates/flash-sim/src/eos.rs:
crates/flash-sim/src/euler.rs:
crates/flash-sim/src/mesh.rs:
crates/flash-sim/src/problems.rs:
crates/flash-sim/src/sim.rs:
crates/flash-sim/src/vars.rs:
