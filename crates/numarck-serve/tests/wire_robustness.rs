//! Adversarial wire-protocol tests: frames that are truncated, carry
//! oversized length fields, have bits flipped, or are plain garbage
//! must always come back as typed decode errors — never a panic, hang,
//! or huge speculative allocation.
//!
//! Two layers: deterministic sweeps driven by a SplitMix64 PRNG (always
//! run, reproducible), plus `proptest` generative versions in
//! `mod properties` following the workspace convention.

use std::io;

use numarck_checkpoint::VariableSet;
use numarck_serve::wire::{
    read_frame, write_frame, Frame, LatencyStat, Request, Response, SessionStat, StatsReply,
    HEADER_LEN, MAX_PAYLOAD,
};

/// SplitMix64: deterministic stream for the corruption sweeps.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = self.0;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }
}

fn sample_vars() -> VariableSet {
    let mut vars = VariableSet::new();
    vars.insert("u".into(), (0..32).map(|i| i as f64 * 0.25).collect());
    vars
}

/// A corpus of encoded frames covering every request and response
/// opcode with non-trivial payloads.
fn corpus() -> Vec<Vec<u8>> {
    let requests = vec![
        Request::OpenSession { name: "sess".into() },
        Request::PutIterations { session: 1, iterations: vec![(0, sample_vars())] },
        Request::Restart { session: 1, at_or_before: 9 },
        Request::Scrub { session: 1, repair: true },
        Request::Stats,
        Request::CloseSession { session: 1 },
        Request::Shutdown,
    ];
    let responses = vec![
        Response::SessionOpened { session: 4 },
        Response::RestartData {
            achieved: 3,
            base: 0,
            deltas_applied: 3,
            lost: 0,
            vars: sample_vars(),
        },
        Response::StatsData(Box::new(StatsReply {
            accepted: 2,
            served: 9,
            sessions: vec![SessionStat {
                id: 1,
                name: "s".into(),
                files: 3,
                latest_restartable: Some(2),
            }],
            queue_depth: 1,
            latencies: vec![LatencyStat { name: "nsrv_request_put_ns".into(), ..Default::default() }],
            ..Default::default()
        })),
    ];
    let mut frames = Vec::new();
    for req in requests {
        let mut buf = Vec::new();
        write_frame(&mut buf, req.opcode(), 1, &req.payload()).unwrap();
        frames.push(buf);
    }
    for resp in responses {
        let mut buf = Vec::new();
        write_frame(&mut buf, resp.opcode(), 1, &resp.payload()).unwrap();
        frames.push(buf);
    }
    frames
}

/// Full decode pipeline on raw bytes; the return value only matters in
/// that producing it must not panic.
fn try_decode(bytes: &[u8]) -> io::Result<Frame> {
    let frame = read_frame(&mut &bytes[..])?;
    // Try both directions; a frame is at most one of these, but the
    // robustness contract is per-decoder.
    let _ = Request::from_frame(&frame);
    let _ = Response::from_frame(&frame);
    Ok(frame)
}

/// Every prefix of every corpus frame fails with a typed error.
#[test]
fn truncated_frames_always_error() {
    for frame in corpus() {
        for cut in 0..frame.len() {
            assert!(
                read_frame(&mut &frame[..cut]).is_err(),
                "prefix of {cut}/{} bytes must not decode",
                frame.len()
            );
        }
    }
}

/// Flipping any single bit of a frame is caught (the CRC covers every
/// byte before it, and a flipped CRC no longer matches).
#[test]
fn single_bit_flips_are_always_caught() {
    for frame in corpus().into_iter().take(4) {
        for byte in 0..frame.len() {
            for bit in 0..8 {
                let mut bad = frame.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    try_decode(&bad).is_err(),
                    "flip bit {bit} of byte {byte}/{} survived",
                    frame.len()
                );
            }
        }
    }
}

/// Length fields beyond [`MAX_PAYLOAD`] are rejected before any
/// allocation; lengths within bounds but beyond the actual bytes fail
/// as truncation.
#[test]
fn oversized_and_lying_length_fields_error() {
    let mut rng = Rng(7);
    for _ in 0..64 {
        let mut frame = corpus()[0].clone();
        let lie = match rng.next() % 3 {
            0 => MAX_PAYLOAD + 1 + (rng.next() as u32 % 1024),
            1 => u32::MAX - (rng.next() as u32 % 16),
            _ => (frame.len() as u32) + 1 + (rng.next() as u32 % 4096),
        };
        frame[16..20].copy_from_slice(&lie.to_le_bytes());
        assert!(try_decode(&frame).is_err(), "length lie {lie} decoded");
    }
}

/// A structurally valid frame whose *payload* declares a huge element
/// count must fail cheaply (clamped pre-allocation) rather than
/// attempt a multi-gigabyte `Vec::with_capacity`.
#[test]
fn huge_declared_counts_fail_without_allocating() {
    // PutIterations: session id, then count = u32::MAX, then nothing.
    let mut payload = Vec::new();
    payload.extend_from_slice(&1u64.to_le_bytes());
    payload.extend_from_slice(&u32::MAX.to_le_bytes());
    let put = Request::PutIterations { session: 1, iterations: vec![] };
    let mut buf = Vec::new();
    write_frame(&mut buf, put.opcode(), 1, &payload).unwrap();
    let frame = read_frame(&mut buf.as_slice()).unwrap();
    assert!(Request::from_frame(&frame).is_err());

    // PutDone with a lying count behaves the same on the response side.
    let mut payload = Vec::new();
    payload.extend_from_slice(&u32::MAX.to_le_bytes());
    let done = Response::PutDone { outcomes: vec![] };
    let mut buf = Vec::new();
    write_frame(&mut buf, done.opcode(), 1, &payload).unwrap();
    let frame = read_frame(&mut buf.as_slice()).unwrap();
    assert!(Response::from_frame(&frame).is_err());
}

/// Random garbage never panics the decoder.
#[test]
fn random_garbage_never_panics() {
    let mut rng = Rng(42);
    for round in 0..256 {
        let len = (rng.next() % 96) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| rng.next() as u8).collect();
        let _ = try_decode(&bytes);
        // Same bytes under a valid header shell: random payloads against
        // every known opcode.
        let mut framed = Vec::new();
        let opcode = [0x01, 0x02, 0x03, 0x04, 0x05, 0x81, 0x82, 0x83, 0x85, 0xEE]
            [round % 10];
        write_frame(&mut framed, opcode, rng.next(), &bytes).unwrap();
        let frame = read_frame(&mut framed.as_slice()).unwrap();
        let _ = Request::from_frame(&frame);
        let _ = Response::from_frame(&frame);
    }
}

/// Header-length constant sanity: every corpus frame is at least a
/// header + CRC long, and decodes back to itself.
#[test]
fn corpus_roundtrips_cleanly() {
    for frame in corpus() {
        assert!(frame.len() >= HEADER_LEN + 4);
        assert!(try_decode(&frame).is_ok());
    }
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Arbitrary byte strings never panic the frame reader or the
        /// payload decoders.
        #[test]
        fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
            let _ = try_decode(&bytes);
        }

        /// Any single corruption (index, bit) of a valid frame errors.
        #[test]
        fn any_bit_flip_errors(seed in any::<u64>(), byte_sel in any::<usize>(), bit in 0usize..8) {
            let frames = corpus();
            let frame = &frames[(seed % frames.len() as u64) as usize];
            let mut bad = frame.clone();
            let idx = byte_sel % bad.len();
            bad[idx] ^= 1 << bit;
            prop_assert!(try_decode(&bad).is_err());
        }

        /// Any truncation of a valid frame errors.
        #[test]
        fn any_truncation_errors(seed in any::<u64>(), cut_sel in any::<usize>()) {
            let frames = corpus();
            let frame = &frames[(seed % frames.len() as u64) as usize];
            let cut = cut_sel % frame.len();
            prop_assert!(read_frame(&mut &frame[..cut]).is_err());
        }
    }
}
