//! Figure 1: a slice of climate `rlus` data — raw values of two
//! consecutive iterations, the per-point change percentage, and the
//! distribution of relative change.
//!
//! The paper's headline observation: the raw snapshots look like noise
//! (no repeated patterns), but the change-ratio distribution is tightly
//! concentrated — more than 75% of points change by less than 0.5%.

use climate_sim::ClimateVar;
use numarck_bench::data::climate_sequence;
use numarck_bench::report::{pct, print_table, write_csv};
use numarck_bench::RESULTS_DIR;

fn main() {
    let seq = climate_sequence(ClimateVar::Rlus, 2);
    let (a, b) = (&seq[0], &seq[1]);

    println!("Fig. 1 (A/B): first grid points of two consecutive rlus iterations");
    let mut rows = vec![vec![
        "point".to_string(),
        "iter 1".to_string(),
        "iter 2".to_string(),
        "change %".to_string(),
    ]];
    for j in 0..10 {
        rows.push(vec![
            j.to_string(),
            format!("{:.3}", a[j]),
            format!("{:.3}", b[j]),
            format!("{:+.4}", (b[j] - a[j]) / a[j] * 100.0),
        ]);
    }
    print_table(&rows);

    // (C)/(D): distribution of the relative change.
    let ratios: Vec<f64> = a.iter().zip(b).map(|(x, y)| (y - x) / x).collect();
    let below_half_pct =
        ratios.iter().filter(|r| r.abs() < 0.005).count() as f64 / ratios.len() as f64;
    println!();
    println!(
        "Fig. 1 (C): {} of {} points ({}%) change by less than 0.5%  (paper: >75%)",
        ratios.iter().filter(|r| r.abs() < 0.005).count(),
        ratios.len(),
        pct(below_half_pct, 1),
    );

    println!();
    println!("Fig. 1 (D): distribution of relative data change between the two iterations");
    let edges: Vec<f64> = (-10..=10).map(|i| i as f64 * 0.001).collect();
    let mut hist_rows =
        vec![vec!["bin lo %".to_string(), "bin hi %".to_string(), "count".to_string(), "".to_string()]];
    let mut csv = vec![vec!["bin_lo".to_string(), "bin_hi".to_string(), "count".to_string()]];
    for w in edges.windows(2) {
        let count = ratios.iter().filter(|&&r| r >= w[0] && r < w[1]).count();
        let bar_len = (count as f64 / ratios.len() as f64 * 200.0).round() as usize;
        hist_rows.push(vec![
            format!("{:+.1}", w[0] * 100.0),
            format!("{:+.1}", w[1] * 100.0),
            count.to_string(),
            "#".repeat(bar_len.min(60)),
        ]);
        csv.push(vec![w[0].to_string(), w[1].to_string(), count.to_string()]);
    }
    print_table(&hist_rows);
    match write_csv(RESULTS_DIR, "fig1_change_distribution", &csv) {
        Ok(p) => println!("\nwrote {p}"),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
    assert!(below_half_pct > 0.75, "calibration regression: rlus must match the paper's >75% claim");
}
