//! Sequential stand-in for the `rayon` crate.
//!
//! Provides the subset of rayon's API the workspace uses, executing
//! everything on the calling thread. Parallel iterator adapters wrap
//! standard iterators in [`iter::Par`], whose inherent methods shadow
//! the `std::iter::Iterator` combinators so rayon-specific signatures
//! (two-argument `reduce`, `partition_map`) resolve correctly while
//! terminal std combinators fall through to the `Iterator` impl.

use std::cell::Cell;

pub mod iter {
    /// rayon's two-sided enum, used by `partition_map`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Either<L, R> {
        /// Route to the first output collection.
        Left(L),
        /// Route to the second output collection.
        Right(R),
    }

    /// Sequential "parallel" iterator: a thin wrapper over a std
    /// iterator. Inherent methods shadow the identically-named
    /// `Iterator` combinators to keep the wrapper type through chains
    /// and to supply rayon-specific signatures.
    #[derive(Debug, Clone)]
    pub struct Par<I>(pub I);

    impl<I: Iterator> Iterator for Par<I> {
        type Item = I::Item;
        fn next(&mut self) -> Option<Self::Item> {
            self.0.next()
        }
        fn size_hint(&self) -> (usize, Option<usize>) {
            self.0.size_hint()
        }
    }

    impl<I: ExactSizeIterator> ExactSizeIterator for Par<I> {
        fn len(&self) -> usize {
            self.0.len()
        }
    }

    impl<I: Iterator> Par<I> {
        pub fn map<B, F: FnMut(I::Item) -> B>(self, f: F) -> Par<std::iter::Map<I, F>> {
            Par(self.0.map(f))
        }

        pub fn zip<U: IntoIterator>(self, other: U) -> Par<std::iter::Zip<I, U::IntoIter>> {
            Par(self.0.zip(other))
        }

        pub fn enumerate(self) -> Par<std::iter::Enumerate<I>> {
            Par(self.0.enumerate())
        }

        pub fn filter<P: FnMut(&I::Item) -> bool>(self, p: P) -> Par<std::iter::Filter<I, P>> {
            Par(self.0.filter(p))
        }

        pub fn filter_map<B, F: FnMut(I::Item) -> Option<B>>(
            self,
            f: F,
        ) -> Par<std::iter::FilterMap<I, F>> {
            Par(self.0.filter_map(f))
        }

        pub fn cloned<'a, T: 'a + Clone>(self) -> Par<std::iter::Cloned<I>>
        where
            I: Iterator<Item = &'a T>,
        {
            Par(self.0.cloned())
        }

        pub fn copied<'a, T: 'a + Copy>(self) -> Par<std::iter::Copied<I>>
        where
            I: Iterator<Item = &'a T>,
        {
            Par(self.0.copied())
        }

        /// rayon's reduce: identity-producing closure plus a fold op.
        pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
        where
            ID: Fn() -> I::Item,
            OP: FnMut(I::Item, I::Item) -> I::Item,
        {
            self.0.fold(identity(), op)
        }

        /// rayon's fold: per-"thread" identity plus a fold op; the
        /// sequential stand-in yields a single folded value.
        pub fn fold<T, ID, F>(self, identity: ID, fold_op: F) -> Par<std::iter::Once<T>>
        where
            ID: Fn() -> T,
            F: FnMut(T, I::Item) -> T,
        {
            Par(std::iter::once(self.0.fold(identity(), fold_op)))
        }

        /// Split items into two collections according to `f`.
        pub fn partition_map<A, B, L, R, F>(self, mut f: F) -> (A, B)
        where
            F: FnMut(I::Item) -> Either<L, R>,
            A: Default + Extend<L>,
            B: Default + Extend<R>,
        {
            let mut left = A::default();
            let mut right = B::default();
            for item in self.0 {
                match f(item) {
                    Either::Left(l) => left.extend(std::iter::once(l)),
                    Either::Right(r) => right.extend(std::iter::once(r)),
                }
            }
            (left, right)
        }

        pub fn with_min_len(self, _len: usize) -> Self {
            self
        }

        pub fn with_max_len(self, _len: usize) -> Self {
            self
        }
    }

    /// Entry points mirroring rayon's prelude traits.
    pub trait IntoParallelIterator {
        type Iter: Iterator<Item = Self::Item>;
        type Item;
        fn into_par_iter(self) -> Par<Self::Iter>;
    }

    impl<T: IntoIterator> IntoParallelIterator for T {
        type Iter = T::IntoIter;
        type Item = T::Item;
        fn into_par_iter(self) -> Par<T::IntoIter> {
            Par(self.into_iter())
        }
    }

    pub trait IntoParallelRefIterator<'a> {
        type Iter: Iterator<Item = Self::Item>;
        type Item: 'a;
        fn par_iter(&'a self) -> Par<Self::Iter>;
    }

    impl<'a, T: 'a + ?Sized> IntoParallelRefIterator<'a> for T
    where
        &'a T: IntoIterator,
    {
        type Iter = <&'a T as IntoIterator>::IntoIter;
        type Item = <&'a T as IntoIterator>::Item;
        fn par_iter(&'a self) -> Par<Self::Iter> {
            Par(self.into_iter())
        }
    }

    pub trait IntoParallelRefMutIterator<'a> {
        type Iter: Iterator<Item = Self::Item>;
        type Item: 'a;
        fn par_iter_mut(&'a mut self) -> Par<Self::Iter>;
    }

    impl<'a, T: 'a + ?Sized> IntoParallelRefMutIterator<'a> for T
    where
        &'a mut T: IntoIterator,
    {
        type Iter = <&'a mut T as IntoIterator>::IntoIter;
        type Item = <&'a mut T as IntoIterator>::Item;
        fn par_iter_mut(&'a mut self) -> Par<Self::Iter> {
            Par(self.into_iter())
        }
    }

    pub trait ParallelSlice<T> {
        fn par_chunks(&self, chunk_size: usize) -> Par<std::slice::Chunks<'_, T>>;
        fn par_windows(&self, window_size: usize) -> Par<std::slice::Windows<'_, T>>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_chunks(&self, chunk_size: usize) -> Par<std::slice::Chunks<'_, T>> {
            Par(self.chunks(chunk_size))
        }
        fn par_windows(&self, window_size: usize) -> Par<std::slice::Windows<'_, T>> {
            Par(self.windows(window_size))
        }
    }

    pub trait ParallelSliceMut<T> {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<std::slice::ChunksMut<'_, T>>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<std::slice::ChunksMut<'_, T>> {
            Par(self.chunks_mut(chunk_size))
        }
    }
}

pub mod prelude {
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelSlice,
        ParallelSliceMut,
    };
}

thread_local! {
    static CURRENT_THREADS: Cell<usize> = const { Cell::new(1) };
}

/// Number of workers the "current pool" advertises. The sequential
/// stand-in reports the installed pool's configured size (see
/// [`ThreadPool::install`]) so chunk-size heuristics behave as they
/// would under real rayon, even though execution is sequential.
pub fn current_num_threads() -> usize {
    CURRENT_THREADS.with(|c| c.get())
}

/// Error from [`ThreadPoolBuilder::build`]; never produced by the stub.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A "pool" that remembers its configured size and runs closures on the
/// calling thread.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Run `op` with [`current_num_threads`] reporting this pool's size.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let prev = CURRENT_THREADS.with(|c| c.replace(self.num_threads));
        let out = op();
        CURRENT_THREADS.with(|c| c.set(prev));
        out
    }
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn thread_name<F: Fn(usize) -> String>(self, _f: F) -> Self {
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 { 1 } else { self.num_threads };
        Ok(ThreadPool { num_threads: n })
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_combinators_match_sequential() {
        let v = vec![1u64, 2, 3, 4];
        let doubled: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let total: u64 = (0..100u64).into_par_iter().sum();
        assert_eq!(total, 4950);
        let reduced = v.par_iter().map(|&x| x).reduce(|| 0, |a, b| a + b);
        assert_eq!(reduced, 10);
    }

    #[test]
    fn partition_map_splits() {
        use crate::iter::Either;
        let (neg, pos): (Vec<i64>, Vec<i64>) = [-1i64, 2, -3, 4].par_iter().partition_map(|&x| {
            if x < 0 {
                Either::Left(x)
            } else {
                Either::Right(x)
            }
        });
        assert_eq!(neg, vec![-1, -3]);
        assert_eq!(pos, vec![2, 4]);
    }

    #[test]
    fn pool_reports_configured_threads() {
        let pool = crate::ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        assert_eq!(pool.install(crate::current_num_threads), 3);
        assert_eq!(crate::current_num_threads(), 1);
    }
}
