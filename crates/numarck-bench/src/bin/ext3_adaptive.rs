//! Extension experiment 3: drift-triggered checkpoint frequency (the
//! paper's §V: "determining dynamic checkpointing frequency based on how
//! evolving distributions change").
//!
//! Workload: a variable that evolves gently, suffers a sudden regime
//! change mid-run (a step jump, e.g. a blast wave arriving or a
//! parameter switch), then settles again. A fixed every-K policy either
//! wastes fulls during the calm phase or restarts expensively through
//! the jump; the adaptive policy writes fulls on schedule *and*
//! immediately after the regime change.

use numarck::{Config, Strategy};
use numarck_bench::report::{print_table, write_csv};
use numarck_bench::RESULTS_DIR;
use numarck_checkpoint::{
    AdaptivePolicy, CheckpointManager, CheckpointOutcome, CheckpointStore, ManagerPolicy,
    RestartEngine, VariableSet,
};
use numarck_par::rng::Xoshiro256PlusPlus;

/// Gentle noise, a ×1.4 jump at iteration 12, gentle noise after.
fn workload(iters: usize, n: usize) -> Vec<VariableSet> {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(7);
    let mut state: Vec<f64> = (0..n).map(|_| 10.0 + rng.uniform(0.0, 5.0)).collect();
    let mut out = Vec::with_capacity(iters);
    for it in 0..iters {
        if it > 0 {
            let jump = if it == 12 { 1.4 } else { 1.0 };
            for v in state.iter_mut() {
                *v *= jump * (1.0 + rng.normal_with(0.0, 0.0015));
            }
        }
        let mut vars = VariableSet::new();
        vars.insert("field".into(), state.clone());
        out.push(vars);
    }
    out
}

fn run_policy(
    name: &str,
    policy: ManagerPolicy,
    truth: &[VariableSet],
) -> (String, Vec<String>, f64, f64, u64) {
    let dir = std::env::temp_dir().join(format!(
        "numarck-ext3-{name}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .expect("after epoch")
            .as_nanos()
    ));
    let store = CheckpointStore::open(&dir).expect("temp dir writable");
    let config = Config::new(8, 0.001, Strategy::Clustering).expect("valid");
    let mut mgr = CheckpointManager::new(store.clone(), config, policy);
    let mut fulls = Vec::new();
    for (it, vars) in truth.iter().enumerate() {
        match mgr.checkpoint(it as u64, vars).expect("write") {
            CheckpointOutcome::Full => fulls.push(format!("{it}")),
            CheckpointOutcome::FullOnDrift { drift_l1, .. } => {
                fulls.push(format!("{it} (drift {drift_l1:.2})"))
            }
            CheckpointOutcome::Delta(_) => {}
        }
    }
    // Worst restart error overall and in the post-jump window 12..=15 —
    // the iterations whose chains would otherwise replay the jump delta.
    let engine = RestartEngine::new(store.clone());
    let mut worst = 0.0f64;
    let mut worst_post_jump = 0.0f64;
    for (it, vars) in truth.iter().enumerate() {
        let r = engine.restart_at(it as u64).expect("restartable");
        for (a, b) in vars["field"].iter().zip(&r.vars["field"]) {
            let e = ((a - b) / a).abs();
            worst = worst.max(e);
            if (12..=15).contains(&it) {
                worst_post_jump = worst_post_jump.max(e);
            }
        }
    }
    let stored: u64 = store
        .list()
        .expect("list")
        .iter()
        .map(|e| {
            std::fs::metadata(store.path_of(e.iteration, e.is_full)).expect("exists").len()
        })
        .sum();
    let _ = std::fs::remove_dir_all(&dir);
    (name.to_string(), fulls, worst, worst_post_jump, stored)
}

fn main() {
    let truth = workload(24, 50_000);
    let raw: u64 = truth.iter().map(|v| (v["field"].len() * 8) as u64).sum();

    let runs = [
        run_policy("fixed-8", ManagerPolicy::fixed(8), &truth),
        run_policy(
            "adaptive-8",
            ManagerPolicy::adaptive(8, AdaptivePolicy { drift_threshold: 0.5, cap: 0.5 }),
            &truth,
        ),
        run_policy("fixed-4", ManagerPolicy::fixed(4), &truth),
    ];

    println!("Extension 3: fixed vs drift-adaptive full-checkpoint policy");
    println!("(regime change: x1.4 jump at iteration 12; 24 iterations, 50k points)\n");
    let mut table = vec![vec![
        "policy".to_string(),
        "fulls at".to_string(),
        "worst err %".to_string(),
        "post-jump err %".to_string(),
        "storage % of raw".to_string(),
    ]];
    let mut csv = vec![vec![
        "policy".to_string(),
        "num_fulls".to_string(),
        "worst_err".to_string(),
        "post_jump_err".to_string(),
        "storage_fraction".to_string(),
    ]];
    for (name, fulls, worst, post_jump, stored) in &runs {
        table.push(vec![
            name.clone(),
            fulls.join(", "),
            format!("{:.5}", worst * 100.0),
            format!("{:.5}", post_jump * 100.0),
            format!("{:.2}", *stored as f64 / raw as f64 * 100.0),
        ]);
        csv.push(vec![
            name.clone(),
            fulls.len().to_string(),
            worst.to_string(),
            post_jump.to_string(),
            (*stored as f64 / raw as f64).to_string(),
        ]);
    }
    print_table(&table);
    println!("\n(expected: adaptive fires one extra full right at the jump, cutting the");
    println!(" worst restart error of the post-jump chain segment at a fraction of the");
    println!(" storage cost of halving the fixed interval)");
    match write_csv(RESULTS_DIR, "ext3_adaptive_policy", &csv) {
        Ok(p) => println!("wrote {p}"),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
