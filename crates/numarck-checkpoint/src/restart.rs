//! Read-side restart engine (the paper's §II-D).
//!
//! "NUMARCK first reads the latest uncompressed, complete full
//! checkpoint ... then reads the intermediate checkpoint files and
//! applies each of them to the full checkpoint data in order to build
//! the restart file." Replaying deltas against *reconstructed* state is
//! what accumulates error with distance from the full checkpoint — the
//! effect Fig. 8 measures.

use numarck::decode;
use numarck::error::NumarckError;

use crate::format::{sniff_version, CheckpointFile, CheckpointKind, MappedCheckpoint, VERSION_V2};
use crate::store::CheckpointStore;
use crate::VariableSet;

/// One file on a restart chain, in whichever shape its container
/// version decodes best: v2 files stay as a [`MappedCheckpoint`] and
/// decode zero-copy straight out of the mapping; v1 (and any bytes a
/// non-mapping backend hands back) are parsed into an owned
/// [`CheckpointFile`]. Both shapes replay through the same
/// [`decode::reconstruct_ref`] core, so the reconstructed state is
/// bit-identical either way.
#[derive(Debug)]
enum ChainFile {
    Parsed(CheckpointFile),
    Mapped(MappedCheckpoint),
}

impl ChainFile {
    fn iteration(&self) -> u64 {
        match self {
            Self::Parsed(f) => f.iteration,
            Self::Mapped(m) => m.iteration(),
        }
    }

    fn is_full_payload(&self) -> bool {
        match self {
            Self::Parsed(f) => matches!(f.kind, CheckpointKind::Full(_)),
            Self::Mapped(m) => m.is_full(),
        }
    }

    fn span(&self) -> u64 {
        match self {
            Self::Parsed(f) => f.span(),
            Self::Mapped(m) => m.span(),
        }
    }

    fn into_full_variables(self) -> Result<VariableSet, NumarckError> {
        match self {
            Self::Parsed(f) => match f.kind {
                CheckpointKind::Full(vars) => Ok(vars),
                CheckpointKind::Delta(_) => unreachable!("caller checked is_full_payload"),
            },
            Self::Mapped(m) => m.full_variables(),
        }
    }

    /// Apply this delta file in place to `vars`.
    fn apply(&self, vars: &mut VariableSet) -> Result<(), NumarckError> {
        let mismatch = || {
            NumarckError::Corrupt(format!(
                "delta {} variable set does not match the chain",
                self.iteration()
            ))
        };
        match self {
            Self::Parsed(f) => {
                let blocks = match &f.kind {
                    CheckpointKind::Delta(blocks) => blocks,
                    CheckpointKind::Full(_) => {
                        unreachable!("resolve_chain collects only deltas")
                    }
                };
                if blocks.len() != vars.len()
                    || !blocks.keys().zip(vars.keys()).all(|(a, b)| a == b)
                {
                    return Err(mismatch());
                }
                for (name, block) in blocks {
                    let prev = vars.get_mut(name).expect("key checked above");
                    *prev = decode::reconstruct(prev, block)?;
                }
            }
            Self::Mapped(m) => {
                if m.num_variables() != vars.len()
                    || !m.variable_names().zip(vars.keys()).all(|(a, b)| a == b.as_str())
                {
                    return Err(mismatch());
                }
                for name in m.variable_names().map(str::to_string).collect::<Vec<_>>() {
                    let prev = vars.get_mut(&name).expect("key checked above");
                    *prev = m.decode_variable(&name, prev)?;
                }
            }
        }
        Ok(())
    }
}

/// Replays checkpoint chains out of a store.
#[derive(Debug, Clone)]
pub struct RestartEngine {
    store: CheckpointStore,
}

/// A successful restart.
#[derive(Debug, Clone)]
pub struct RestartResult {
    /// The reconstructed variables at the requested iteration.
    pub vars: VariableSet,
    /// The iteration that was restarted.
    pub iteration: u64,
    /// Iteration of the full checkpoint the chain started from.
    pub base_iteration: u64,
    /// Number of delta files applied on top of the base. With merged
    /// deltas in the chain this can be less than
    /// `iteration - base_iteration`: each merged file replays several
    /// original iterations in one step.
    pub deltas_applied: u64,
}

/// An iteration that could not be recovered during a degraded restart,
/// and why.
#[derive(Debug, Clone)]
pub struct LostIteration {
    /// The unrecoverable iteration.
    pub iteration: u64,
    /// The error that made it unrecoverable.
    pub reason: String,
}

/// Outcome of [`RestartEngine::restart_at_or_before`]: the best
/// recoverable state, plus an account of what was given up to get it.
#[derive(Debug, Clone)]
pub struct DegradedRestart {
    /// The iteration originally asked for.
    pub requested: u64,
    /// The restart that actually succeeded.
    pub result: RestartResult,
    /// Iterations between `requested` and the achieved one (inclusive of
    /// `requested` when it failed), newest first, with reasons.
    pub lost: Vec<LostIteration>,
}

impl DegradedRestart {
    /// The iteration actually recovered. (Not derivable from the delta
    /// count: a merged delta replays several iterations in one file.)
    pub fn achieved(&self) -> u64 {
        self.result.iteration
    }

    /// True when the requested iteration itself was recovered.
    pub fn is_exact(&self) -> bool {
        self.lost.is_empty()
    }
}

impl RestartEngine {
    /// Engine over `store`.
    pub fn new(store: CheckpointStore) -> Self {
        Self { store }
    }

    /// Rebuild the state at `target` iteration.
    ///
    /// The chain is resolved **backwards** from `target`: a full
    /// checkpoint at the cursor ends the walk; otherwise the delta at
    /// the cursor is collected and the cursor steps back by that
    /// delta's span ([`crate::format::CheckpointFile::span`]). For a
    /// plain chain (span-1 deltas) this reads exactly the files the old
    /// forward walk read; for a compacted chain it naturally skips the
    /// iterations a merged delta superseded and GC may have removed.
    /// The collected path is then replayed forwards from the base full.
    ///
    /// Fails loudly if the chain hits an iteration with no stored file,
    /// any file is corrupt, a span points before iteration 0, or
    /// variable sets don't line up.
    pub fn restart_at(&self, target: u64) -> Result<RestartResult, NumarckError> {
        let (path, base_iteration, mut vars) = self.resolve_chain(target)?;
        let deltas_applied = path.len() as u64;
        for file in path.iter().rev() {
            file.apply(&mut vars)?;
        }
        Ok(RestartResult { vars, iteration: target, base_iteration, deltas_applied })
    }

    /// Open the file for `iteration` through the versioned seam: map the
    /// bytes (a real `mmap` on plain filesystem stores), sniff the
    /// container version, and keep v2 files mapped for zero-copy decode
    /// while v1 files parse through the frozen codec.
    fn read_chain_file(&self, iteration: u64, is_full: bool) -> Result<ChainFile, NumarckError> {
        let path = self.store.path_of(iteration, is_full);
        let bytes = self
            .store
            .map_raw(iteration, is_full)
            .map_err(|e| NumarckError::Io(format!("cannot read {}: {e}", path.display())))?;
        let file = match sniff_version(&bytes)? {
            VERSION_V2 => ChainFile::Mapped(MappedCheckpoint::parse(bytes)?),
            _ => ChainFile::Parsed(CheckpointFile::from_bytes(&bytes)?),
        };
        if file.iteration() != iteration {
            return Err(NumarckError::Corrupt(format!(
                "file {} claims iteration {}, expected {iteration}",
                path.display(),
                file.iteration()
            )));
        }
        Ok(file)
    }

    /// Walk backwards from `target` to the base full checkpoint,
    /// returning the delta files on the path (newest first), the base
    /// iteration, and the base variables.
    fn resolve_chain(
        &self,
        target: u64,
    ) -> Result<(Vec<ChainFile>, u64, VariableSet), NumarckError> {
        let entries = self
            .store
            .list()
            .map_err(|e| NumarckError::Corrupt(format!("store listing failed: {e}")))?;
        let mut has_full = std::collections::HashSet::new();
        let mut has_delta = std::collections::HashSet::new();
        for e in &entries {
            if e.is_full {
                has_full.insert(e.iteration);
            } else {
                has_delta.insert(e.iteration);
            }
        }
        let mut path = Vec::new();
        let mut cur = target;
        loop {
            if has_full.contains(&cur) {
                let base = self.read_chain_file(cur, true)?;
                if !base.is_full_payload() {
                    return Err(NumarckError::Corrupt(format!(
                        "checkpoint {cur} has .full name but delta payload"
                    )));
                }
                return Ok((path, cur, base.into_full_variables()?));
            }
            if !has_delta.contains(&cur) {
                return Err(NumarckError::Corrupt(format!(
                    "chain to {target} broken at iteration {cur}: no checkpoint file stored"
                )));
            }
            let file = self.read_chain_file(cur, false)?;
            if file.is_full_payload() {
                // A full payload under a delta name: inconsistent store
                // state. Be permissive: adopt it as the base, as the
                // forward walk used to.
                return Ok((path, cur, file.into_full_variables()?));
            }
            let span = file.span();
            if span > cur {
                return Err(NumarckError::Corrupt(format!(
                    "delta {cur} spans {span} iterations, past the start of the chain"
                )));
            }
            cur -= span;
            path.push(file);
        }
    }

    /// Degraded restart: recover the newest intact iteration at or
    /// before `target`.
    ///
    /// Tries `target` first; on failure walks backwards through the
    /// stored iterations, recording each unrecoverable one with the
    /// error that disqualified it. Succeeds with a [`DegradedRestart`]
    /// describing what was achieved and what was lost; errs only when
    /// *no* iteration at or before `target` can be rebuilt.
    pub fn restart_at_or_before(&self, target: u64) -> Result<DegradedRestart, NumarckError> {
        let mut candidates: Vec<u64> = self
            .store
            .list()
            .map_err(|e| NumarckError::Io(format!("store listing failed: {e}")))?
            .into_iter()
            .map(|e| e.iteration)
            .filter(|&it| it <= target)
            .collect();
        candidates.dedup();
        candidates.reverse();
        let mut lost = Vec::new();
        if candidates.first() != Some(&target) {
            lost.push(LostIteration {
                iteration: target,
                reason: "no checkpoint file stored for this iteration".into(),
            });
        }
        for it in candidates {
            match self.restart_at(it) {
                Ok(result) => return Ok(DegradedRestart { requested: target, result, lost }),
                Err(e) => lost.push(LostIteration { iteration: it, reason: e.to_string() }),
            }
        }
        Err(NumarckError::Io(format!(
            "no restartable iteration at or before {target}: {} candidate(s) failed",
            lost.len()
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::{CheckpointManager, ManagerPolicy};
    use crate::store::testutil::TempDir;
    use numarck::{Config, Strategy};

    fn truth_sequence(iters: u64, n: usize) -> Vec<VariableSet> {
        let mut out = Vec::new();
        let mut state: Vec<f64> = (0..n).map(|i| 1.0 + (i % 11) as f64).collect();
        for it in 0..iters {
            if it > 0 {
                for (i, v) in state.iter_mut().enumerate() {
                    *v *= 1.0 + 0.003 * (((i as u64 + it) % 7) as f64 - 3.0) / 3.0;
                }
            }
            let mut vars = VariableSet::new();
            vars.insert("x".into(), state.clone());
            out.push(vars);
        }
        out
    }

    fn build_store(tmp: &TempDir, truth: &[VariableSet], full_interval: u64) -> CheckpointStore {
        let store = CheckpointStore::open(&tmp.0).unwrap();
        let cfg = Config::new(8, 0.001, Strategy::Clustering).unwrap();
        let mut mgr =
            CheckpointManager::new(store.clone(), cfg, ManagerPolicy::fixed(full_interval));
        for (it, vars) in truth.iter().enumerate() {
            mgr.checkpoint(it as u64, vars).unwrap();
        }
        store
    }

    #[test]
    fn restart_at_full_checkpoint_is_exact() {
        let tmp = TempDir::new("restart-exact");
        let truth = truth_sequence(12, 500);
        let store = build_store(&tmp, &truth, 5);
        let engine = RestartEngine::new(store);
        for full_iter in [0u64, 5, 10] {
            let r = engine.restart_at(full_iter).unwrap();
            assert_eq!(r.deltas_applied, 0);
            assert_eq!(r.base_iteration, full_iter);
            assert_eq!(r.vars["x"], truth[full_iter as usize]["x"]);
        }
    }

    #[test]
    fn restart_mid_chain_is_error_bounded() {
        let tmp = TempDir::new("restart-bounded");
        let truth = truth_sequence(12, 500);
        let store = build_store(&tmp, &truth, 5);
        let engine = RestartEngine::new(store);
        for target in 0..12u64 {
            let r = engine.restart_at(target).unwrap();
            let exact = &truth[target as usize]["x"];
            let rebuilt = &r.vars["x"];
            let budget = (1.0f64 + 0.0011).powi(r.deltas_applied as i32) - 1.0 + 1e-12;
            for (a, b) in exact.iter().zip(rebuilt) {
                let rel = ((a - b) / a).abs();
                assert!(rel <= budget, "iter {target}: rel {rel} > {budget}");
            }
        }
    }

    #[test]
    fn deltas_applied_counts_distance_from_base() {
        let tmp = TempDir::new("restart-count");
        let truth = truth_sequence(9, 100);
        let store = build_store(&tmp, &truth, 4);
        let engine = RestartEngine::new(store);
        assert_eq!(engine.restart_at(6).unwrap().base_iteration, 4);
        assert_eq!(engine.restart_at(6).unwrap().deltas_applied, 2);
        assert_eq!(engine.restart_at(3).unwrap().base_iteration, 0);
        assert_eq!(engine.restart_at(3).unwrap().deltas_applied, 3);
    }

    #[test]
    fn restart_follows_merged_delta_spans() {
        let tmp = TempDir::new("restart-span");
        let truth = truth_sequence(8, 200);
        // Full at 0, plain deltas 1..=7.
        let store = build_store(&tmp, &truth, 8);
        let engine = RestartEngine::new(store.clone());
        let base_vars = match store.read(0, true).unwrap().kind {
            crate::format::CheckpointKind::Full(v) => v,
            _ => unreachable!(),
        };
        let state3 = engine.restart_at(3).unwrap().vars;
        // Replace deltas 1..=3 with one merged delta at 3 spanning 3.
        let cfg = Config::new(8, 0.001, Strategy::Clustering).unwrap();
        let (block, _) = numarck::encode::encode(&base_vars["x"], &state3["x"], &cfg).unwrap();
        let mut blocks = std::collections::BTreeMap::new();
        blocks.insert("x".to_string(), block);
        store.write(&crate::format::CheckpointFile::merged_delta(3, blocks, 3)).unwrap();
        store.remove(1, false).unwrap();
        store.remove(2, false).unwrap();
        // The chain to 3 is now one hop; to 5 it is merged + two plain.
        let r3 = engine.restart_at(3).unwrap();
        assert_eq!((r3.base_iteration, r3.deltas_applied), (0, 1));
        let r5 = engine.restart_at(5).unwrap();
        assert_eq!((r5.base_iteration, r5.deltas_applied), (0, 3));
        // `achieved` must report the restarted iteration, not
        // base + delta count (those diverge across merged deltas).
        assert_eq!(r5.iteration, 5);
        let d = engine.restart_at_or_before(5).unwrap();
        assert_eq!(d.achieved(), 5);
        assert!(d.is_exact());
        // Superseded iterations are genuinely gone.
        assert!(engine.restart_at(2).is_err());
    }

    #[test]
    fn v1_and_v2_chains_restart_bit_identically() {
        let tmp = TempDir::new("restart-v1v2");
        let truth = truth_sequence(8, 300);
        // The manager writes v2; restart these chains first (this is the
        // mapped zero-copy path on a plain filesystem store).
        let store = build_store(&tmp, &truth, 4);
        let engine = RestartEngine::new(store.clone());
        let v2_states: Vec<VariableSet> =
            (0..8).map(|t| engine.restart_at(t).unwrap().vars).collect();
        // Rewrite every file in the frozen v1 layout and replay again:
        // the seam must produce the same bits from either container.
        for e in store.list().unwrap() {
            let f = store.read(e.iteration, e.is_full).unwrap();
            store.write_raw(e.iteration, e.is_full, &f.to_bytes_v1()).unwrap();
        }
        for (t, want) in v2_states.iter().enumerate() {
            let got = engine.restart_at(t as u64).unwrap().vars;
            for (name, w) in want {
                let g = &got[name];
                assert_eq!(g.len(), w.len());
                for (a, b) in g.iter().zip(w) {
                    assert_eq!(a.to_bits(), b.to_bits(), "v1/v2 restart diverged at {t}/{name}");
                }
            }
        }
    }

    #[test]
    fn span_past_chain_start_is_loud() {
        let tmp = TempDir::new("restart-overspan");
        let truth = truth_sequence(4, 100);
        let store = build_store(&tmp, &truth, 8);
        // Corrupt the chain shape: claim delta 2 spans 5 iterations.
        let mut d2 = store.read(2, false).unwrap();
        d2.delta_span = 5;
        store.write(&d2).unwrap();
        let engine = RestartEngine::new(store);
        assert!(engine.restart_at(2).is_err());
    }

    #[test]
    fn missing_full_checkpoint_is_loud() {
        let tmp = TempDir::new("restart-nofull");
        let store = CheckpointStore::open(&tmp.0).unwrap();
        let engine = RestartEngine::new(store);
        assert!(engine.restart_at(3).is_err());
    }

    #[test]
    fn missing_delta_in_chain_is_loud() {
        let tmp = TempDir::new("restart-hole");
        let truth = truth_sequence(8, 100);
        let store = build_store(&tmp, &truth, 8);
        // Punch a hole at iteration 3.
        std::fs::remove_file(store.path_of(3, false)).unwrap();
        let engine = RestartEngine::new(store);
        assert!(engine.restart_at(5).is_err());
        // Targets before the hole still work.
        assert!(engine.restart_at(2).is_ok());
    }

    #[test]
    fn degraded_restart_on_healthy_store_is_exact() {
        let tmp = TempDir::new("restart-degraded-clean");
        let truth = truth_sequence(10, 100);
        let store = build_store(&tmp, &truth, 4);
        let engine = RestartEngine::new(store);
        let d = engine.restart_at_or_before(7).unwrap();
        assert!(d.is_exact());
        assert_eq!(d.achieved(), 7);
        assert_eq!(d.requested, 7);
    }

    #[test]
    fn degraded_restart_falls_back_past_a_broken_delta() {
        let tmp = TempDir::new("restart-degraded-hole");
        let truth = truth_sequence(10, 100);
        // Fulls at 0, 4, 8.
        let store = build_store(&tmp, &truth, 4);
        // Destroy delta 5: every chain through it breaks.
        std::fs::write(store.path_of(5, false), b"garbage").unwrap();
        let engine = RestartEngine::new(store);
        let d = engine.restart_at_or_before(7).unwrap();
        assert_eq!(d.achieved(), 4, "newest intact iteration <= 7 is the full at 4");
        assert!(!d.is_exact());
        let lost: Vec<u64> = d.lost.iter().map(|l| l.iteration).collect();
        assert_eq!(lost, vec![7, 6, 5]);
        assert!(d.lost.iter().all(|l| !l.reason.is_empty()));
        // Targets past the next full are unaffected.
        assert!(engine.restart_at_or_before(9).unwrap().is_exact());
    }

    #[test]
    fn degraded_restart_beyond_newest_checkpoint_reports_the_gap() {
        let tmp = TempDir::new("restart-degraded-beyond");
        let truth = truth_sequence(6, 100);
        let store = build_store(&tmp, &truth, 4);
        let engine = RestartEngine::new(store);
        // Newest stored iteration is 5; ask for 100.
        let d = engine.restart_at_or_before(100).unwrap();
        assert_eq!(d.achieved(), 5);
        assert_eq!(d.lost.len(), 1);
        assert_eq!(d.lost[0].iteration, 100);
    }

    #[test]
    fn degraded_restart_with_nothing_recoverable_is_loud() {
        let tmp = TempDir::new("restart-degraded-empty");
        let store = CheckpointStore::open(&tmp.0).unwrap();
        let engine = RestartEngine::new(store.clone());
        assert!(engine.restart_at_or_before(5).is_err());
        // A store with only a corrupt full is just as unrecoverable.
        std::fs::write(store.path_of(0, true), b"junk").unwrap();
        let err = engine.restart_at_or_before(5).unwrap_err();
        assert!(matches!(err, NumarckError::Io(_)));
    }
}
