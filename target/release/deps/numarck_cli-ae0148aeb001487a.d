/root/repo/target/release/deps/numarck_cli-ae0148aeb001487a.d: crates/numarck-cli/src/lib.rs crates/numarck-cli/src/args.rs crates/numarck-cli/src/chainfile.rs crates/numarck-cli/src/commands.rs crates/numarck-cli/src/seqfile.rs crates/numarck-cli/src/serve_cmd.rs

/root/repo/target/release/deps/libnumarck_cli-ae0148aeb001487a.rlib: crates/numarck-cli/src/lib.rs crates/numarck-cli/src/args.rs crates/numarck-cli/src/chainfile.rs crates/numarck-cli/src/commands.rs crates/numarck-cli/src/seqfile.rs crates/numarck-cli/src/serve_cmd.rs

/root/repo/target/release/deps/libnumarck_cli-ae0148aeb001487a.rmeta: crates/numarck-cli/src/lib.rs crates/numarck-cli/src/args.rs crates/numarck-cli/src/chainfile.rs crates/numarck-cli/src/commands.rs crates/numarck-cli/src/seqfile.rs crates/numarck-cli/src/serve_cmd.rs

crates/numarck-cli/src/lib.rs:
crates/numarck-cli/src/args.rs:
crates/numarck-cli/src/chainfile.rs:
crates/numarck-cli/src/commands.rs:
crates/numarck-cli/src/seqfile.rs:
crates/numarck-cli/src/serve_cmd.rs:
