//! Checkpointing as a service: a concurrent ingest/restart server over
//! the NUMARCK checkpoint store, plus the matching blocking client.
//!
//! The crate is deliberately std-only (`std::net` + threads — no async
//! runtime, no external networking deps) and splits into three layers:
//!
//! * [`wire`] — the length-prefixed, CRC-protected binary protocol:
//!   frame layout, request/response enums, encode/decode.
//! * [`server`] — acceptor thread + bounded hand-off queue + fixed
//!   worker pool. A full queue is answered with a typed
//!   [`wire::Response::Busy`] instead of an unbounded backlog; drain
//!   (shutdown request or SIGTERM) finishes in-flight work and stops.
//!   Every session is a [`numarck_checkpoint::CheckpointManager`] over
//!   its own store directory, so ingest inherits retry/backoff and the
//!   scrub→quarantine→repair machinery.
//! * [`client`] — a small blocking client used by the CLI subcommands
//!   and the load generator in `numarck-bench`.
//!
//! Durability on top of those layers (see DESIGN.md, "Durability
//! guarantees"):
//!
//! * [`journal`] — per-session write-ahead intent journal: every ingest
//!   fsyncs an intent record (iteration + content CRC) before the store
//!   mutates, so a crash at any instruction boundary is classifiable.
//! * [`recovery`] — startup pass that sweeps temp files, replays the
//!   journal, and completes or rolls back half-applied ingests before
//!   the server accepts traffic.
//!
//! See DESIGN.md ("numarck-serve wire protocol") for the normative
//! protocol description.

pub mod client;
pub mod journal;
pub mod recovery;
pub mod server;
pub mod wire;

pub use client::{Client, ClientError, ClientResult, RestartReply, ScrubReply};
pub use journal::{IntentJournal, IntentRecord};
pub use recovery::{recover_session, RecoveryReport};
pub use server::{
    install_signal_handlers, signal_drain_requested, Server, ServerConfig, ServerHandle,
};
pub use wire::{
    ErrorCode, LatencyStat, PutOutcome, Request, Response, SessionStat, StatsReply, WrittenKind,
};
