//! Extension experiment 4: shared-table group compression of co-varying
//! variables.
//!
//! The paper notes pres and temp behave identically under compression
//! (§III-G). Pooling their fit samples and sharing one representative
//! table halves the table overhead with no loss — while grouping
//! variables with *different* distributions costs escapes. This binary
//! quantifies both cases on FLASH data.

use flash_sim::FlashVar;
use numarck::group::encode_group;
use numarck::{Config, Strategy};
use numarck_bench::data::{flash_sequences, FlashConfig};
use numarck_bench::report::{print_table, write_csv};
use numarck_bench::RESULTS_DIR;

fn main() {
    let seqs = flash_sequences(FlashConfig::default(), 2);
    let config = Config::new(8, 0.001, Strategy::Clustering).expect("valid");

    let groups: [(&str, Vec<FlashVar>); 3] = [
        ("pres+temp (co-varying)", vec![FlashVar::Pres, FlashVar::Temp]),
        ("ener+eint (co-varying)", vec![FlashVar::Ener, FlashVar::Eint]),
        ("dens+pres+temp+ener+eint", vec![
            FlashVar::Dens,
            FlashVar::Pres,
            FlashVar::Temp,
            FlashVar::Ener,
            FlashVar::Eint,
        ]),
    ];

    println!("Extension 4: shared-table group compression (E = 0.1%, B = 8)\n");
    let mut table = vec![vec![
        "group".to_string(),
        "shared table".to_string(),
        "Eq.3 shared %".to_string(),
        "Eq.3 private %".to_string(),
        "mean γ %".to_string(),
    ]];
    let mut csv = vec![vec![
        "group".to_string(),
        "shared_ratio".to_string(),
        "private_ratio".to_string(),
        "mean_gamma".to_string(),
    ]];
    for (name, vars) in &groups {
        let pairs: Vec<(&[f64], &[f64])> =
            vars.iter().map(|v| (seqs[v][0].as_slice(), seqs[v][1].as_slice())).collect();
        let (_, stats) = encode_group(&pairs, &config).expect("finite sim data");
        let gamma = stats
            .per_variable
            .iter()
            .map(|s| s.incompressible_ratio)
            .sum::<f64>()
            / stats.per_variable.len() as f64;
        table.push(vec![
            name.to_string(),
            format!("{} entries", stats.shared_table_len),
            format!("{:.2}", stats.compression_ratio_eq3_shared * 100.0),
            format!("{:.2}", stats.compression_ratio_eq3_private * 100.0),
            format!("{:.3}", gamma * 100.0),
        ]);
        csv.push(vec![
            name.to_string(),
            stats.compression_ratio_eq3_shared.to_string(),
            stats.compression_ratio_eq3_private.to_string(),
            gamma.to_string(),
        ]);
    }
    print_table(&table);
    println!("\n(expected: co-varying pairs gain the table savings for free; the mixed");
    println!(" five-variable group still gains overall but pays a small γ increase where");
    println!(" distributions compete for representatives)");
    match write_csv(RESULTS_DIR, "ext4_group_compression", &csv) {
        Ok(p) => println!("wrote {p}"),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
