//! Durability integration: intent-journal recovery across a server
//! restart, and the idle-connection guard that keeps a silent peer from
//! pinning a worker (slowloris).

use std::io::Read;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use numarck::{Config, Strategy};
use numarck_checkpoint::{FsBackend, VariableSet};
use numarck_serve::{Client, IntentJournal, Server, ServerConfig};

mod util;
use util::TempDir;

const TIMEOUT: Duration = Duration::from_secs(10);

fn test_config() -> Config {
    Config::new(8, 0.001, Strategy::Clustering).unwrap()
}

fn vars(iteration: u64) -> VariableSet {
    let mut v = VariableSet::new();
    v.insert(
        "x".into(),
        (0..200).map(|j| (j as f64 + 1.0) * 1.003f64.powi(iteration as i32)).collect(),
    );
    v
}

/// A server restarted over a session directory with an unresolved
/// intent journal replays it before serving: the rolled-back intent is
/// reported in stats, the stray temp file is swept, and every
/// previously-acknowledged iteration still restarts.
#[test]
fn dirty_journal_is_recovered_on_server_restart() {
    let tmp = TempDir::new("recovery");
    let root = tmp.0.join("root");

    // First server lifetime: ingest 0..=5, shut down cleanly.
    let mut config = ServerConfig::new(&root, test_config());
    config.full_interval = 4;
    config.io_timeout = TIMEOUT;
    let server = Server::spawn("127.0.0.1:0", config.clone()).unwrap();
    {
        let mut client = Client::connect(server.addr(), TIMEOUT).unwrap();
        let session = client.open_session("sim").unwrap();
        for it in 0..=5 {
            client.put_iteration(session, it, &vars(it)).unwrap();
        }
    }
    server.shutdown();

    // Simulate kill -9 debris: an intent that never committed (the
    // crash hit after the journal fsync, before the store write) and a
    // temp file from a write that never reached its rename.
    let session_dir = root.join("sim");
    let (mut journal, outstanding) =
        IntentJournal::open(&session_dir, Arc::new(FsBackend)).unwrap();
    assert!(outstanding.is_empty(), "clean shutdown left outstanding intents");
    journal.begin(6, false, 0xDEAD_BEEF).unwrap();
    drop(journal);
    std::fs::write(session_dir.join("ckpt_0000000007.tmp"), b"half a write").unwrap();

    // Second lifetime over the same root.
    let server = Server::spawn("127.0.0.1:0", config).unwrap();
    let mut client = Client::connect(server.addr(), TIMEOUT).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.journal_replayed, 1, "the uncommitted intent was replayed");
    assert_eq!(stats.journal_rolled_back, 1, "nothing landed for it, so it rolled back");
    assert_eq!(stats.recovery_repairs, 0, "no half-applied file, so no re-anchor");
    assert!(!session_dir.join("ckpt_0000000007.tmp").exists(), "temp debris swept");

    // Every acknowledged iteration is still restartable (deltas are
    // NUMARCK-lossy, so bit-exactness to source only holds at fulls —
    // full_interval 4 puts those at 0 and 4), and the session keeps
    // working: the next ingest re-anchors with a full.
    let session = client.open_session("sim").unwrap();
    for it in 0..=5 {
        let reply = client.restart(session, it).unwrap();
        assert_eq!(reply.achieved, it, "iteration {it} must restart exactly");
        if it % 4 == 0 {
            assert_eq!(reply.vars, vars(it), "full {it} must restart bit-exactly");
        }
    }
    client.put_iteration(session, 6, &vars(6)).unwrap();
    assert_eq!(client.restart(session, 6).unwrap().achieved, 6);
    server.shutdown();
}

/// A half-applied store write (destination exists but holds garbage,
/// journal intent uncommitted) is quarantined on restart and the chain
/// re-anchored: older acknowledged iterations survive.
#[test]
fn half_applied_write_is_quarantined_on_restart() {
    let tmp = TempDir::new("halfwrite");
    let root = tmp.0.join("root");
    let mut config = ServerConfig::new(&root, test_config());
    config.full_interval = 4;
    config.io_timeout = TIMEOUT;
    let server = Server::spawn("127.0.0.1:0", config.clone()).unwrap();
    {
        let mut client = Client::connect(server.addr(), TIMEOUT).unwrap();
        let session = client.open_session("sim").unwrap();
        for it in 0..=5 {
            client.put_iteration(session, it, &vars(it)).unwrap();
        }
    }
    server.shutdown();

    // The crash interrupted the write of iteration 6: intent journaled,
    // destination file exists but holds garbage matching nothing.
    let session_dir = root.join("sim");
    let (mut journal, _) = IntentJournal::open(&session_dir, Arc::new(FsBackend)).unwrap();
    journal.begin(6, false, 0xDEAD_BEEF).unwrap();
    drop(journal);
    std::fs::write(session_dir.join("ckpt_0000000006.delta"), b"torn rename garbage").unwrap();

    let server = Server::spawn("127.0.0.1:0", config).unwrap();
    let mut client = Client::connect(server.addr(), TIMEOUT).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.journal_rolled_back, 1);
    assert_eq!(stats.recovery_repairs, 1, "the garbage file forced a re-anchor");

    let session = client.open_session("sim").unwrap();
    for it in 0..=5 {
        let reply = client.restart(session, it).unwrap();
        assert_eq!(reply.achieved, it, "iteration {it} must restart exactly");
        if it % 4 == 0 {
            assert_eq!(reply.vars, vars(it), "full {it} must restart bit-exactly");
        }
    }
    server.shutdown();
}

/// Slowloris guard: a client that connects and goes mute is
/// disconnected once the idle budget runs out, and its worker serves
/// the next connection. With one worker, the second client's request
/// can only succeed if the first connection was reclaimed.
#[test]
fn frozen_client_is_disconnected_and_worker_reclaimed() {
    let tmp = TempDir::new("slowloris");
    let mut config = ServerConfig::new(tmp.0.join("root"), test_config());
    config.workers = 1;
    config.io_timeout = TIMEOUT;
    config.idle_timeout = Duration::from_millis(300);
    let server = Server::spawn("127.0.0.1:0", config).unwrap();

    // The attacker: connects, sends nothing, holds the only worker.
    let mut frozen = TcpStream::connect(server.addr()).unwrap();
    frozen.set_read_timeout(Some(TIMEOUT)).unwrap();

    // The victim: a real client behind it. Its request only completes
    // once the idle guard frees the worker.
    let mut client = Client::connect(server.addr(), TIMEOUT).unwrap();
    let session = client.open_session("after-the-freeze").unwrap();
    client.put_iteration(session, 0, &vars(0)).unwrap();

    // The frozen connection was closed server-side (EOF), and the
    // disconnect is visible in stats.
    let mut buf = [0u8; 1];
    assert_eq!(frozen.read(&mut buf).unwrap(), 0, "server must hang up on the idle peer");
    let stats = client.stats().unwrap();
    assert!(stats.idle_disconnects >= 1, "idle disconnect must be counted");
    server.shutdown();
}
