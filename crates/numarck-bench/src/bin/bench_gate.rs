//! `bench_gate` — throughput regression gate over the perf harness JSON.
//!
//! Compares a current `BENCH_encode.json`/`BENCH_decode.json` pair
//! against a committed baseline pair, row by row on the
//! `(workload, stage, threads)` key, and fails when any row's
//! `points_per_sec` drops more than the threshold (default 15%) below
//! the baseline. Rows are only compared when both sides measured the
//! same `points` (a smoke run gated against a full-size baseline would
//! be noise, not signal).
//!
//! Usage:
//!
//! ```text
//! bench_gate --baseline DIR --current DIR [--out REPORT.json] [--threshold PCT]
//! ```
//!
//! Escape hatches:
//!
//! - `NUMARCK_BENCH_GATE=off` (or `skip`) — exit 0 without comparing;
//!   CI wires this to a PR label for known-noisy changes.
//! - A baseline row missing on the current side (or vice versa) is
//!   reported but never fails the gate: stages come and go.
//!
//! Exit codes: 0 = pass/skip, 1 = regression, 2 = usage or I/O error.
//! The JSON parsing is deliberately line-based and hand-rolled — the
//! harness writes one result object per line, and the workspace has no
//! JSON dependency.

use std::fmt::Write as _;

/// One parsed result row.
#[derive(Debug, Clone, PartialEq)]
struct Row {
    workload: String,
    stage: String,
    threads: u64,
    points: u64,
    points_per_sec: f64,
}

/// Comparison outcome for one `(workload, stage, threads)` key.
struct Verdict {
    row: Row,
    baseline_pps: Option<f64>,
    status: &'static str,
    ratio: f64,
}

fn main() {
    std::process::exit(run());
}

fn run() -> i32 {
    let mut baseline_dir = None;
    let mut current_dir = None;
    let mut out_path = None;
    let mut threshold_pct = 15.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--baseline" => baseline_dir = args.next(),
            "--current" => current_dir = args.next(),
            "--out" => out_path = args.next(),
            "--threshold" => {
                let Some(v) = args.next().and_then(|v| v.parse::<f64>().ok()) else {
                    eprintln!("--threshold needs a number (percent)");
                    return 2;
                };
                threshold_pct = v;
            }
            "--help" | "-h" => {
                eprintln!(
                    "bench_gate --baseline DIR --current DIR [--out REPORT.json] \
                     [--threshold PCT]"
                );
                return 2;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return 2;
            }
        }
    }
    let (Some(baseline_dir), Some(current_dir)) = (baseline_dir, current_dir) else {
        eprintln!("bench_gate needs --baseline DIR and --current DIR");
        return 2;
    };

    let gate_env = std::env::var("NUMARCK_BENCH_GATE").unwrap_or_default();
    if matches!(gate_env.as_str(), "off" | "skip" | "0") {
        println!("bench_gate: skipped (NUMARCK_BENCH_GATE={gate_env})");
        return 0;
    }

    let mut baseline: Vec<Row> = Vec::new();
    let mut current: Vec<Row> = Vec::new();
    for file in ["BENCH_encode.json", "BENCH_decode.json"] {
        match read_rows(&format!("{baseline_dir}/{file}")) {
            Ok(rows) => baseline.extend(rows),
            Err(e) => {
                eprintln!("bench_gate: cannot read baseline {file}: {e}");
                return 2;
            }
        }
        match read_rows(&format!("{current_dir}/{file}")) {
            Ok(rows) => current.extend(rows),
            Err(e) => {
                eprintln!("bench_gate: cannot read current {file}: {e}");
                return 2;
            }
        }
    }

    let allowed = 1.0 - threshold_pct / 100.0;
    let mut verdicts: Vec<Verdict> = Vec::new();
    for row in &current {
        let base = baseline.iter().find(|b| {
            b.workload == row.workload && b.stage == row.stage && b.threads == row.threads
        });
        let v = match base {
            None => Verdict {
                row: row.clone(),
                baseline_pps: None,
                status: "new",
                ratio: f64::NAN,
            },
            Some(b) if b.points != row.points => Verdict {
                row: row.clone(),
                baseline_pps: Some(b.points_per_sec),
                status: "points-mismatch",
                ratio: f64::NAN,
            },
            Some(b) => {
                let ratio = row.points_per_sec / b.points_per_sec;
                Verdict {
                    row: row.clone(),
                    baseline_pps: Some(b.points_per_sec),
                    status: if ratio >= allowed { "ok" } else { "regression" },
                    ratio,
                }
            }
        };
        verdicts.push(v);
    }
    // Baseline rows with no current counterpart: visible, non-fatal.
    for b in &baseline {
        let gone = !current.iter().any(|r| {
            r.workload == b.workload && r.stage == b.stage && r.threads == b.threads
        });
        if gone {
            verdicts.push(Verdict {
                row: b.clone(),
                baseline_pps: Some(b.points_per_sec),
                status: "missing-in-current",
                ratio: f64::NAN,
            });
        }
    }

    let regressions = verdicts.iter().filter(|v| v.status == "regression").count();
    for v in &verdicts {
        let base = v.baseline_pps.map_or("-".to_string(), |p| format!("{:.0}", p));
        println!(
            "bench_gate: {:18} {:9} {}t  base {:>12}  cur {:>12.0}  ratio {:>5}  {}",
            v.row.workload,
            v.row.stage,
            v.row.threads,
            base,
            v.row.points_per_sec,
            if v.ratio.is_nan() { "-".to_string() } else { format!("{:.2}", v.ratio) },
            v.status,
        );
    }

    if let Some(out) = out_path {
        if let Err(e) = std::fs::write(&out, render_report(&verdicts, threshold_pct, regressions)) {
            eprintln!("bench_gate: cannot write report {out}: {e}");
            return 2;
        }
        println!("bench_gate: report written to {out}");
    }

    if regressions > 0 {
        eprintln!(
            "bench_gate: {regressions} row(s) regressed more than {threshold_pct}% \
             (set NUMARCK_BENCH_GATE=off to skip, or refresh the baseline if the \
             change is intentional)"
        );
        1
    } else {
        println!("bench_gate: pass ({} rows compared)", verdicts.len());
        0
    }
}

/// Extract the result rows from one harness JSON file. Line-based: the
/// harness writes one `{"workload": ...}` object per line inside the
/// `"results"` array; `"kernels"` rows have no `"workload"` key and are
/// skipped naturally.
fn read_rows(path: &str) -> Result<Vec<Row>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let mut rows = Vec::new();
    let mut in_results = false;
    for line in text.lines() {
        let t = line.trim();
        if t.starts_with("\"results\"") {
            in_results = true;
            continue;
        }
        if !in_results {
            continue;
        }
        if t.starts_with(']') {
            break;
        }
        let (Some(workload), Some(stage)) = (field_str(t, "workload"), field_str(t, "stage"))
        else {
            continue;
        };
        let (Some(threads), Some(points), Some(pps)) = (
            field_num(t, "threads"),
            field_num(t, "points"),
            field_num(t, "points_per_sec"),
        ) else {
            return Err(format!("malformed result row in {path}: {t}"));
        };
        rows.push(Row {
            workload,
            stage,
            threads: threads as u64,
            points: points as u64,
            points_per_sec: pps,
        });
    }
    if rows.is_empty() {
        return Err(format!("no result rows found in {path}"));
    }
    Ok(rows)
}

/// `"key": "value"` string field from a one-line JSON object.
fn field_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')?;
    Some(line[start..start + end].to_string())
}

/// `"key": 123.4` numeric field from a one-line JSON object.
fn field_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn render_report(verdicts: &[Verdict], threshold_pct: f64, regressions: usize) -> String {
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"gate\": \"numarck-bench bench_gate\",");
    let _ = writeln!(s, "  \"threshold_pct\": {threshold_pct},");
    let _ = writeln!(s, "  \"regressions\": {regressions},");
    let _ = writeln!(s, "  \"pass\": {},", regressions == 0);
    let _ = writeln!(s, "  \"rows\": [");
    for (i, v) in verdicts.iter().enumerate() {
        let comma = if i + 1 == verdicts.len() { "" } else { "," };
        let base = v.baseline_pps.map_or("null".to_string(), |p| format!("{p:.1}"));
        let ratio =
            if v.ratio.is_nan() { "null".to_string() } else { format!("{:.4}", v.ratio) };
        let _ = writeln!(
            s,
            "    {{\"workload\": \"{}\", \"stage\": \"{}\", \"threads\": {}, \
             \"points\": {}, \"current_points_per_sec\": {:.1}, \
             \"baseline_points_per_sec\": {base}, \"ratio\": {ratio}, \
             \"status\": \"{}\"}}{comma}",
            v.row.workload, v.row.stage, v.row.threads, v.row.points, v.row.points_per_sec,
            v.status,
        );
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_extraction() {
        let line = "    {\"workload\": \"flash\", \"stage\": \"encode\", \"points\": 8192, \
                    \"threads\": 2, \"secs\": 0.001, \"points_per_sec\": 8192000.0}";
        assert_eq!(field_str(line, "workload").unwrap(), "flash");
        assert_eq!(field_str(line, "stage").unwrap(), "encode");
        assert_eq!(field_num(line, "points").unwrap(), 8192.0);
        assert_eq!(field_num(line, "threads").unwrap(), 2.0);
        assert_eq!(field_num(line, "points_per_sec").unwrap(), 8192000.0);
        assert_eq!(field_num(line, "missing"), None);
    }
}
