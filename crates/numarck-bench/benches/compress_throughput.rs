//! Encode/decode throughput of the NUMARCK compressor per strategy and
//! precision — the in-situ viability question: compression must be much
//! cheaper than the I/O it saves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use numarck::{decode, Compressor, Config, Strategy};

fn make_pair(n: usize) -> (Vec<f64>, Vec<f64>) {
    let mut rng = numarck_par::rng::Xoshiro256PlusPlus::seed_from_u64(11);
    let prev: Vec<f64> = (0..n).map(|_| 10.0 + rng.uniform(0.0, 5.0)).collect();
    let curr: Vec<f64> =
        prev.iter().map(|v| v * (1.0 + rng.normal_with(0.0, 0.003))).collect();
    (prev, curr)
}

fn bench_compress(c: &mut Criterion) {
    let n = 1 << 18; // 256 Ki points = 2 MiB per iteration
    let (prev, curr) = make_pair(n);
    let mut group = c.benchmark_group("compress");
    group.throughput(Throughput::Bytes((n * 8) as u64));
    group.sample_size(10);
    for strategy in Strategy::all() {
        for bits in [8u8, 10] {
            let config = Config::new(bits, 0.001, strategy).expect("valid");
            let compressor = Compressor::new(config);
            group.bench_with_input(
                BenchmarkId::new(strategy.name(), format!("B{bits}")),
                &compressor,
                |b, comp| {
                    b.iter(|| comp.compress(&prev, &curr).expect("finite"));
                },
            );
        }
    }
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let n = 1 << 18;
    let (prev, curr) = make_pair(n);
    let config = Config::new(8, 0.001, Strategy::Clustering).expect("valid");
    let (block, _) = Compressor::new(config).compress(&prev, &curr).expect("finite");
    let mut group = c.benchmark_group("decode");
    group.throughput(Throughput::Bytes((n * 8) as u64));
    group.sample_size(10);
    group.bench_function("reconstruct_parallel", |b| {
        b.iter(|| decode::reconstruct(&prev, &block).expect("valid"));
    });
    group.bench_function("reconstruct_sequential", |b| {
        b.iter(|| decode::reconstruct_seq(&prev, &block).expect("valid"));
    });
    group.finish();
}

fn bench_fpc_postpass(c: &mut Criterion) {
    let n = 1 << 16;
    let (_, curr) = make_pair(n);
    let mut group = c.benchmark_group("fpc");
    group.throughput(Throughput::Bytes((n * 8) as u64));
    group.sample_size(10);
    group.bench_function("compress", |b| b.iter(|| numarck::fpc::compress(&curr)));
    let packed = numarck::fpc::compress(&curr);
    group.bench_function("decompress", |b| {
        b.iter(|| numarck::fpc::decompress(&packed).expect("valid"))
    });
    group.finish();
}

criterion_group!(benches, bench_compress, bench_decode, bench_fpc_postpass);
criterion_main!(benches);
