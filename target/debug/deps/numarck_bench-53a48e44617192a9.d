/root/repo/target/debug/deps/numarck_bench-53a48e44617192a9.d: crates/numarck-bench/src/lib.rs crates/numarck-bench/src/data.rs crates/numarck-bench/src/report.rs crates/numarck-bench/src/run.rs

/root/repo/target/debug/deps/numarck_bench-53a48e44617192a9: crates/numarck-bench/src/lib.rs crates/numarck-bench/src/data.rs crates/numarck-bench/src/report.rs crates/numarck-bench/src/run.rs

crates/numarck-bench/src/lib.rs:
crates/numarck-bench/src/data.rs:
crates/numarck-bench/src/report.rs:
crates/numarck-bench/src/run.rs:
