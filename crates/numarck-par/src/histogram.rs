//! Parallel fixed-bin histograms.
//!
//! Both the equal-width binning strategy and the histogram-seeded K-means
//! initialisation (paper §II-C) need a histogram over millions of change
//! ratios. Each worker fills a private count vector over its chunk; the
//! partials are merged bin-wise at the end, so there is no shared mutable
//! state and the result is independent of scheduling.

use rayon::prelude::*;

use crate::chunk::chunk_size_for;

/// Describes a uniform binning of the closed interval `[lo, hi]` into
/// `bins` equal-width bins.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSpec {
    /// Inclusive lower edge of the first bin.
    pub lo: f64,
    /// Inclusive upper edge of the last bin.
    pub hi: f64,
    /// Number of bins (>= 1).
    pub bins: usize,
}

impl HistogramSpec {
    /// Create a spec; panics on invalid arguments (`bins == 0`, non-finite
    /// edges, or `hi < lo`). A degenerate `lo == hi` interval is allowed and
    /// maps everything to bin 0.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins >= 1, "histogram needs at least one bin");
        assert!(lo.is_finite() && hi.is_finite(), "histogram edges must be finite");
        assert!(hi >= lo, "histogram hi must be >= lo");
        Self { lo, hi, bins }
    }

    /// Width of each bin (0 for a degenerate interval).
    #[inline]
    pub fn width(&self) -> f64 {
        (self.hi - self.lo) / self.bins as f64
    }

    /// Bin index for `x`, or `None` when `x` lies outside `[lo, hi]` or is
    /// NaN. The upper edge is inclusive (last bin is closed).
    #[inline]
    pub fn bin_of(&self, x: f64) -> Option<usize> {
        if x.is_nan() || x < self.lo || x > self.hi {
            return None;
        }
        if self.hi == self.lo {
            return Some(0);
        }
        let t = (x - self.lo) / (self.hi - self.lo);
        let idx = (t * self.bins as f64) as usize;
        Some(idx.min(self.bins - 1))
    }

    /// Centre of bin `i`.
    #[inline]
    pub fn center(&self, i: usize) -> f64 {
        debug_assert!(i < self.bins);
        self.lo + (i as f64 + 0.5) * self.width()
    }

    /// Lower edge of bin `i`.
    #[inline]
    pub fn edge(&self, i: usize) -> f64 {
        self.lo + i as f64 * self.width()
    }
}

/// A filled histogram: the spec plus per-bin counts and the number of
/// out-of-range (or NaN) values encountered.
#[derive(Debug, Clone, PartialEq)]
pub struct FixedHistogram {
    /// The binning this histogram was filled with.
    pub spec: HistogramSpec,
    /// Count per bin.
    pub counts: Vec<u64>,
    /// Values that fell outside `[lo, hi]` or were NaN.
    pub out_of_range: u64,
}

impl FixedHistogram {
    /// Empty histogram for `spec`.
    pub fn empty(spec: HistogramSpec) -> Self {
        Self { spec, counts: vec![0; spec.bins], out_of_range: 0 }
    }

    /// Fold one value in.
    #[inline]
    pub fn add(&mut self, x: f64) {
        match self.spec.bin_of(x) {
            Some(i) => self.counts[i] += 1,
            None => self.out_of_range += 1,
        }
    }

    /// Merge another histogram filled with the same spec.
    pub fn merge(&mut self, other: &FixedHistogram) {
        assert_eq!(self.spec, other.spec, "cannot merge histograms with different specs");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.out_of_range += other.out_of_range;
    }

    /// Total in-range count.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Index of the most populated bin (`None` if all counts are zero).
    pub fn mode_bin(&self) -> Option<usize> {
        let (i, &c) = self.counts.iter().enumerate().max_by_key(|(_, &c)| c)?;
        (c > 0).then_some(i)
    }

    /// Sequential fill (used for small inputs and as a test oracle).
    pub fn fill_seq(spec: HistogramSpec, data: &[f64]) -> Self {
        let mut h = Self::empty(spec);
        for &x in data {
            h.add(x);
        }
        h
    }

    /// Parallel fill: per-chunk private histograms merged bin-wise.
    pub fn fill_par(spec: HistogramSpec, data: &[f64]) -> Self {
        if data.len() < 2 * crate::chunk::MIN_CHUNK {
            return Self::fill_seq(spec, data);
        }
        let chunk = chunk_size_for(data.len());
        data.par_chunks(chunk)
            .map(|c| Self::fill_seq(spec, c))
            .reduce(
                || Self::empty(spec),
                |mut a, b| {
                    a.merge(&b);
                    a
                },
            )
    }

    /// The `n` most populated bins, ordered by descending count, ties
    /// broken by bin index. Used by the K-means histogram seeding.
    pub fn top_bins(&self, n: usize) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.counts.len()).collect();
        order.sort_by(|&a, &b| self.counts[b].cmp(&self.counts[a]).then(a.cmp(&b)));
        order.truncate(n);
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> HistogramSpec {
        HistogramSpec::new(0.0, 10.0, 10)
    }

    #[test]
    fn bin_of_interior_points() {
        let s = spec();
        assert_eq!(s.bin_of(0.5), Some(0));
        assert_eq!(s.bin_of(9.99), Some(9));
        assert_eq!(s.bin_of(5.0), Some(5));
    }

    #[test]
    fn bin_of_edges() {
        let s = spec();
        assert_eq!(s.bin_of(0.0), Some(0));
        // Upper edge is closed: 10.0 belongs to the last bin.
        assert_eq!(s.bin_of(10.0), Some(9));
        assert_eq!(s.bin_of(-0.0001), None);
        assert_eq!(s.bin_of(10.0001), None);
        assert_eq!(s.bin_of(f64::NAN), None);
    }

    #[test]
    fn degenerate_interval_maps_to_bin_zero() {
        let s = HistogramSpec::new(3.0, 3.0, 5);
        assert_eq!(s.bin_of(3.0), Some(0));
        assert_eq!(s.bin_of(3.1), None);
        assert_eq!(s.width(), 0.0);
    }

    #[test]
    fn centers_and_edges() {
        let s = spec();
        assert!((s.center(0) - 0.5).abs() < 1e-12);
        assert!((s.center(9) - 9.5).abs() < 1e-12);
        assert!((s.edge(3) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn seq_fill_counts() {
        let data = [0.1, 0.2, 5.5, 9.9, 10.0, -1.0, f64::NAN];
        let h = FixedHistogram::fill_seq(spec(), &data);
        assert_eq!(h.counts[0], 2);
        assert_eq!(h.counts[5], 1);
        assert_eq!(h.counts[9], 2);
        assert_eq!(h.out_of_range, 2);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn par_fill_matches_seq() {
        let data: Vec<f64> = (0..200_000).map(|i| (i % 1000) as f64 / 100.0).collect();
        let s = spec();
        let hp = FixedHistogram::fill_par(s, &data);
        let hs = FixedHistogram::fill_seq(s, &data);
        assert_eq!(hp, hs);
    }

    #[test]
    fn merge_adds_counts() {
        let s = spec();
        let mut a = FixedHistogram::fill_seq(s, &[1.0, 2.0]);
        let b = FixedHistogram::fill_seq(s, &[1.5, 11.0]);
        a.merge(&b);
        assert_eq!(a.counts[1], 2);
        assert_eq!(a.counts[2], 1);
        assert_eq!(a.out_of_range, 1);
    }

    #[test]
    fn mode_and_top_bins() {
        let s = spec();
        let h = FixedHistogram::fill_seq(s, &[1.1, 1.2, 1.3, 5.5, 5.6, 9.0]);
        assert_eq!(h.mode_bin(), Some(1));
        assert_eq!(h.top_bins(2), vec![1, 5]);
        let empty = FixedHistogram::empty(s);
        assert_eq!(empty.mode_bin(), None);
    }

    #[test]
    #[should_panic(expected = "different specs")]
    fn merge_spec_mismatch_panics() {
        let mut a = FixedHistogram::empty(HistogramSpec::new(0.0, 1.0, 2));
        let b = FixedHistogram::empty(HistogramSpec::new(0.0, 2.0, 2));
        a.merge(&b);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn every_finite_value_lands_in_exactly_one_bucket(
                xs in proptest::collection::vec(-1e6f64..1e6, 0..500)
            ) {
                let s = HistogramSpec::new(-1e6, 1e6, 37);
                let h = FixedHistogram::fill_seq(s, &xs);
                prop_assert_eq!(h.total() + h.out_of_range, xs.len() as u64);
                prop_assert_eq!(h.out_of_range, 0);
            }

            #[test]
            fn bin_of_respects_edges(x in -100.0f64..100.0) {
                let s = HistogramSpec::new(-50.0, 50.0, 10);
                match s.bin_of(x) {
                    Some(i) => {
                        prop_assert!(i < s.bins);
                        // x must lie inside (or on the boundary of) bin i.
                        let lo = s.edge(i);
                        let hi = s.edge(i + 1).max(s.hi);
                        prop_assert!(x >= lo - 1e-9 && x <= hi + 1e-9);
                    }
                    None => prop_assert!(!(-50.0..=50.0).contains(&x)),
                }
            }

            #[test]
            fn par_equals_seq(xs in proptest::collection::vec(-10.0f64..10.0, 0..2000)) {
                let s = HistogramSpec::new(-10.0, 10.0, 16);
                prop_assert_eq!(
                    FixedHistogram::fill_par(s, &xs),
                    FixedHistogram::fill_seq(s, &xs)
                );
            }
        }
    }
}
