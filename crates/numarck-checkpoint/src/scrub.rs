//! Offline integrity scrubbing and chain repair.
//!
//! [`scrub`] is the detector: it re-reads every stored file, validates
//! it end to end (CRC, header, iteration/extension agreement) and moves
//! anything damaged into the store's `quarantine/` directory — never
//! deleting, so post-mortems keep their evidence.
//!
//! [`repair`] is the responder: after scrubbing it quarantines the
//! now-orphaned chain segments (intact deltas whose base or predecessor
//! is gone), then *re-anchors* the store by materializing a fresh full
//! checkpoint at the newest restartable iteration, so future deltas and
//! prunes have a sound base. The materialized full is built by chain
//! replay, so it carries the chain's accumulated (tolerance-bounded)
//! error — see DESIGN.md's failure-model section.

use std::path::PathBuf;

use numarck::error::NumarckError;

use crate::fault::diagnose_store;
use crate::format::{CheckpointFile, CheckpointKind};
use crate::restart::{LostIteration, RestartEngine};
use crate::store::{CheckpointStore, StoreEntry};

/// One file the scrubber pulled out of service.
#[derive(Debug, Clone)]
pub struct ScrubFinding {
    /// The damaged entry.
    pub entry: StoreEntry,
    /// What the validation failure was.
    pub reason: String,
    /// Where the file now lives.
    pub quarantined_to: PathBuf,
}

/// Cross-replica findings from scrubbing a store whose backend is a
/// [`ReplicatedBackend`](crate::replicated::ReplicatedBackend).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicaScrubReport {
    /// Files whose replica copies were cross-compared.
    pub files_compared: usize,
    /// Replica copies rewritten from a quorum-agreeing peer (read-repair).
    pub repaired: usize,
    /// Files where no replica held a valid copy; these fall through to
    /// the ordinary quarantine path.
    pub quorum_failures: usize,
}

/// Result of a [`scrub`] pass.
#[derive(Debug, Clone)]
pub struct ScrubReport {
    /// Files examined.
    pub checked: usize,
    /// Files that failed validation and were quarantined.
    pub quarantined: Vec<ScrubFinding>,
    /// Cross-replica comparison results — `None` unless the store sits
    /// on a replicated backend.
    pub replicas: Option<ReplicaScrubReport>,
}

impl ScrubReport {
    /// True when every stored file validated. Read-repaired replica
    /// copies don't count against cleanliness: after the repair the
    /// store *is* clean, and the repair itself is visible in
    /// [`ScrubReport::replicas`].
    pub fn is_clean(&self) -> bool {
        self.quarantined.is_empty()
    }
}

/// Validate every stored checkpoint file; quarantine the ones that fail.
///
/// A file fails when its bytes don't parse (bad magic, bad CRC, torn
/// tail), when its header claims a different iteration than its name, or
/// when its payload kind contradicts its extension. Damaged files are
/// *moved* to `quarantine/`, not deleted.
///
/// On a replicated backend a cross-replica pass runs first: every
/// replica's copy of every file is validated independently, and copies
/// that are missing or diverge from the quorum-agreeing content are
/// rewritten from a healthy peer (read-repair), so one scrub restores
/// full replication after a replica loses or corrupts files. Only when
/// *no* replica holds a valid copy does the file fall through to
/// quarantine.
pub fn scrub(store: &CheckpointStore) -> Result<ScrubReport, NumarckError> {
    let entries = store
        .list()
        .map_err(|e| NumarckError::Io(format!("store listing failed: {e}")))?;
    let checked = entries.len();
    crate::obs::scrub_runs_total().inc();
    crate::obs::scrub_checked_total().add(checked as u64);
    let replicas = match store.backend().as_replicated() {
        Some(rb) => Some(scrub_replicas(store, rb, &entries)?),
        None => None,
    };
    let mut quarantined = Vec::new();
    for entry in entries {
        let Some(reason) = validate(store, entry) else { continue };
        let quarantined_to = store
            .quarantine(entry.iteration, entry.is_full)
            .map_err(|e| NumarckError::Io(format!("quarantine failed: {e}")))?;
        crate::obs::quarantined_total().inc();
        numarck_obs::Registry::global().events().push(
            numarck_obs::Level::Error,
            format!("ckpt scrub quarantined iter={}: {reason}", entry.iteration),
        );
        quarantined.push(ScrubFinding { entry, reason, quarantined_to });
    }
    Ok(ScrubReport { checked, quarantined, replicas })
}

/// Cross-compare every replica's copy of every listed file, rewriting
/// missing/divergent copies from the plurality of *validating* copies.
///
/// When no copy validates, the replicas are still aligned to the
/// byte-plurality of whatever copies exist — corrupt bytes, but
/// identical corrupt bytes, so the quarantine rename that follows can
/// reach its write quorum instead of wedging the scrub.
fn scrub_replicas(
    store: &CheckpointStore,
    rb: &crate::replicated::ReplicatedBackend,
    entries: &[StoreEntry],
) -> Result<ReplicaScrubReport, NumarckError> {
    let mut report = ReplicaScrubReport::default();
    for entry in entries {
        report.files_compared += 1;
        let path = store.path_of(entry.iteration, entry.is_full);
        let copies: Vec<Option<Vec<u8>>> =
            (0..rb.replica_count()).map(|i| rb.read_replica(i, &path).ok()).collect();
        let valid = |bytes: &[u8]| match CheckpointFile::from_bytes(bytes) {
            Ok(f) => {
                f.iteration == entry.iteration
                    && matches!(f.kind, CheckpointKind::Full(_)) == entry.is_full
            }
            Err(_) => false,
        };
        let reference =
            plurality(copies.iter().filter_map(|c| c.as_deref()).filter(|b| valid(b)));
        match reference {
            Some(reference) => {
                let mut fixed = 0usize;
                for (i, copy) in copies.iter().enumerate() {
                    if copy.as_deref() == Some(reference) {
                        continue;
                    }
                    rb.write_replica(i, &path, reference).map_err(|e| {
                        NumarckError::Io(format!("read-repair of replica {i} failed: {e}"))
                    })?;
                    crate::obs::replica_repairs_total().inc();
                    report.repaired += 1;
                    fixed += 1;
                }
                if fixed > 0 {
                    numarck_obs::Registry::global().events().push(
                        numarck_obs::Level::Warn,
                        format!(
                            "ckpt scrub read-repaired {fixed} replica cop{} of iter={}",
                            if fixed == 1 { "y" } else { "ies" },
                            entry.iteration
                        ),
                    );
                }
            }
            None => {
                report.quorum_failures += 1;
                crate::obs::replica_quorum_failures_total().inc();
                numarck_obs::Registry::global().events().push(
                    numarck_obs::Level::Error,
                    format!("ckpt scrub: no replica holds a valid copy of iter={}", entry.iteration),
                );
                let best = plurality(copies.iter().filter_map(|c| c.as_deref())).map(<[u8]>::to_vec);
                if let Some(best) = best {
                    for (i, copy) in copies.iter().enumerate() {
                        if copy.as_deref() != Some(best.as_slice()) {
                            rb.write_replica(i, &path, &best).map_err(|e| {
                                NumarckError::Io(format!(
                                    "replica {i} alignment before quarantine failed: {e}"
                                ))
                            })?;
                        }
                    }
                }
            }
        }
    }
    Ok(report)
}

/// Most common byte-content among `candidates`; earlier items win ties
/// (mirroring quorum reads, where the lowest replica index wins).
fn plurality<'a>(candidates: impl Iterator<Item = &'a [u8]>) -> Option<&'a [u8]> {
    let mut groups: Vec<(&[u8], usize)> = Vec::new();
    for c in candidates {
        if let Some(g) = groups.iter_mut().find(|(d, _)| *d == c) {
            g.1 += 1;
        } else {
            groups.push((c, 1));
        }
    }
    groups.into_iter().reduce(|best, g| if g.1 > best.1 { g } else { best }).map(|(d, _)| d)
}

/// `None` when the entry validates; otherwise why it doesn't.
fn validate(store: &CheckpointStore, entry: StoreEntry) -> Option<String> {
    let bytes = match store.read_raw(entry.iteration, entry.is_full) {
        Ok(bytes) => bytes,
        Err(e) => return Some(format!("unreadable: {e}")),
    };
    let file = match CheckpointFile::from_bytes(&bytes) {
        Ok(file) => file,
        Err(e) => return Some(e.to_string()),
    };
    if file.iteration != entry.iteration {
        return Some(format!(
            "header claims iteration {}, file name says {}",
            file.iteration, entry.iteration
        ));
    }
    let is_full_payload = matches!(file.kind, CheckpointKind::Full(_));
    if is_full_payload != entry.is_full {
        return Some(format!(
            "payload kind ({}) contradicts extension ({})",
            if is_full_payload { "full" } else { "delta" },
            if entry.is_full { "full" } else { "delta" },
        ));
    }
    None
}

/// Result of a [`repair`] pass.
#[derive(Debug, Clone)]
pub struct RepairReport {
    /// The scrub that ran first.
    pub scrub: ScrubReport,
    /// The iteration the store was re-anchored at (newest restartable),
    /// or `None` when nothing in the store is restartable.
    pub anchored_at: Option<u64>,
    /// Whether a fresh full checkpoint was materialized at the anchor
    /// (false when the anchor already was a full checkpoint).
    pub wrote_full: bool,
    /// Iterations given up during repair: their files were intact but
    /// their restart chains ran through quarantined data.
    pub lost: Vec<LostIteration>,
}

/// Scrub, then put the store back into a fully-restartable state.
///
/// After the scrub pass, intact files can still be unrestartable — a
/// delta whose base full or predecessor delta got quarantined is an
/// orphan. `repair` quarantines those orphans (recording them in
/// `lost`), then writes a fresh full checkpoint at the newest
/// restartable iteration if that iteration only had a delta, so the
/// store ends with every listed iteration restartable and a full
/// checkpoint at its head.
pub fn repair(store: &CheckpointStore) -> Result<RepairReport, NumarckError> {
    let scrub_report = scrub(store)?;
    let diagnosis = diagnose_store(store)
        .map_err(|e| NumarckError::Io(format!("diagnosis failed: {e}")))?;
    let mut lost = Vec::new();
    let mut anchored_at = None;
    for d in &diagnosis {
        match &d.error {
            None => anchored_at = Some(anchored_at.map_or(d.iteration, |a: u64| a.max(d.iteration))),
            Some(reason) => {
                store
                    .quarantine(d.iteration, d.is_full)
                    .map_err(|e| NumarckError::Io(format!("quarantine failed: {e}")))?;
                lost.push(LostIteration { iteration: d.iteration, reason: reason.clone() });
            }
        }
    }
    // Newest-first reads better in reports (mirrors degraded restart).
    lost.sort_by_key(|l| std::cmp::Reverse(l.iteration));
    let mut wrote_full = false;
    if let Some(anchor) = anchored_at {
        let already_full = diagnosis
            .iter()
            .any(|d| d.iteration == anchor && d.is_full && d.error.is_none());
        if !already_full {
            let result = RestartEngine::new(store.clone()).restart_at(anchor)?;
            let file = CheckpointFile::new(anchor, CheckpointKind::Full(result.vars));
            store
                .write(&file)
                .map_err(|e| NumarckError::Io(format!("anchor write failed: {e}")))?;
            wrote_full = true;
        }
    }
    crate::obs::repairs_total().inc();
    crate::obs::repair_lost_total().add(lost.len() as u64);
    if !lost.is_empty() || wrote_full {
        numarck_obs::Registry::global().events().push(
            numarck_obs::Level::Info,
            format!(
                "ckpt repair anchored_at={anchored_at:?} wrote_full={wrote_full} lost={}",
                lost.len()
            ),
        );
    }
    Ok(RepairReport { scrub: scrub_report, anchored_at, wrote_full, lost })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::StorageBackend;
    use crate::fault::{inject, verify_store, Fault};
    use crate::manager::{CheckpointManager, ManagerPolicy};
    use crate::replicated::ReplicatedBackend;
    use crate::store::testutil::TempDir;
    use crate::VariableSet;
    use numarck::{Config, Strategy};
    use std::sync::Arc;

    fn fill(store: &CheckpointStore, iters: u64, full_interval: u64) {
        let cfg = Config::new(8, 0.001, Strategy::Clustering).unwrap();
        let mut mgr =
            CheckpointManager::new(store.clone(), cfg, ManagerPolicy::fixed(full_interval));
        let mut state: Vec<f64> = (0..150).map(|i| 1.0 + (i % 9) as f64).collect();
        for it in 0..iters {
            if it > 0 {
                for v in state.iter_mut() {
                    *v *= 1.002;
                }
            }
            let mut vars = VariableSet::new();
            vars.insert("x".into(), state.clone());
            mgr.checkpoint(it, &vars).unwrap();
        }
    }

    fn build(tmp: &TempDir, iters: u64, full_interval: u64) -> CheckpointStore {
        let store = CheckpointStore::open(&tmp.0).unwrap();
        fill(&store, iters, full_interval);
        store
    }

    /// A store over three fs replicas (write quorum 2) plus the backend
    /// handle for poking at individual replicas.
    fn build_replicated(
        tmp: &TempDir,
        iters: u64,
        full_interval: u64,
    ) -> (CheckpointStore, Arc<ReplicatedBackend>) {
        let rb = Arc::new(ReplicatedBackend::with_fs_replicas(&tmp.0, 3, 2).unwrap());
        let store =
            CheckpointStore::open_with(&tmp.0, rb.clone() as Arc<dyn StorageBackend>).unwrap();
        fill(&store, iters, full_interval);
        (store, rb)
    }

    /// Physical on-disk path of replica `i`'s copy of an entry.
    fn replica_path(tmp: &TempDir, i: usize, store: &CheckpointStore, it: u64, full: bool) -> PathBuf {
        let name = store.path_of(it, full);
        tmp.0.join(format!("@replica-{i}")).join(name.file_name().unwrap())
    }

    #[test]
    fn scrub_of_healthy_store_is_clean_and_touches_nothing() {
        let tmp = TempDir::new("scrub-clean");
        let store = build(&tmp, 10, 4);
        let report = scrub(&store).unwrap();
        assert!(report.is_clean());
        assert_eq!(report.checked, 10);
        assert_eq!(store.list().unwrap().len(), 10);
    }

    #[test]
    fn scrub_quarantines_exactly_the_damaged_files() {
        let tmp = TempDir::new("scrub-quarantine");
        let store = build(&tmp, 12, 4);
        inject(&store.path_of(5, false), Fault::BitFlip { offset: 33, mask: 0x40 }).unwrap();
        inject(&store.path_of(9, false), Fault::Truncate { keep: 12 }).unwrap();
        let report = scrub(&store).unwrap();
        assert_eq!(report.checked, 12);
        let bad: Vec<u64> = report.quarantined.iter().map(|f| f.entry.iteration).collect();
        assert_eq!(bad, vec![5, 9]);
        for f in &report.quarantined {
            assert!(f.quarantined_to.starts_with(store.quarantine_dir()));
            assert!(std::fs::metadata(&f.quarantined_to).unwrap().is_file());
            assert!(!f.reason.is_empty());
        }
        // The ten healthy files are still in service.
        assert_eq!(store.list().unwrap().len(), 10);
        // A second scrub finds nothing left to do.
        assert!(scrub(&store).unwrap().is_clean());
    }

    #[test]
    fn scrub_catches_name_header_mismatch() {
        let tmp = TempDir::new("scrub-mismatch");
        let store = build(&tmp, 2, 10);
        // Copy iteration 0's full under iteration 7's name: valid CRC,
        // lying name.
        let bytes = store.read_raw(0, true).unwrap();
        std::fs::write(store.path_of(7, true), bytes).unwrap();
        let report = scrub(&store).unwrap();
        assert_eq!(report.quarantined.len(), 1);
        assert_eq!(report.quarantined[0].entry.iteration, 7);
        assert!(report.quarantined[0].reason.contains("claims iteration 0"));
    }

    #[test]
    fn repair_reanchors_after_mid_chain_damage() {
        let tmp = TempDir::new("repair-anchor");
        // Fulls at 0, 4, 8; deltas to 10.
        let store = build(&tmp, 11, 4);
        inject(&store.path_of(9, false), Fault::BitFlip { offset: 50, mask: 0x02 }).unwrap();
        let report = repair(&store).unwrap();
        assert_eq!(report.scrub.quarantined.len(), 1);
        // Iteration 10's file was intact but orphaned by losing 9.
        let lost: Vec<u64> = report.lost.iter().map(|l| l.iteration).collect();
        assert_eq!(lost, vec![10]);
        // Newest restartable was 8 — already a full, so nothing written.
        assert_eq!(report.anchored_at, Some(8));
        assert!(!report.wrote_full);
        // The store is fully restartable again.
        assert!(verify_store(&store).unwrap().iter().all(|h| h.restartable));
    }

    #[test]
    fn repair_materializes_a_full_when_the_anchor_was_a_delta() {
        let tmp = TempDir::new("repair-full");
        // Fulls at 0, 4, 8; deltas to 10; newest restartable (10) is a
        // delta, so repair must write a full there.
        let store = build(&tmp, 11, 4);
        inject(&store.path_of(2, false), Fault::Truncate { keep: 8 }).unwrap();
        let report = repair(&store).unwrap();
        assert_eq!(report.anchored_at, Some(10));
        assert!(report.wrote_full);
        // Iterations 2 and 3 rode on the truncated delta.
        let lost: Vec<u64> = report.lost.iter().map(|l| l.iteration).collect();
        assert_eq!(lost, vec![3]);
        assert!(std::fs::metadata(store.path_of(10, true)).unwrap().is_file());
        assert!(verify_store(&store).unwrap().iter().all(|h| h.restartable));
        // The materialized full carries only the chain's bounded error:
        // restarting at 10 is now a zero-delta read of it.
        let r = RestartEngine::new(store.clone()).restart_at(10).unwrap();
        assert_eq!(r.base_iteration, 10);
        assert_eq!(r.deltas_applied, 0);
    }

    #[test]
    fn repair_of_unrecoverable_store_reports_no_anchor() {
        let tmp = TempDir::new("repair-empty");
        let store = build(&tmp, 3, 10);
        // Destroy the only full: nothing restarts.
        inject(&store.path_of(0, true), Fault::Truncate { keep: 4 }).unwrap();
        let report = repair(&store).unwrap();
        assert_eq!(report.anchored_at, None);
        assert!(!report.wrote_full);
        assert_eq!(report.lost.len(), 2, "both orphan deltas recorded");
        assert!(store.list().unwrap().is_empty());
    }

    #[test]
    fn replica_scrub_of_healthy_store_repairs_nothing() {
        let tmp = TempDir::new("repl-scrub-clean");
        let (store, _rb) = build_replicated(&tmp, 6, 3);
        let report = scrub(&store).unwrap();
        assert!(report.is_clean());
        let rep = report.replicas.expect("replicated store must get a replica pass");
        assert_eq!(rep, ReplicaScrubReport { files_compared: 6, repaired: 0, quorum_failures: 0 });
    }

    #[test]
    fn replica_scrub_repairs_a_deleted_copy() {
        let tmp = TempDir::new("repl-scrub-del");
        let (store, rb) = build_replicated(&tmp, 6, 3);
        std::fs::remove_file(replica_path(&tmp, 0, &store, 1, false)).unwrap();
        // Majority reads keep the chain restartable even before scrub.
        assert!(verify_store(&store).unwrap().iter().all(|h| h.restartable));
        let before = crate::obs::replica_repairs_total().get();
        let report = scrub(&store).unwrap();
        assert!(report.is_clean());
        assert_eq!(report.replicas.unwrap().repaired, 1);
        assert!(crate::obs::replica_repairs_total().get() > before);
        // Replica 0's copy is back and byte-identical to its peers.
        let path = store.path_of(1, false);
        assert_eq!(rb.read_replica(0, &path).unwrap(), rb.read_replica(1, &path).unwrap());
        // A second pass finds nothing left to repair.
        assert_eq!(scrub(&store).unwrap().replicas.unwrap().repaired, 0);
    }

    #[test]
    fn replica_scrub_repairs_a_bit_rotted_copy() {
        let tmp = TempDir::new("repl-scrub-rot");
        let (store, rb) = build_replicated(&tmp, 6, 3);
        inject(&replica_path(&tmp, 1, &store, 3, true), Fault::BitFlip { offset: 40, mask: 0x10 })
            .unwrap();
        let report = scrub(&store).unwrap();
        assert!(report.is_clean(), "rot on one replica is repaired, not quarantined");
        assert_eq!(report.replicas.unwrap().repaired, 1);
        let path = store.path_of(3, true);
        let copies: Vec<_> = (0..3).map(|i| rb.read_replica(i, &path).unwrap()).collect();
        assert!(copies.windows(2).all(|w| w[0] == w[1]));
        assert!(verify_store(&store).unwrap().iter().all(|h| h.restartable));
    }

    #[test]
    fn replica_scrub_restores_a_wiped_replica() {
        let tmp = TempDir::new("repl-scrub-wipe");
        let (store, rb) = build_replicated(&tmp, 6, 3);
        // Lose replica 2's entire contents.
        for e in store.list().unwrap() {
            std::fs::remove_file(replica_path(&tmp, 2, &store, e.iteration, e.is_full)).unwrap();
        }
        let report = scrub(&store).unwrap();
        assert!(report.is_clean());
        assert_eq!(report.replicas.unwrap().repaired, 6, "one rewrite per lost file");
        for e in store.list().unwrap() {
            let path = store.path_of(e.iteration, e.is_full);
            assert_eq!(rb.read_replica(2, &path).unwrap(), rb.read_replica(0, &path).unwrap());
        }
    }

    #[test]
    fn replica_scrub_quarantines_when_no_copy_is_valid() {
        let tmp = TempDir::new("repl-scrub-allbad");
        let (store, _rb) = build_replicated(&tmp, 6, 3);
        // Damage every replica's copy of the same delta — no quorum of
        // valid bytes exists anywhere.
        for i in 0..3 {
            inject(&replica_path(&tmp, i, &store, 4, false), Fault::Truncate { keep: 10 + i })
                .unwrap();
        }
        let before = crate::obs::replica_quorum_failures_total().get();
        let report = scrub(&store).unwrap();
        assert_eq!(report.replicas.unwrap().quorum_failures, 1);
        assert!(crate::obs::replica_quorum_failures_total().get() > before);
        let bad: Vec<u64> = report.quarantined.iter().map(|f| f.entry.iteration).collect();
        assert_eq!(bad, vec![4]);
        // The evidence survives in (every replica's) quarantine dir.
        assert!(std::fs::metadata(
            tmp.0.join("@replica-0").join(crate::store::QUARANTINE_DIR).join("ckpt_0000000004.delta")
        )
        .unwrap()
        .is_file());
        // Repair re-anchors around the loss.
        let rep = repair(&store).unwrap();
        assert!(verify_store(&store).unwrap().iter().all(|h| h.restartable));
        assert!(rep.lost.iter().all(|l| l.iteration == 5), "only the orphaned follower is lost");
    }

    #[test]
    fn repair_of_healthy_store_is_a_noop() {
        let tmp = TempDir::new("repair-noop");
        let store = build(&tmp, 9, 4);
        let report = repair(&store).unwrap();
        assert!(report.scrub.is_clean());
        assert!(report.lost.is_empty());
        // Fulls land at 0, 4, 8, so the anchor is already a full.
        assert_eq!(report.anchored_at, Some(8));
        assert!(!report.wrote_full);
        assert_eq!(store.list().unwrap().len(), 9);
    }
}
