/root/repo/target/debug/deps/ext3_adaptive-39ffd6602f611b14.d: crates/numarck-bench/src/bin/ext3_adaptive.rs

/root/repo/target/debug/deps/ext3_adaptive-39ffd6602f611b14: crates/numarck-bench/src/bin/ext3_adaptive.rs

crates/numarck-bench/src/bin/ext3_adaptive.rs:
