//! Workspace umbrella crate: examples and integration tests live here.
