//! # numarck-obs — zero-dependency observability
//!
//! A std-only metrics subsystem for the NUMARCK stack: the encoder
//! pipeline, the checkpoint store, and the serve layer all record into
//! the same small vocabulary of instruments, and everything is exposed
//! the same three ways (wire stats, Prometheus text, JSON snapshot).
//!
//! * [`Counter`] — monotone `u64`; the hot path is a single relaxed
//!   atomic add, nothing else.
//! * [`Gauge`] — signed level (queue depth, open sessions).
//! * [`Histogram`] — fixed log-bucketed atomic histogram (64 octaves ×
//!   4 sub-buckets ⇒ ≤ 12.5% relative quantile error at the midpoint),
//!   with p50/p90/p99 extraction and a running sum for means.
//! * [`Span`] — RAII timer recording elapsed nanoseconds into a
//!   histogram on drop. Span *timing* can be globally disabled
//!   ([`set_timing_enabled`]) so benchmarks can measure the
//!   instrumentation delta; counters are always on.
//! * [`EventRing`] — bounded lossy ring of recent notable events
//!   (retries, quarantines, rejected connections); overwrites the
//!   oldest entry instead of growing or blocking.
//! * [`Registry`] — named instruments, get-or-create. One process-wide
//!   [`Registry::global`] for library code, plus per-component private
//!   registries (each server owns one so two servers in one process do
//!   not mix counters).
//!
//! Exposition lives in [`snapshot`]: [`Registry::snapshot`] freezes a
//! point-in-time view that renders to Prometheus text
//! ([`snapshot::render_prometheus`]) or JSON
//! ([`snapshot::render_json`]); [`http`] serves the Prometheus form
//! over a minimal plain-HTTP listener (`GET /metrics`).
//!
//! Naming scheme (normative, see DESIGN.md §7): metric names are
//! `snake_case` with a subsystem prefix (`numarck_`, `ckpt_`, `nsrv_`,
//! `par_`), counters end in `_total`, duration histograms end in `_ns`
//! and record nanoseconds, size histograms end in `_bytes`.

pub mod http;
pub mod instrument;
pub mod registry;
pub mod ring;
pub mod snapshot;

pub use http::MetricsServer;
pub use instrument::{
    set_timing_enabled, timing_enabled, Counter, Gauge, Histogram, Span, BUCKETS,
};
pub use registry::Registry;
pub use ring::{Event, EventRing, Level};
pub use snapshot::{render_json, render_prometheus, HistogramSummary, Snapshot};
