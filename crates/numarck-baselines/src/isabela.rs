//! ISABELA: In-situ Sort-And-B-spline Error-bounded Lossy Abatement
//! (Lakshminarasimhan et al., Euro-Par 2011 — reference \[15\]).
//!
//! The preconditioning insight: any window of `W₀` values becomes a
//! monotone — hence extremely smooth — curve once sorted, and a monotone
//! curve fits a cubic B-spline with a *fixed* small number of
//! coefficients (`P_I = 30`) regardless of the window's original entropy.
//! The price is storing the sort permutation: `⌈log2 W₀⌉` bits per value.
//!
//! Storage per full window is therefore `W₀·log2(W₀) + P_I·64` bits,
//! which for the paper's settings gives exactly the Table I constants:
//! `W₀ = 512, P_I = 30` → 80.078% and `W₀ = 256` → 75.781%.

use numarck_linalg::bspline::CubicBSpline;
use rayon::prelude::*;

use crate::LossyCompressor;

/// Per-point relative-error quantization (the full ISABELA design: the
/// spline approximates, then a small quantized correction per point
/// recovers most of the residual, which is how the original system hits
/// its 0.99-correlation target on hostile data).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorQuant {
    /// Bits per correction code (2..=16).
    pub bits: u8,
    /// Corrections cover relative errors in `[-max_rel, +max_rel]`;
    /// larger residuals are clamped to the range edge.
    pub max_rel: f64,
}

impl Default for ErrorQuant {
    fn default() -> Self {
        Self { bits: 6, max_rel: 0.1 }
    }
}

/// ISABELA compressor configuration.
#[derive(Debug, Clone, Copy)]
pub struct IsabelaCompressor {
    /// Window size `W₀`.
    pub window: usize,
    /// B-spline coefficients per window `P_I`.
    pub coeffs_per_window: usize,
    /// Optional per-point error-correction stage.
    pub error_quant: Option<ErrorQuant>,
}

/// One compressed window.
#[derive(Debug, Clone, PartialEq)]
pub struct IsabelaWindow {
    /// Spline fitted to the sorted window.
    pub spline: CubicBSpline,
    /// `rank[i]`: position of original element `i` in the sorted order.
    pub ranks: Vec<u32>,
    /// Quantized relative-error corrections (rank order), when the
    /// error-quantization stage is enabled.
    pub error_codes: Option<Vec<u16>>,
}

/// A compressed data vector: consecutive windows (the last may be short).
#[derive(Debug, Clone, PartialEq)]
pub struct IsabelaCompressed {
    windows: Vec<IsabelaWindow>,
    num_points: usize,
    window_size: usize,
    error_quant: Option<ErrorQuant>,
}

impl IsabelaCompressor {
    /// Create with explicit `W₀` and `P_I`.
    ///
    /// # Panics
    /// Panics if `window < 2` or `coeffs_per_window < 4`.
    pub fn new(window: usize, coeffs_per_window: usize) -> Self {
        assert!(window >= 2, "window must be >= 2");
        assert!(coeffs_per_window >= 4, "cubic spline needs >= 4 coefficients");
        Self { window, coeffs_per_window, error_quant: None }
    }

    /// Enable the per-point error-correction stage.
    ///
    /// # Panics
    /// Panics unless `2 <= bits <= 16` and `max_rel > 0`.
    pub fn with_error_quantization(mut self, quant: ErrorQuant) -> Self {
        assert!((2..=16).contains(&quant.bits), "error quant bits must be 2..=16");
        assert!(quant.max_rel > 0.0, "max_rel must be positive");
        self.error_quant = Some(quant);
        self
    }

    /// The paper's CMIP5 setting: `W₀ = 512`, `P_I = 30`.
    pub fn cmip5_default() -> Self {
        Self::new(512, 30)
    }

    /// The paper's FLASH setting: `W₀ = 256`, `P_I = 30`.
    pub fn flash_default() -> Self {
        Self::new(256, 30)
    }

    /// Bits per rank index for this window size.
    pub fn index_bits(&self) -> u32 {
        (usize::BITS - (self.window - 1).leading_zeros()).max(1)
    }

    /// Compress `data` window by window (windows fit in parallel).
    pub fn compress(&self, data: &[f64]) -> IsabelaCompressed {
        let windows: Vec<IsabelaWindow> = data
            .par_chunks(self.window)
            .map(|chunk| {
                // argsort: order[r] = original index of rank r.
                let mut order: Vec<u32> = (0..chunk.len() as u32).collect();
                order.sort_by(|&a, &b| {
                    chunk[a as usize]
                        .partial_cmp(&chunk[b as usize])
                        .expect("finite data")
                        .then(a.cmp(&b))
                });
                let mut ranks = vec![0u32; chunk.len()];
                let mut sorted = Vec::with_capacity(chunk.len());
                for (r, &orig) in order.iter().enumerate() {
                    ranks[orig as usize] = r as u32;
                    sorted.push(chunk[orig as usize]);
                }
                let m = self.coeffs_per_window.min(chunk.len().max(4));
                let spline = CubicBSpline::fit(&sorted, m).expect("m >= 4, non-empty");
                let error_codes = self.error_quant.map(|q| {
                    let approx = spline.sample(sorted.len());
                    sorted
                        .iter()
                        .zip(&approx)
                        .map(|(&orig, &a)| {
                            // Relative residual (0 when orig is 0 — a
                            // zero has nothing to correct relative to).
                            let rel = if orig == 0.0 { 0.0 } else { (orig - a) / orig };
                            quantize_rel(rel, q)
                        })
                        .collect()
                });
                IsabelaWindow { spline, ranks, error_codes }
            })
            .collect();
        IsabelaCompressed {
            windows,
            num_points: data.len(),
            window_size: self.window,
            error_quant: self.error_quant,
        }
    }
}

impl IsabelaCompressed {
    /// Reconstruct: sample each window's spline (the sorted
    /// approximation) and scatter through the stored ranks.
    pub fn decompress(&self) -> Vec<f64> {
        let quant = self.error_quant;
        let mut out = vec![0.0; self.num_points];
        let chunks: Vec<&mut [f64]> = out.chunks_mut(self.window_size).collect();
        chunks.into_par_iter().zip(&self.windows).for_each(|(chunk, w)| {
            let mut sorted = w.spline.sample(chunk.len());
            if let (Some(codes), Some(q)) = (&w.error_codes, quant) {
                for (a, &code) in sorted.iter_mut().zip(codes) {
                    // rel = (orig − approx)/orig  ⇒  orig = approx/(1 − rel)
                    let rel = dequantize_rel(code, q);
                    if rel != 0.0 && (1.0 - rel) != 0.0 {
                        *a /= 1.0 - rel;
                    }
                }
            }
            for (i, slot) in chunk.iter_mut().enumerate() {
                *slot = sorted[w.ranks[i] as usize];
            }
        });
        out
    }

    /// Stored bits: per window, `len·⌈log2 W₀⌉` rank bits plus 64 bits
    /// per spline coefficient, plus the correction codes when present.
    pub fn stored_bits(&self) -> u64 {
        let idx_bits = (usize::BITS - (self.window_size - 1).leading_zeros()).max(1) as u64;
        self.windows
            .iter()
            .map(|w| {
                let base =
                    w.ranks.len() as u64 * idx_bits + w.spline.num_coeffs() as u64 * 64;
                let corr = match (&w.error_codes, self.error_quant) {
                    (Some(c), Some(q)) => c.len() as u64 * q.bits as u64,
                    _ => 0,
                };
                base + corr
            })
            .sum()
    }
}

/// Quantize a relative residual into a code (uniform over
/// `[-max_rel, max_rel]`, clamped).
fn quantize_rel(rel: f64, q: ErrorQuant) -> u16 {
    let levels = (1u32 << q.bits) as f64;
    let t = ((rel + q.max_rel) / (2.0 * q.max_rel)).clamp(0.0, 1.0);
    ((t * (levels - 1.0)).round() as u32).min((1 << q.bits) - 1) as u16
}

/// Inverse of [`quantize_rel`].
fn dequantize_rel(code: u16, q: ErrorQuant) -> f64 {
    let levels = (1u32 << q.bits) as f64;
    (code as f64 / (levels - 1.0)) * 2.0 * q.max_rel - q.max_rel
}

impl LossyCompressor for IsabelaCompressor {
    fn name(&self) -> &'static str {
        "ISABELA"
    }

    fn roundtrip(&self, data: &[f64]) -> (Vec<f64>, u64) {
        if data.is_empty() {
            return (Vec::new(), 0);
        }
        let c = self.compress(data);
        let bits = c.stored_bits();
        (c.decompress(), bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy(n: usize) -> Vec<f64> {
        let mut rng = numarck_par::rng::Xoshiro256PlusPlus::seed_from_u64(77);
        (0..n).map(|_| rng.uniform(-100.0, 100.0)).collect()
    }

    #[test]
    fn paper_ratio_cmip5_setting() {
        // W0=512, P_I=30: 1 - (512*9 + 30*64)/(512*64) = 80.078%.
        let data = noisy(512 * 20);
        let r = IsabelaCompressor::cmip5_default().compression_ratio(&data);
        assert!((r - 0.80078125).abs() < 1e-9, "ratio {r}");
    }

    #[test]
    fn paper_ratio_flash_setting() {
        // W0=256, P_I=30: 1 - (256*8 + 1920)/(256*64) = 75.781%.
        let data = noisy(256 * 20);
        let r = IsabelaCompressor::flash_default().compression_ratio(&data);
        assert!((r - 0.7578125).abs() < 1e-9, "ratio {r}");
    }

    #[test]
    fn index_bits_match_window() {
        assert_eq!(IsabelaCompressor::new(512, 30).index_bits(), 9);
        assert_eq!(IsabelaCompressor::new(256, 30).index_bits(), 8);
        assert_eq!(IsabelaCompressor::new(1000, 30).index_bits(), 10);
        assert_eq!(IsabelaCompressor::new(2, 4).index_bits(), 1);
    }

    #[test]
    fn sorting_precondition_beats_plain_spline_on_noise() {
        // The headline claim: on noise, ISABELA (sorted fit) reconstructs
        // far better than a plain spline with a similar coefficient
        // budget.
        let data = noisy(512 * 4);
        let isa = IsabelaCompressor::cmip5_default();
        let (isa_restored, _) = isa.roundtrip(&data);
        // Plain spline with the same total coefficient budget (30/window).
        let plain = crate::BSplineCompressor::new(30.0 * 4.0 / data.len() as f64);
        let (plain_restored, _) = plain.roundtrip(&data);
        let rmse = |rec: &[f64]| {
            (rec.iter().zip(&data).map(|(a, b)| (a - b) * (a - b)).sum::<f64>()
                / data.len() as f64)
                .sqrt()
        };
        let ri = rmse(&isa_restored);
        let rp = rmse(&plain_restored);
        assert!(ri * 10.0 < rp, "ISABELA rmse {ri} should be >10x below plain {rp}");
    }

    #[test]
    fn correlation_stays_high_on_noise() {
        let data = noisy(512 * 8);
        let (restored, _) = IsabelaCompressor::cmip5_default().roundtrip(&data);
        // Pearson by hand to avoid a dev-dependency cycle with numarck.
        let n = data.len() as f64;
        let ma = data.iter().sum::<f64>() / n;
        let mb = restored.iter().sum::<f64>() / n;
        let cov: f64 =
            data.iter().zip(&restored).map(|(a, b)| (a - ma) * (b - mb)).sum::<f64>() / n;
        let va = data.iter().map(|a| (a - ma) * (a - ma)).sum::<f64>() / n;
        let vb = restored.iter().map(|b| (b - mb) * (b - mb)).sum::<f64>() / n;
        let rho = cov / (va.sqrt() * vb.sqrt());
        assert!(rho > 0.99, "ISABELA's design target is rho >= 0.99, got {rho}");
    }

    #[test]
    fn short_trailing_window_handled() {
        let data = noisy(512 + 77);
        let c = IsabelaCompressor::cmip5_default().compress(&data);
        assert_eq!(c.windows.len(), 2);
        assert_eq!(c.windows[1].ranks.len(), 77);
        let restored = c.decompress();
        assert_eq!(restored.len(), data.len());
    }

    #[test]
    fn window_smaller_than_coeff_budget() {
        // 10-point window with P_I = 30: coefficient count clamps.
        let data = noisy(10);
        let c = IsabelaCompressor::new(512, 30).compress(&data);
        assert_eq!(c.windows.len(), 1);
        let restored = c.decompress();
        assert_eq!(restored.len(), 10);
    }

    #[test]
    fn ranks_are_a_permutation() {
        let data = noisy(512 * 2 + 13);
        let c = IsabelaCompressor::cmip5_default().compress(&data);
        for w in &c.windows {
            let mut seen = vec![false; w.ranks.len()];
            for &r in &w.ranks {
                assert!(!seen[r as usize], "duplicate rank");
                seen[r as usize] = true;
            }
        }
    }

    #[test]
    fn ties_are_stable() {
        let data = vec![5.0; 100];
        let c = IsabelaCompressor::new(50, 4).compress(&data);
        // With all-equal values, stable tie-break means rank == index.
        for w in &c.windows {
            for (i, &r) in w.ranks.iter().enumerate() {
                assert_eq!(r as usize, i);
            }
        }
        let restored = c.decompress();
        for v in restored {
            assert!((v - 5.0).abs() < 1e-6);
        }
    }

    #[test]
    fn empty_input() {
        let (restored, bits) = IsabelaCompressor::cmip5_default().roundtrip(&[]);
        assert!(restored.is_empty());
        assert_eq!(bits, 0);
    }

    #[test]
    fn error_quantization_improves_accuracy() {
        let data = noisy(512 * 4);
        let plain = IsabelaCompressor::cmip5_default();
        let corrected = IsabelaCompressor::cmip5_default()
            .with_error_quantization(ErrorQuant { bits: 8, max_rel: 0.2 });
        let rmse = |rec: &[f64]| {
            (rec.iter().zip(&data).map(|(a, b)| (a - b) * (a - b)).sum::<f64>()
                / data.len() as f64)
                .sqrt()
        };
        let (r_plain, bits_plain) = plain.roundtrip(&data);
        let (r_corr, bits_corr) = corrected.roundtrip(&data);
        assert!(
            rmse(&r_corr) < rmse(&r_plain) * 0.5,
            "corrected {} vs plain {}",
            rmse(&r_corr),
            rmse(&r_plain)
        );
        // Corrections cost exactly 8 extra bits per point.
        assert_eq!(bits_corr, bits_plain + data.len() as u64 * 8);
    }

    #[test]
    fn error_quantization_roundtrip_codes() {
        for q in [
            ErrorQuant { bits: 2, max_rel: 0.5 },
            ErrorQuant { bits: 6, max_rel: 0.1 },
            ErrorQuant { bits: 16, max_rel: 0.01 },
        ] {
            let step = 2.0 * q.max_rel / ((1u32 << q.bits) as f64 - 1.0);
            for i in 0..100 {
                let rel = -q.max_rel + (2.0 * q.max_rel) * i as f64 / 99.0;
                let back = dequantize_rel(quantize_rel(rel, q), q);
                assert!(
                    (back - rel).abs() <= step / 2.0 + 1e-12,
                    "bits={} rel={rel} back={back}",
                    q.bits
                );
            }
            // Out-of-range residuals clamp to the edges.
            assert_eq!(quantize_rel(10.0, q), ((1u32 << q.bits) - 1) as u16);
            assert_eq!(quantize_rel(-10.0, q), 0);
        }
    }

    #[test]
    #[should_panic(expected = "bits")]
    fn bad_quant_bits_rejected() {
        IsabelaCompressor::cmip5_default()
            .with_error_quantization(ErrorQuant { bits: 1, max_rel: 0.1 });
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            #[test]
            fn reconstruction_preserves_window_order_statistics(
                data in proptest::collection::vec(-1e3f64..1e3, 8..600)
            ) {
                // Within a window, the reconstruction of a larger original
                // value is never smaller than that of a smaller original
                // value (monotone spline sampled at sorted positions is
                // non-decreasing up to fit wiggle; ranks preserve order).
                let comp = IsabelaCompressor::new(64, 8);
                let c = comp.compress(&data);
                let restored = c.decompress();
                for (wi, w) in c.windows.iter().enumerate() {
                    let base = wi * 64;
                    for i in 0..w.ranks.len() {
                        for j in 0..w.ranks.len() {
                            if w.ranks[i] < w.ranks[j] {
                                // Sorted samples are compared at their rank
                                // positions; spline sampling is monotone in
                                // rank only up to fitting error, so allow
                                // generous slack scaled to the data range.
                                let slack = 1e-6 +
                                    (data[base + j] - data[base + i]).abs().max(2e3) * 0.5;
                                prop_assert!(
                                    restored[base + i] <= restored[base + j] + slack
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}
