//! The `numarck router` subcommand: run the cluster gateway in the
//! foreground until it drains (SIGTERM/SIGINT or a client `shutdown`).
//!
//! The router fronts N `numarck serve` shard processes, places sessions
//! on them by consistent hashing, replicates ingest, and speaks the
//! exact same wire protocol as a single shard — so everything under
//! `numarck client` works unchanged with `--via-router HOST:PORT` in
//! place of `--addr` (the two are synonyms; `--via-router` just states
//! the intent in scripts).

use std::io::Write as _;
use std::time::Duration;

use numarck_cluster::{Router, RouterConfig};
use numarck_obs::MetricsServer;
use numarck_serve::install_signal_handlers;

use crate::commands::parse_args;
use crate::{CliError, CliResult};

/// `numarck router`: run the gateway until it drains.
pub fn router(raw: &[String]) -> CliResult {
    let p = parse_args(
        raw,
        &[
            "shards",
            "addr",
            "replication",
            "vnodes",
            "metrics-addr",
            "probe-interval-ms",
            "markdown-after",
            "max-conns",
        ],
        &[],
    )?;
    p.expect_positionals(0, "").map_err(CliError::usage)?;
    let shards: Vec<String> = p
        .require("shards")
        .map_err(CliError::usage)?
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if shards.is_empty() {
        return Err(CliError::usage("--shards needs at least one HOST:PORT"));
    }
    let addr = p.get("addr").unwrap_or("127.0.0.1:0").to_string();
    let metrics_addr = p.get("metrics-addr").map(str::to_string);

    let mut config = RouterConfig { shards, ..RouterConfig::default() };
    config.replication = p.get_parsed("replication", config.replication)?;
    config.vnodes = p.get_parsed("vnodes", config.vnodes)?;
    config.max_connections = p.get_parsed("max-conns", config.max_connections)?;
    config.markdown_after = p.get_parsed("markdown-after", config.markdown_after)?;
    let probe_ms: u64 = p.get_parsed("probe-interval-ms", 500)?;
    config.probe_interval = Duration::from_millis(probe_ms.max(1));
    if config.replication == 0 || config.vnodes == 0 || config.max_connections == 0 {
        return Err("--replication, --vnodes and --max-conns must be at least 1".into());
    }
    let (replication, shard_count) = (config.replication, config.shards.len());

    install_signal_handlers();
    let handle = Router::spawn(&addr as &str, config)
        .map_err(|e| format!("cannot bind {addr}: {e}"))?;
    // Scripts (and the CI cluster-smoke job) wait for these exact lines
    // to learn the ephemeral ports, so they must land before join().
    println!("listening on {}", handle.addr());
    println!(
        "routing {} shard(s), replication factor {} ({} backend)",
        shard_count,
        replication.min(shard_count),
        handle.poller_backend()
    );
    let metrics = match metrics_addr {
        Some(maddr) => {
            let server = MetricsServer::start(&maddr as &str, handle.metrics_source())
                .map_err(|e| format!("cannot bind metrics listener {maddr}: {e}"))?;
            println!("metrics on http://{}/metrics", server.local_addr());
            Some(server)
        }
        None => None,
    };
    let _ = std::io::stdout().flush();
    handle.join();
    if let Some(metrics) = metrics {
        metrics.shutdown();
    }
    Ok("router drained and exited".to_string())
}

#[cfg(test)]
mod tests {
    use crate::testutil::argv;
    use crate::{exit_code, run};

    #[test]
    fn router_requires_shards() {
        let err = run(&argv(&["router"])).unwrap_err();
        assert_eq!(err.code, exit_code::USAGE, "{err}");
        assert!(err.contains("--shards"), "{err}");
        let err = run(&argv(&["router", "--shards", " , "])).unwrap_err();
        assert_eq!(err.code, exit_code::USAGE, "{err}");
    }

    #[test]
    fn router_rejects_zero_knobs() {
        let err = run(&argv(&[
            "router", "--shards", "127.0.0.1:1", "--replication", "0",
        ]))
        .unwrap_err();
        assert_eq!(err.code, exit_code::GENERIC, "{err}");
        assert!(err.contains("--replication"), "{err}");
    }

    #[test]
    fn router_runs_and_drains_via_client_shutdown() {
        use numarck_serve::Client;
        use std::time::Duration;
        // One real shard behind the router; the wire `Shutdown` drains
        // the router (not the shard), exactly like `serve`.
        let tmp = crate::testutil::TempDir::new("cli-router");
        let config = numarck_serve::ServerConfig::new(
            tmp.0.join("shard"),
            numarck::Config::new(8, 0.001, numarck::Strategy::Clustering).unwrap(),
        );
        let shard = numarck_serve::Server::spawn("127.0.0.1:0", config).unwrap();
        let shard_addr = shard.addr().to_string();
        let addr = "127.0.0.1:47931";
        let router_args = argv(&["router", "--shards", &shard_addr, "--addr", addr]);
        let join = std::thread::spawn(move || run(&router_args));
        let mut client = None;
        for _ in 0..100 {
            match Client::connect(addr, Duration::from_millis(200)) {
                Ok(c) => {
                    client = Some(c);
                    break;
                }
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
        let mut client = client.expect("router must come up");
        let session = client.open_session("cli").unwrap();
        let mut vars = numarck_checkpoint::VariableSet::new();
        vars.insert("x".into(), vec![1.0, 2.0, 3.0]);
        client.put_iteration(session, 0, &vars).unwrap();
        assert_eq!(client.restart(session, 0).unwrap().achieved, 0);
        client.shutdown().unwrap();
        let out = join.join().unwrap().unwrap();
        assert!(out.contains("drained"), "{out}");
        shard.shutdown();
    }
}
