//! Compressor configuration: the paper's two user parameters `B` and `E`
//! plus the strategy selection.

use crate::error::NumarckError;
use crate::strategy::Strategy;

/// Options for the clustering strategy's K-means run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusteringOptions {
    /// Cap on Lloyd iterations.
    pub max_iterations: usize,
    /// Convergence threshold on the fraction of points changing cluster.
    pub change_threshold: f64,
    /// Seed for randomised initialisers (histogram seeding ignores it).
    pub seed: u64,
}

impl Default for ClusteringOptions {
    fn default() -> Self {
        Self { max_iterations: 30, change_threshold: 1e-3, seed: 0x5EED_CAFE }
    }
}

/// User-facing compressor configuration.
///
/// * `bits` is the paper's `B`: each compressible point is stored as a
///   `B`-bit index, and the representative table holds up to `2^B − 1`
///   entries (index 0 is reserved for "change below tolerance").
/// * `tolerance` is the paper's `E`: the guaranteed per-point bound on the
///   absolute difference between true and approximated change ratio.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Config {
    bits: u8,
    tolerance: f64,
    strategy: Strategy,
    clustering: ClusteringOptions,
}

impl Config {
    /// Validate and build a configuration.
    ///
    /// `bits` must be in `1..=16`; `tolerance` must be finite and positive.
    /// (The paper evaluates `B ∈ {8, 9, 10}` and `E ∈ [0.1%, 0.5%]`; wider
    /// ranges are accepted but 16 bits is the hard cap of the index
    /// encoding.)
    pub fn new(bits: u8, tolerance: f64, strategy: Strategy) -> Result<Self, NumarckError> {
        if !(1..=16).contains(&bits) {
            return Err(NumarckError::InvalidConfig(format!(
                "bits must be in 1..=16, got {bits}"
            )));
        }
        if !tolerance.is_finite() || tolerance <= 0.0 {
            return Err(NumarckError::InvalidConfig(format!(
                "tolerance must be finite and positive, got {tolerance}"
            )));
        }
        Ok(Self { bits, tolerance, strategy, clustering: ClusteringOptions::default() })
    }

    /// Override the clustering options (no-op unless the strategy is
    /// [`Strategy::Clustering`]).
    pub fn with_clustering_options(mut self, opts: ClusteringOptions) -> Self {
        self.clustering = opts;
        self
    }

    /// The approximation precision `B` in bits.
    #[inline]
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// The user tolerance `E` on the change-ratio error.
    #[inline]
    pub fn tolerance(&self) -> f64 {
        self.tolerance
    }

    /// The selected approximation strategy.
    #[inline]
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// Clustering options.
    #[inline]
    pub fn clustering(&self) -> ClusteringOptions {
        self.clustering
    }

    /// Maximum number of representative ratios: `2^B − 1`.
    #[inline]
    pub fn max_table_len(&self) -> usize {
        (1usize << self.bits) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_configs() {
        for b in 1..=16 {
            assert!(Config::new(b, 0.001, Strategy::EqualWidth).is_ok());
        }
    }

    #[test]
    fn rejects_bad_bits() {
        assert!(Config::new(0, 0.001, Strategy::EqualWidth).is_err());
        assert!(Config::new(17, 0.001, Strategy::EqualWidth).is_err());
    }

    #[test]
    fn rejects_bad_tolerance() {
        for t in [0.0, -0.1, f64::NAN, f64::INFINITY] {
            assert!(Config::new(8, t, Strategy::LogScale).is_err(), "tolerance {t}");
        }
    }

    #[test]
    fn table_len_is_2b_minus_1() {
        let c = Config::new(8, 0.001, Strategy::Clustering).unwrap();
        assert_eq!(c.max_table_len(), 255);
        let c = Config::new(10, 0.001, Strategy::Clustering).unwrap();
        assert_eq!(c.max_table_len(), 1023);
        let c = Config::new(1, 0.001, Strategy::Clustering).unwrap();
        assert_eq!(c.max_table_len(), 1);
    }
}
