//! Error type for the NUMARCK public API.

use std::fmt;

/// Everything that can go wrong constructing configurations, compressing,
/// or deserialising NUMARCK data.
#[derive(Debug, Clone, PartialEq)]
pub enum NumarckError {
    /// Configuration parameter out of range.
    InvalidConfig(String),
    /// The two iterations passed to the compressor have different lengths.
    LengthMismatch {
        /// Points in the previous iteration.
        prev: usize,
        /// Points in the current iteration.
        curr: usize,
    },
    /// Input contained a non-finite value where one is not permitted.
    NonFiniteInput {
        /// Index of the offending point.
        index: usize,
    },
    /// A serialised blob failed structural validation.
    Corrupt(String),
    /// An I/O operation failed (for retryable faults, after retries were
    /// exhausted). Distinct from [`Self::Corrupt`]: the data may be fine,
    /// the storage underneath it was not.
    Io(String),
    /// A serialised blob was produced by an incompatible format version.
    VersionMismatch {
        /// Version found in the header.
        found: u16,
        /// Version this library writes.
        expected: u16,
    },
}

impl fmt::Display for NumarckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Self::LengthMismatch { prev, curr } => {
                write!(f, "iteration length mismatch: prev has {prev} points, curr has {curr}")
            }
            Self::NonFiniteInput { index } => {
                write!(f, "non-finite input value at index {index}")
            }
            Self::Corrupt(msg) => write!(f, "corrupt compressed data: {msg}"),
            Self::Io(msg) => write!(f, "i/o error: {msg}"),
            Self::VersionMismatch { found, expected } => {
                write!(f, "format version mismatch: found {found}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for NumarckError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = NumarckError::LengthMismatch { prev: 3, curr: 5 };
        let s = e.to_string();
        assert!(s.contains('3') && s.contains('5'));
        let e = NumarckError::VersionMismatch { found: 9, expected: 1 };
        assert!(e.to_string().contains("version"));
    }

    #[test]
    fn implements_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&NumarckError::Corrupt("x".into()));
    }
}
