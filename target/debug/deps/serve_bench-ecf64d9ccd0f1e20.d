/root/repo/target/debug/deps/serve_bench-ecf64d9ccd0f1e20.d: crates/numarck-bench/src/bin/serve_bench.rs

/root/repo/target/debug/deps/serve_bench-ecf64d9ccd0f1e20: crates/numarck-bench/src/bin/serve_bench.rs

crates/numarck-bench/src/bin/serve_bench.rs:
