//! `.nmkc` chain files: one exact base iteration plus NUMARCK deltas.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic  NMKC | version u16 | bits u8 | strategy u8 | mode u8 | pad [3]
//! tolerance f64 | num_deltas u32 | points u64
//! base: points × f64
//! per delta: payload_len u64 | numarck::serialize blob
//! crc32 of everything above
//! ```

use std::fs;
use std::io::Write;
use std::path::Path;

use numarck::encode::CompressedIteration;
use numarck::serialize as nser;
use numarck::{ReferenceMode, Strategy};

/// Magic bytes of a chain file.
pub const MAGIC: [u8; 4] = *b"NMKC";
/// Format version.
pub const VERSION: u16 = 1;

/// An in-memory chain file.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainFile {
    /// Index width.
    pub bits: u8,
    /// Tolerance the deltas were encoded with.
    pub tolerance: f64,
    /// Strategy used.
    pub strategy: Strategy,
    /// Open or closed loop.
    pub mode: ReferenceMode,
    /// The exact base iteration.
    pub base: Vec<f64>,
    /// Compressed deltas, chain order.
    pub deltas: Vec<CompressedIteration>,
}

fn strategy_code(s: Strategy) -> u8 {
    match s {
        Strategy::EqualWidth => 0,
        Strategy::LogScale => 1,
        Strategy::Clustering => 2,
    }
}

fn strategy_from(code: u8) -> Result<Strategy, String> {
    match code {
        0 => Ok(Strategy::EqualWidth),
        1 => Ok(Strategy::LogScale),
        2 => Ok(Strategy::Clustering),
        c => Err(format!("unknown strategy code {c}")),
    }
}

impl ChainFile {
    /// Serialise and write to `path` with fixed-width indices.
    pub fn save(&self, path: &Path) -> Result<(), String> {
        self.save_with(path, nser::IndexEncoding::FixedWidth)
    }

    /// Serialise and write with an explicit index encoding (the reader
    /// auto-detects, so no format flag is needed at this level).
    pub fn save_with(&self, path: &Path, encoding: nser::IndexEncoding) -> Result<(), String> {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.push(self.bits);
        buf.push(strategy_code(self.strategy));
        buf.push(match self.mode {
            ReferenceMode::TrueValues => 0,
            ReferenceMode::Reconstructed => 1,
        });
        buf.extend_from_slice(&[0u8; 3]);
        buf.extend_from_slice(&self.tolerance.to_le_bytes());
        buf.extend_from_slice(&(self.deltas.len() as u32).to_le_bytes());
        buf.extend_from_slice(&(self.base.len() as u64).to_le_bytes());
        for v in &self.base {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        for delta in &self.deltas {
            let payload = nser::to_bytes_with(delta, encoding);
            buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            buf.extend_from_slice(&payload);
        }
        let crc = nser::crc32(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        let mut f = fs::File::create(path)
            .map_err(|e| format!("cannot create {}: {e}", path.display()))?;
        f.write_all(&buf).map_err(|e| format!("cannot write {}: {e}", path.display()))
    }

    /// Read and validate from `path`.
    pub fn load(path: &Path) -> Result<Self, String> {
        let data =
            fs::read(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        const HEADER: usize = 4 + 2 + 1 + 1 + 1 + 3 + 8 + 4 + 8;
        if data.len() < HEADER + 4 {
            return Err(format!("{}: too short for a chain file", path.display()));
        }
        let body = &data[..data.len() - 4];
        let stored =
            u32::from_le_bytes(data[data.len() - 4..].try_into().expect("4 bytes"));
        if stored != nser::crc32(body) {
            return Err(format!("{}: crc mismatch (corrupt file)", path.display()));
        }
        if data[..4] != MAGIC {
            return Err(format!("{}: not a .nmkc chain file", path.display()));
        }
        let version = u16::from_le_bytes(data[4..6].try_into().expect("2 bytes"));
        if version != VERSION {
            return Err(format!("unsupported chain version {version}"));
        }
        let bits = data[6];
        let strategy = strategy_from(data[7])?;
        let mode = match data[8] {
            0 => ReferenceMode::TrueValues,
            1 => ReferenceMode::Reconstructed,
            m => return Err(format!("unknown reference mode {m}")),
        };
        let tolerance = f64::from_le_bytes(data[12..20].try_into().expect("8 bytes"));
        let num_deltas = u32::from_le_bytes(data[20..24].try_into().expect("4 bytes")) as usize;
        let points = u64::from_le_bytes(data[24..32].try_into().expect("8 bytes")) as usize;
        let mut off = 32;
        if body.len() < off + points * 8 {
            return Err("truncated base section".to_string());
        }
        let mut base = Vec::with_capacity(points);
        for _ in 0..points {
            base.push(f64::from_le_bytes(body[off..off + 8].try_into().expect("8 bytes")));
            off += 8;
        }
        let mut deltas = Vec::with_capacity(num_deltas);
        for d in 0..num_deltas {
            if body.len() < off + 8 {
                return Err(format!("truncated delta {d} length"));
            }
            let len =
                u64::from_le_bytes(body[off..off + 8].try_into().expect("8 bytes")) as usize;
            off += 8;
            if body.len() < off + len {
                return Err(format!("truncated delta {d} payload"));
            }
            let block = nser::from_bytes(&body[off..off + len])
                .map_err(|e| format!("delta {d}: {e}"))?;
            off += len;
            deltas.push(block);
        }
        if off != body.len() {
            return Err(format!("{} trailing bytes", body.len() - off));
        }
        Ok(Self { bits, tolerance, strategy, mode, base, deltas })
    }

    /// Total serialized size of all deltas (bytes), for reports.
    pub fn delta_bytes(&self) -> usize {
        self.deltas.iter().map(nser::serialized_len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TempDir;
    use numarck::{Compressor, Config};

    fn sample() -> ChainFile {
        let base: Vec<f64> = (0..300).map(|i| 1.0 + (i % 7) as f64).collect();
        let next: Vec<f64> = base.iter().map(|v| v * 1.01).collect();
        let config = Config::new(8, 0.001, Strategy::Clustering).unwrap();
        let (block, _) = Compressor::new(config).compress(&base, &next).unwrap();
        ChainFile {
            bits: 8,
            tolerance: 0.001,
            strategy: Strategy::Clustering,
            mode: ReferenceMode::TrueValues,
            base,
            deltas: vec![block],
        }
    }

    #[test]
    fn roundtrip() {
        let tmp = TempDir::new("chainfile");
        let path = std::path::PathBuf::from(tmp.path("c.nmkc"));
        let chain = sample();
        chain.save(&path).unwrap();
        assert_eq!(ChainFile::load(&path).unwrap(), chain);
    }

    #[test]
    fn corruption_detected() {
        let tmp = TempDir::new("chainfile-corrupt");
        let path = std::path::PathBuf::from(tmp.path("c.nmkc"));
        sample().save(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, bytes).unwrap();
        let err = ChainFile::load(&path).unwrap_err();
        assert!(err.contains("crc"), "{err}");
    }

    #[test]
    fn all_strategies_and_modes_roundtrip() {
        let tmp = TempDir::new("chainfile-modes");
        for (i, s) in Strategy::all().into_iter().enumerate() {
            for (j, m) in [ReferenceMode::TrueValues, ReferenceMode::Reconstructed]
                .into_iter()
                .enumerate()
            {
                let mut chain = sample();
                chain.strategy = s;
                chain.mode = m;
                let path = std::path::PathBuf::from(tmp.path(&format!("c{i}{j}.nmkc")));
                chain.save(&path).unwrap();
                let back = ChainFile::load(&path).unwrap();
                assert_eq!(back.strategy, s);
                assert_eq!(back.mode, m);
            }
        }
    }
}
