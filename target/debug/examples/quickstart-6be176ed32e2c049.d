/root/repo/target/debug/examples/quickstart-6be176ed32e2c049.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-6be176ed32e2c049.rmeta: examples/quickstart.rs

examples/quickstart.rs:
