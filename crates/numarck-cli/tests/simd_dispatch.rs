//! Dispatch-equivalence of the whole CLI pipeline, across processes.
//!
//! The SIMD lane kernels are proven bit-identical to their scalar
//! oracles in-crate; this test closes the loop end-to-end: the same
//! input compressed by a subprocess running the dispatched (fastest
//! available) kernels and by one pinned to the scalar path via
//! `NUMARCK_FORCE_SCALAR=1` must produce **byte-identical** `.nmkc`
//! artefacts, and both must decompress to byte-identical `.f64s`
//! output. The env knob is read per process, which is exactly why this
//! lives as a subprocess test and not a unit test.

use std::path::PathBuf;
use std::process::Command;

const BIN: &str = env!("CARGO_BIN_EXE_numarck");

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "numarck-simd-{tag}-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .expect("after epoch")
                .as_nanos()
        ));
        std::fs::create_dir_all(&path).expect("mkdir");
        Self(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Run the CLI with extra env vars; panic with full output on failure.
fn run(args: &[&str], env: &[(&str, &str)]) {
    let mut cmd = Command::new(BIN);
    cmd.args(args);
    for (k, v) in env {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("spawn numarck");
    assert!(
        out.status.success(),
        "numarck {args:?} env={env:?} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
}

#[test]
fn forced_scalar_subprocess_produces_identical_artifacts() {
    let tmp = TempDir::new("eq");
    let src = tmp.0.join("in.f64s");
    let src_s = src.to_str().unwrap();
    run(
        &["gen", "--source", "climate:rlus", "--iterations", "3", "--out", src_s],
        &[],
    );

    // (label, env) per pinned level; "default" exercises whatever the
    // host dispatches (AVX2 where available).
    let variants: [(&str, &[(&str, &str)]); 3] = [
        ("default", &[]),
        ("scalar", &[("NUMARCK_FORCE_SCALAR", "1")]),
        ("unrolled", &[("NUMARCK_SIMD", "unrolled")]),
    ];

    let mut compressed: Vec<(String, Vec<u8>)> = Vec::new();
    let mut restored: Vec<(String, Vec<u8>)> = Vec::new();
    for (label, env) in variants {
        let nmkc = tmp.0.join(format!("{label}.nmkc"));
        let back = tmp.0.join(format!("{label}.f64s"));
        run(
            &["compress", src_s, "--out", nmkc.to_str().unwrap(), "--bits", "8", "--tolerance", "0.001"],
            env,
        );
        run(
            &["decompress", nmkc.to_str().unwrap(), "--out", back.to_str().unwrap()],
            env,
        );
        compressed.push((label.to_string(), std::fs::read(&nmkc).expect("read nmkc")));
        restored.push((label.to_string(), std::fs::read(&back).expect("read f64s")));
    }

    let (base_label, base_bytes) = &compressed[0];
    assert!(!base_bytes.is_empty(), "compressed artefact must not be empty");
    for (label, bytes) in &compressed[1..] {
        assert!(
            bytes == base_bytes,
            "compressed artefact from '{label}' differs from '{base_label}' \
             ({} vs {} bytes)",
            bytes.len(),
            base_bytes.len(),
        );
    }
    let (base_label, base_bytes) = &restored[0];
    assert!(!base_bytes.is_empty(), "restored output must not be empty");
    for (label, bytes) in &restored[1..] {
        assert!(
            bytes == base_bytes,
            "decompressed output from '{label}' differs from '{base_label}'",
        );
    }
}
