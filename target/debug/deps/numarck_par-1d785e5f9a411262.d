/root/repo/target/debug/deps/numarck_par-1d785e5f9a411262.d: crates/numarck-par/src/lib.rs crates/numarck-par/src/chunk.rs crates/numarck-par/src/histogram.rs crates/numarck-par/src/pool.rs crates/numarck-par/src/quantile.rs crates/numarck-par/src/reduce.rs crates/numarck-par/src/rng.rs crates/numarck-par/src/scan.rs Cargo.toml

/root/repo/target/debug/deps/libnumarck_par-1d785e5f9a411262.rmeta: crates/numarck-par/src/lib.rs crates/numarck-par/src/chunk.rs crates/numarck-par/src/histogram.rs crates/numarck-par/src/pool.rs crates/numarck-par/src/quantile.rs crates/numarck-par/src/reduce.rs crates/numarck-par/src/rng.rs crates/numarck-par/src/scan.rs Cargo.toml

crates/numarck-par/src/lib.rs:
crates/numarck-par/src/chunk.rs:
crates/numarck-par/src/histogram.rs:
crates/numarck-par/src/pool.rs:
crates/numarck-par/src/quantile.rs:
crates/numarck-par/src/reduce.rs:
crates/numarck-par/src/rng.rs:
crates/numarck-par/src/scan.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
