//! Integration proof for the compaction subsystem: restart from a
//! compacted chain is bit-exact equal to restart from the original,
//! placement bounds the modeled worst-case restart cost, and GC never
//! deletes a file a retained restart would read.

use std::path::PathBuf;
use std::sync::Arc;

use numarck::{Config, Strategy};
use numarck_checkpoint::manager::{CheckpointManager, ManagerPolicy};
use numarck_checkpoint::restart::RestartEngine;
use numarck_checkpoint::store::CheckpointStore;
use numarck_checkpoint::{repair, FaultSchedule, FaultyBackend, FsBackend, VariableSet, WriteFault};
use numarck_compact::chain::ChainView;
use numarck_compact::merge::vars_bits_equal;
use numarck_compact::{gc, CompactionConfig, Compactor, CostModel, NoJournal};

/// Self-cleaning unique temp directory (store::testutil is crate-private).
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let unique = format!(
            "numarck-compact-test-{tag}-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .expect("clock after epoch")
                .as_nanos()
        );
        let path = std::env::temp_dir().join(unique);
        std::fs::create_dir_all(&path).expect("create temp dir");
        Self(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A simulation truth with both compaction regimes in one chain:
/// variable `x` evolves by smooth clustered ratios (the composed-ratio
/// path), variable `z` has values popping in and out of zero and
/// per-point noise (the escape/re-encode path).
fn truth_sequence(iters: u64, n: usize) -> Vec<VariableSet> {
    let mut x: Vec<f64> = (0..n).map(|i| 1.0 + (i % 13) as f64).collect();
    let mut out = Vec::new();
    for it in 0..iters {
        if it > 0 {
            for (i, v) in x.iter_mut().enumerate() {
                *v *= 1.0 + 0.004 * (((i as u64 + it) % 5) as f64 - 2.0) / 2.0;
            }
        }
        let z: Vec<f64> = (0..n)
            .map(|i| {
                if (i as u64 + it) % 4 == 0 {
                    0.0
                } else {
                    // Per-point, per-iteration values: ratios rarely repeat,
                    // so most points overflow the table and escape.
                    ((i as u64 * 2654435761 + it * 40503) % 100_000) as f64 + 0.5
                }
            })
            .collect();
        let mut vars = VariableSet::new();
        vars.insert("x".into(), x.clone());
        vars.insert("z".into(), z);
        out.push(vars);
    }
    out
}

fn build_store(dir: &PathBuf, truth: &[VariableSet], full_interval: u64) -> CheckpointStore {
    let store = CheckpointStore::open(dir).unwrap();
    let cfg = Config::new(8, 0.001, Strategy::Clustering).unwrap();
    let mut mgr = CheckpointManager::new(store.clone(), cfg, ManagerPolicy::fixed(full_interval));
    for (it, vars) in truth.iter().enumerate() {
        mgr.checkpoint(it as u64, vars).unwrap();
    }
    store
}

fn restart_all(store: &CheckpointStore, iters: u64) -> Vec<VariableSet> {
    let engine = RestartEngine::new(store.clone());
    (0..iters).map(|it| engine.restart_at(it).unwrap().vars).collect()
}

#[test]
fn compacted_chain_restarts_bit_exact_everywhere() {
    let tmp = TempDir::new("bit-exact");
    let iters = 56u64;
    let truth = truth_sequence(iters, 300);
    // One full at 0, then 55 plain deltas: maximal compaction surface.
    let store = build_store(&tmp.0, &truth, 1000);
    let before = restart_all(&store, iters);

    let compactor = Compactor::new(CompactionConfig {
        merge_window: 4,
        restart_slo_ns: None,
        keep_last_fulls: 0,
        ..CompactionConfig::default()
    });
    let report = compactor.run(&store, &mut NoJournal).unwrap();

    // 55 plain deltas (1..=55) yield 13 complete 4-windows.
    assert_eq!(report.merges, 13, "report: {report:?}");
    assert_eq!(report.deltas_merged, 52);
    // The acceptance criterion demands proof for BOTH the
    // ratio-composition path and the re-encode (escape) path.
    assert!(report.merge_stats.ratio_coded > 0, "no composed ratios: {:?}", report.merge_stats);
    assert!(report.merge_stats.escaped > 0, "no escapes: {:?}", report.merge_stats);

    // Every iteration — including ones mid-window, whose chains now pass
    // through merged deltas — restarts to bit-identical state.
    let after = restart_all(&store, iters);
    for (it, (a, b)) in before.iter().zip(&after).enumerate() {
        assert!(vars_bits_equal(a, b), "iteration {it} diverged after compaction");
    }

    // Merged deltas break plain runs, so a second pass finds nothing new.
    let second = compactor.run(&store, &mut NoJournal).unwrap();
    assert_eq!(second.merges, 0, "compaction must be idempotent: {second:?}");
}

#[test]
fn escape_heavy_delta_compacts_bit_exact() {
    let tmp = TempDir::new("escape-heavy");
    let iters = 9u64;
    let n = 1200;
    // Pure noise: nearly every changing point has a unique ratio, far
    // overflowing the 255-entry table, so the deltas being merged are
    // escape-dominated — the ISSUE's "escaped-value-heavy delta" edge
    // case. Static zeros exercise the unchanged path alongside.
    let truth: Vec<VariableSet> = (0..iters)
        .map(|it| {
            let z: Vec<f64> = (0..n)
                .map(|i| {
                    if i % 3 == 0 {
                        0.0
                    } else {
                        ((i as u64 * 48271 + it * 69621) % 999_983) as f64 * 1e-3 + 1e-6
                    }
                })
                .collect();
            let mut vars = VariableSet::new();
            vars.insert("z".into(), z);
            vars
        })
        .collect();
    let store = build_store(&tmp.0, &truth, 1000);
    let before = restart_all(&store, iters);

    let report = Compactor::new(CompactionConfig {
        merge_window: 8,
        keep_last_fulls: 0,
        ..CompactionConfig::default()
    })
    .run(&store, &mut NoJournal)
    .unwrap();
    assert_eq!(report.merges, 1);
    assert!(
        report.merge_stats.escaped > report.merge_stats.ratio_coded
            && report.merge_stats.unchanged > 0,
        "expected an escape-dominated merge: {:?}",
        report.merge_stats
    );

    let after = restart_all(&store, iters);
    for (it, (a, b)) in before.iter().zip(&after).enumerate() {
        assert!(vars_bits_equal(a, b), "iteration {it} diverged");
    }
}

#[test]
fn placement_bounds_worst_case_cost_under_slo() {
    let tmp = TempDir::new("placement-slo");
    let iters = 56u64;
    let truth = truth_sequence(iters, 200);
    // 55-deep delta chain behind a single full at 0.
    let store = build_store(&tmp.0, &truth, 1000);
    let before = restart_all(&store, iters);

    // Synthetic model: replaying a delta costs 1 ms, decoding a full is
    // free. SLO of 5 ms allows at most 5 hops to the nearest full.
    let cost = CostModel { full_ns_per_byte: 0.0, delta_replay_ns: 1_000_000.0 };
    let slo = 5_000_000u64;
    let view = ChainView::load(&store).unwrap();
    assert!(view.worst_case_cost_ns(&cost).unwrap() > slo, "chain must start in violation");

    let report = Compactor::new(CompactionConfig {
        merge_window: 0, // isolate the placement policy
        restart_slo_ns: Some(slo),
        keep_last_fulls: 0,
        cost,
        ..CompactionConfig::default()
    })
    .run(&store, &mut NoJournal)
    .unwrap();

    assert!(report.fulls_promoted >= 8, "expected a full every ~6 iterations: {report:?}");
    let worst = report.worst_case_cost_ns.expect("chain resolvable");
    assert!(worst <= slo, "worst case {worst} ns still exceeds SLO {slo} ns");

    // Promoted fulls are materialised replay states, so every restart
    // stays bit-identical.
    let after = restart_all(&store, iters);
    for (it, (a, b)) in before.iter().zip(&after).enumerate() {
        assert!(vars_bits_equal(a, b), "iteration {it} diverged after placement");
    }
}

#[test]
fn gc_removes_superseded_deltas_and_keeps_retained_chains() {
    let tmp = TempDir::new("gc-supersede");
    let iters = 21u64;
    let truth = truth_sequence(iters, 200);
    let store = build_store(&tmp.0, &truth, 1000);
    let engine = RestartEngine::new(store.clone());
    let latest_before = engine.restart_at(iters - 1).unwrap().vars;
    let kept_before = engine.restart_at(4).unwrap().vars;

    let report = Compactor::new(CompactionConfig {
        merge_window: 4,
        keep_last_fulls: 1,
        keep_every: 4,
        min_age_secs: 0,
        ..CompactionConfig::default()
    })
    .run(&store, &mut NoJournal)
    .unwrap();
    assert!(report.merges > 0);
    assert!(report.gc.removed > 0, "superseded plain deltas should be collected: {report:?}");
    assert_eq!(report.gc.unresolvable, 0);
    assert!(report.bytes_reclaimed > 0);

    // Iteration 4's chain is now [full 0, merged delta 4]; the plain
    // deltas 1..3 it superseded are gone.
    assert!(!store.path_of(1, false).exists(), "superseded delta 1 should be deleted");
    assert!(!store.path_of(2, false).exists(), "superseded delta 2 should be deleted");
    // Retained iterations still restart to bit-identical state.
    assert!(vars_bits_equal(&engine.restart_at(iters - 1).unwrap().vars, &latest_before));
    let r4 = engine.restart_at(4).unwrap();
    assert!(vars_bits_equal(&r4.vars, &kept_before));
    assert_eq!(r4.deltas_applied, 1, "iteration 4 should resolve through the merged delta");
    // Non-retained mid-window iterations are genuinely gone.
    assert!(engine.restart_at(2).is_err(), "collected iteration must fail loudly");
}

#[test]
fn gc_on_empty_store_is_a_noop() {
    let tmp = TempDir::new("gc-empty");
    let store = CheckpointStore::open(&tmp.0).unwrap();
    let report = gc::collect(&store, 1, 0, 0).unwrap();
    assert_eq!(report, Default::default());
}

#[test]
fn gc_with_every_iteration_quarantined_is_a_noop() {
    let tmp = TempDir::new("gc-quarantined");
    let truth = truth_sequence(6, 100);
    let store = build_store(&tmp.0, &truth, 3);
    for entry in store.list().unwrap() {
        store.quarantine(entry.iteration, entry.is_full).unwrap();
    }
    let report = gc::collect(&store, 1, 0, 0).unwrap();
    assert_eq!(report, Default::default(), "quarantined store must be left alone");
    // The quarantined files themselves are untouched.
    assert!(store.quarantine_dir().read_dir().unwrap().count() >= 6);
}

#[test]
fn gc_aborts_whole_pass_when_a_retained_chain_is_broken() {
    let tmp = TempDir::new("gc-broken-chain");
    let truth = truth_sequence(10, 100);
    let store = build_store(&tmp.0, &truth, 1000);
    // Break the latest (always-retained) chain mid-way.
    store.quarantine(7, false).unwrap();
    let files_before = store.list().unwrap().len();
    let report = gc::collect(&store, 1, 0, 0).unwrap();
    assert!(report.unresolvable >= 1);
    assert_eq!(report.removed, 0, "a broken retained chain must abort deletion");
    assert_eq!(store.list().unwrap().len(), files_before);
}

#[test]
fn gc_min_age_keeps_young_dead_files() {
    let tmp = TempDir::new("gc-min-age");
    let truth = truth_sequence(12, 100);
    // Fulls every 4 iterations: deltas behind old fulls are dead under
    // keep_last_fulls=1, but everything was written milliseconds ago.
    let store = build_store(&tmp.0, &truth, 4);
    let files_before = store.list().unwrap().len();
    let report = gc::collect(&store, 1, 0, 3600).unwrap();
    assert_eq!(report.removed, 0);
    assert!(report.kept_young > 0, "young dead files must be counted: {report:?}");
    assert_eq!(store.list().unwrap().len(), files_before);
}

#[test]
fn gc_keeps_the_reanchor_point_alive() {
    let tmp = TempDir::new("gc-reanchor");
    let iters = 10u64;
    let truth = truth_sequence(iters, 100);
    let store = build_store(&tmp.0, &truth, 1000);
    // Corrupt the newest delta, then repair: scrub quarantines it and
    // re-anchors a fresh full at the newest restartable iteration.
    let path = store.path_of(iters - 1, false);
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();
    let rep = repair(&store).unwrap();
    assert!(rep.anchored_at.is_some(), "repair should re-anchor: {rep:?}");
    let anchor = rep.anchored_at.unwrap();
    let engine = RestartEngine::new(store.clone());
    let anchored_state = engine.restart_at(anchor).unwrap().vars;

    // Aggressive retention must still keep the re-anchor full — it is
    // both the newest full and on the latest iteration's chain.
    let report = gc::collect(&store, 1, 0, 0).unwrap();
    assert_eq!(report.unresolvable, 0, "re-anchored store must resolve: {report:?}");
    assert!(store.path_of(anchor, true).exists(), "re-anchor full must survive GC");
    let r = engine.restart_at(anchor).unwrap();
    assert!(vars_bits_equal(&r.vars, &anchored_state));
    assert_eq!(r.deltas_applied, 0, "anchor restarts straight from its full");
}

#[test]
fn gc_racing_concurrent_restart_reads_never_breaks_them() {
    let tmp = TempDir::new("gc-race");
    let iters = 24u64;
    let truth = truth_sequence(iters, 150);
    let store = build_store(&tmp.0, &truth, 1000);
    let compactor = Compactor::new(CompactionConfig {
        merge_window: 4,
        keep_last_fulls: 1,
        keep_every: 8,
        min_age_secs: 0,
        ..CompactionConfig::default()
    });

    // Readers hammer retained iterations (the latest and a keep_every
    // multiple) while maintenance merges and collects. GC only deletes
    // files off retained chains, so every read must keep succeeding.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let readers: Vec<_> = [iters - 1, 16u64]
        .into_iter()
        .map(|target| {
            let engine = RestartEngine::new(store.clone());
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut reads = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    engine
                        .restart_at(target)
                        .unwrap_or_else(|e| panic!("restart at {target} broke during gc: {e}"));
                    reads += 1;
                }
                reads
            })
        })
        .collect();

    for _ in 0..4 {
        compactor.run(&store, &mut NoJournal).unwrap();
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for reader in readers {
        assert!(reader.join().expect("reader must not panic") > 0);
    }
}

#[test]
fn failed_compaction_write_leaves_the_chain_intact() {
    let tmp = TempDir::new("fault-write");
    let iters = 10u64;
    let truth = truth_sequence(iters, 150);
    let store = build_store(&tmp.0, &truth, 1000);
    let before = restart_all(&store, iters);

    // First compaction write (the merged delta's temp file) fails: the
    // rename never happens, so the original chain must be untouched.
    let schedule =
        FaultSchedule::new().fail_write(1, WriteFault::Error(std::io::ErrorKind::Other));
    let faulty =
        CheckpointStore::open_with(&tmp.0, Arc::new(FaultyBackend::wrapping(Arc::new(FsBackend), schedule)))
            .unwrap();
    let compactor = Compactor::new(CompactionConfig {
        merge_window: 4,
        keep_last_fulls: 0,
        ..CompactionConfig::default()
    });
    compactor.run(&faulty, &mut NoJournal).expect_err("injected write fault must surface");

    let after = restart_all(&store, iters);
    for (it, (a, b)) in before.iter().zip(&after).enumerate() {
        assert!(vars_bits_equal(a, b), "iteration {it} changed after failed compaction");
    }

    // Once the fault clears, the same pass completes and stays bit-exact.
    let report = compactor.run(&store, &mut NoJournal).unwrap();
    assert!(report.merges > 0);
    let healed = restart_all(&store, iters);
    for (it, (a, b)) in before.iter().zip(&healed).enumerate() {
        assert!(vars_bits_equal(a, b), "iteration {it} diverged after retry");
    }
}

#[test]
fn torn_compaction_write_quarantines_and_repair_reanchors() {
    let tmp = TempDir::new("fault-torn");
    let iters = 10u64;
    let truth = truth_sequence(iters, 150);
    let store = build_store(&tmp.0, &truth, 1000);
    let engine = RestartEngine::new(store.clone());
    let safe_state = engine.restart_at(3).unwrap().vars;

    // The write "succeeds" but lands torn (silent storage corruption):
    // read-back CRC verification catches it, quarantines the damaged
    // merged delta, and errors out with the intent left outstanding.
    let schedule = FaultSchedule::new().fail_write(1, WriteFault::SilentTorn { keep: 40 });
    let faulty =
        CheckpointStore::open_with(&tmp.0, Arc::new(FaultyBackend::wrapping(Arc::new(FsBackend), schedule)))
            .unwrap();
    let compactor = Compactor::new(CompactionConfig {
        merge_window: 4,
        keep_last_fulls: 0,
        ..CompactionConfig::default()
    });
    let err = compactor.run(&faulty, &mut NoJournal).expect_err("torn write must be caught");
    assert!(format!("{err}").contains("read-back"), "unexpected error: {err}");

    // The torn merged delta replaced plain delta 4 in place, so the
    // chain is now broken at 4 — exactly what the scrub/re-anchor
    // machinery exists for. Repair brings the store back to a
    // restartable state, bit-exact below the damage.
    assert!(engine.restart_at(iters - 1).is_err());
    let rep = repair(&store).unwrap();
    assert!(rep.anchored_at.is_some(), "repair should re-anchor: {rep:?}");
    assert!(vars_bits_equal(&engine.restart_at(3).unwrap().vars, &safe_state));
}
