//! Figure 6: effect of the approximation precision `B` on `rlds` with
//! equal-width binning, `E = 0.1%`, 100 iterations.
//!
//! Expected shape (paper): going 8 → 9 bits collapses the incompressible
//! ratio dramatically and lifts compression by >30 points; at 10 bits
//! everything is compressible and compression approaches ~85%, with the
//! mean error still at half the tolerance or less.

use climate_sim::ClimateVar;
use numarck::{Config, Strategy};
use numarck_bench::data::climate_sequence;
use numarck_bench::report::{pct, print_table, write_csv};
use numarck_bench::run::{compress_sequence, mean_of};
use numarck_bench::RESULTS_DIR;

fn main() {
    let iterations = 100usize;
    let tolerance = 0.001;
    let seq = climate_sequence(ClimateVar::Rlds, iterations);

    println!(
        "Fig. 6: rlds, equal-width binning, E = 0.1%, {} transitions",
        iterations - 1
    );
    let mut summary = vec![vec![
        "B (bits)".to_string(),
        "incompressible %".to_string(),
        "compression % (Eq.3)".to_string(),
        "mean error %".to_string(),
        "max error %".to_string(),
    ]];
    let mut csv = vec![vec![
        "bits".to_string(),
        "iteration".to_string(),
        "incompressible_ratio".to_string(),
        "compression_eq3".to_string(),
        "mean_error".to_string(),
    ]];
    for bits in [8u8, 9, 10] {
        let config = Config::new(bits, tolerance, Strategy::EqualWidth).expect("valid");
        let stats = compress_sequence(&seq, config);
        for (i, st) in stats.iter().enumerate() {
            csv.push(vec![
                bits.to_string(),
                (i + 1).to_string(),
                st.incompressible_ratio.to_string(),
                st.compression_ratio_eq3.to_string(),
                st.mean_error_rate.to_string(),
            ]);
        }
        summary.push(vec![
            bits.to_string(),
            pct(mean_of(&stats, |s| s.incompressible_ratio), 2),
            pct(mean_of(&stats, |s| s.compression_ratio_eq3), 2),
            pct(mean_of(&stats, |s| s.mean_error_rate), 4),
            pct(stats.iter().map(|s| s.max_error_rate).fold(0.0, f64::max), 4),
        ]);
    }
    print_table(&summary);
    println!("\n(paper: 8→9 bits drops incompressible ~60%→~20% and lifts compression >30 pts;");
    println!(" at 10 bits everything compresses and the ratio nears 85%, mean error < 0.05%)");
    match write_csv(RESULTS_DIR, "fig6_precision_sweep", &csv) {
        Ok(p) => println!("wrote {p}"),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
