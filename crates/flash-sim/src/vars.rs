//! The ten FLASH checkpoint variables (paper §III-A).

/// A checkpoint variable. FLASH writes 24 variables per cell but
/// checkpoints only these ten; the paper's Figures 3, 5 and 8 and the
/// FLASH half of Tables I/II are all over this set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FlashVar {
    /// Mass density.
    Dens,
    /// Specific internal energy.
    Eint,
    /// Specific total energy.
    Ener,
    /// Adiabatic index Γ₁ (constant for a gamma-law gas).
    Gamc,
    /// Adiabatic index used in the energy equation (equal to `Gamc` for
    /// gamma-law).
    Game,
    /// Pressure.
    Pres,
    /// Temperature (ideal-gas, unit gas constant).
    Temp,
    /// x velocity.
    Velx,
    /// y velocity.
    Vely,
    /// z velocity (passively advected scalar in this 2-D solver).
    Velz,
}

impl FlashVar {
    /// All ten checkpoint variables, in the paper's listing order.
    pub fn all() -> [FlashVar; 10] {
        [
            Self::Dens,
            Self::Eint,
            Self::Ener,
            Self::Gamc,
            Self::Game,
            Self::Pres,
            Self::Temp,
            Self::Velx,
            Self::Vely,
            Self::Velz,
        ]
    }

    /// Lowercase FLASH variable name.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Dens => "dens",
            Self::Eint => "eint",
            Self::Ener => "ener",
            Self::Gamc => "gamc",
            Self::Game => "game",
            Self::Pres => "pres",
            Self::Temp => "temp",
            Self::Velx => "velx",
            Self::Vely => "vely",
            Self::Velz => "velz",
        }
    }

    /// Parse a FLASH variable name.
    pub fn from_name(name: &str) -> Option<FlashVar> {
        Self::all().into_iter().find(|v| v.name() == name)
    }
}

impl std::fmt::Display for FlashVar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_variables_with_unique_names() {
        let all = FlashVar::all();
        assert_eq!(all.len(), 10);
        let names: std::collections::HashSet<_> = all.iter().map(|v| v.name()).collect();
        assert_eq!(names.len(), 10);
    }

    #[test]
    fn roundtrip_names() {
        for v in FlashVar::all() {
            assert_eq!(FlashVar::from_name(v.name()), Some(v));
        }
        assert_eq!(FlashVar::from_name("nope"), None);
    }
}
