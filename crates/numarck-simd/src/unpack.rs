//! Kernel 4: bulk bit-unpack of packed `B`-bit index codes, and the
//! centroid-lookup apply step that turns codes into reconstructed values.
//!
//! The packed layout is the core crate's `BitWriter` format: values
//! packed LSB-first into little-endian `u64` words, value `i` occupying
//! bits `[i·B, (i+1)·B)`. The scalar level replicates `read_at` from the
//! core crate field-for-field (word shift, straddle OR from the next
//! word, mask); the other levels produce identical codes by construction
//! and by test.
//!
//! [`apply_codes`] is the decode inner loop on top of the unpacked codes:
//! `out[j] = prev[j] · rep1[code]` with `rep1[t+1] = 1.0 + rep[t]`
//! precomputed by the caller, and code 0 copying `prev[j]` verbatim
//! (blended, never multiplied, so the identity holds bit-exactly even for
//! non-finite `prev` chains).

use crate::Level;

#[inline(always)]
fn code_mask(bits: u8) -> u32 {
    debug_assert!((1..=32).contains(&bits));
    if bits == 32 {
        u32::MAX
    } else {
        (1u32 << bits) - 1
    }
}

/// Dispatched bulk unpack: `out[j]` gets packed value `start + j`.
///
/// # Panics
/// Panics if `bits` is 0 or > 32; debug-panics if the requested range
/// overruns `words`.
#[inline]
pub fn unpack(words: &[u64], bits: u8, start: usize, out: &mut [u32]) {
    unpack_with(crate::active_level(), words, bits, start, out)
}

/// [`unpack`] at an explicit level (oracle sweeps).
pub fn unpack_with(level: Level, words: &[u64], bits: u8, start: usize, out: &mut [u32]) {
    assert!((1..=32).contains(&bits), "bits must be in 1..=32");
    debug_assert!(
        (start + out.len()) * bits as usize <= words.len() * 64,
        "unpack range overruns the word buffer"
    );
    match level {
        Level::Scalar => unpack_scalar(words, bits, start, out),
        Level::Unrolled => unpack_unrolled(words, bits, start, out),
        #[cfg(target_arch = "x86_64")]
        Level::Avx2 => unsafe { unpack_avx2(words, bits, start, out) },
        #[cfg(not(target_arch = "x86_64"))]
        Level::Avx2 => unpack_unrolled(words, bits, start, out),
    }
}

/// Scalar reference: the core crate's `read_at` per code (the oracle).
pub fn unpack_scalar(words: &[u64], bits: u8, start: usize, out: &mut [u32]) {
    let mask = code_mask(bits);
    for (j, slot) in out.iter_mut().enumerate() {
        let pos = (start + j) * bits as usize;
        let wi = pos / 64;
        let off = pos % 64;
        let mut v = words[wi] >> off;
        if bits as usize > 64 - off {
            v |= words[wi + 1] << (64 - off);
        }
        *slot = (v as u32) & mask;
    }
}

/// Portable variant: a running bit cursor replaces the per-code
/// divide/modulo, eight codes per iteration.
pub fn unpack_unrolled(words: &[u64], bits: u8, start: usize, out: &mut [u32]) {
    let mask = code_mask(bits);
    let b = bits as usize;
    let mut pos = start * b;
    let mut o8 = out.chunks_exact_mut(8);
    for o in &mut o8 {
        for slot in o.iter_mut() {
            let wi = pos >> 6;
            let off = pos & 63;
            let mut v = words[wi] >> off;
            if b > 64 - off {
                v |= words[wi + 1] << (64 - off);
            }
            *slot = (v as u32) & mask;
            pos += b;
        }
    }
    for slot in o8.into_remainder() {
        let wi = pos >> 6;
        let off = pos & 63;
        let mut v = words[wi] >> off;
        if b > 64 - off {
            v |= words[wi + 1] << (64 - off);
        }
        *slot = (v as u32) & mask;
        pos += b;
    }
}

/// AVX2 variant: per group of 4 codes, gather the straddling word pair
/// and funnel-shift with `srlv`/`sllv`.
///
/// The vector body gathers `words[wi + 1]` unconditionally (an `sllv`
/// shift of 64 — the `off == 0` case — yields 0, and bits landing at or
/// above `B` are masked off), so it only runs while `wi + 1` is in
/// bounds; trailing codes fall back to the scalar path.
///
/// # Safety
/// Requires the `avx2` CPU feature.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
pub unsafe fn unpack_avx2(words: &[u64], bits: u8, start: usize, out: &mut [u32]) {
    use std::arch::x86_64::*;
    let b = bits as usize;
    // Last absolute code index whose word pair is gather-safe.
    let safe = if words.len() < 2 {
        0
    } else {
        let last_ok = ((words.len() - 1) * 64 - 1) / b;
        (last_ok + 1).saturating_sub(start).min(out.len())
    };
    let vec_n = safe - safe % 4;
    let mask = _mm256_set1_epi64x(code_mask(bits) as i64);
    let c63 = _mm256_set1_epi64x(63);
    let c64 = _mm256_set1_epi64x(64);
    let step = _mm256_set1_epi64x((4 * b) as i64);
    let sb = start * b;
    let mut pos = _mm256_set_epi64x(
        (sb + 3 * b) as i64,
        (sb + 2 * b) as i64,
        (sb + b) as i64,
        sb as i64,
    );
    let mut i = 0;
    while i < vec_n {
        let wi = _mm256_srli_epi64::<6>(pos);
        let off = _mm256_and_si256(pos, c63);
        let lo = _mm256_i64gather_epi64::<8>(words.as_ptr().cast(), wi);
        let hi = _mm256_i64gather_epi64::<8>(
            words.as_ptr().cast(),
            _mm256_add_epi64(wi, _mm256_set1_epi64x(1)),
        );
        let v = _mm256_or_si256(
            _mm256_srlv_epi64(lo, off),
            _mm256_sllv_epi64(hi, _mm256_sub_epi64(c64, off)),
        );
        let code = _mm256_and_si256(v, mask);
        let mut tmp = [0i64; 4];
        _mm256_storeu_si256(tmp.as_mut_ptr().cast(), code);
        for (k, &c) in tmp.iter().enumerate() {
            out[i + k] = c as u32;
        }
        pos = _mm256_add_epi64(pos, step);
        i += 4;
    }
    unpack_scalar(words, bits, start + vec_n, &mut out[vec_n..]);
}

/// Dispatched maximum over packed values `start .. start + count`
/// (decode's index-validation scan) without materialising them: blocks
/// are unpacked into a stack buffer and folded.
#[inline]
pub fn max_unpacked(words: &[u64], bits: u8, start: usize, count: usize) -> u32 {
    max_unpacked_with(crate::active_level(), words, bits, start, count)
}

/// [`max_unpacked`] at an explicit level (oracle sweeps).
pub fn max_unpacked_with(level: Level, words: &[u64], bits: u8, start: usize, count: usize) -> u32 {
    let mut buf = [0u32; 256];
    let mut best = 0u32;
    let mut done = 0;
    while done < count {
        let take = (count - done).min(256);
        unpack_with(level, words, bits, start + done, &mut buf[..take]);
        for &c in &buf[..take] {
            best = best.max(c);
        }
        done += take;
    }
    best
}

/// Dispatched centroid-lookup apply: `out[j] = prev[j] * rep1[codes[j]]`,
/// except code 0 copies `prev[j]` verbatim. `rep1` is the caller's
/// `1 + representative` table indexed directly by code (`rep1[0]` is
/// never read).
///
/// # Panics
/// Panics if the slice lengths disagree; debug-panics on a code outside
/// `rep1` (release callers must have validated the stream).
#[inline]
pub fn apply_codes(codes: &[u32], rep1: &[f64], prev: &[f64], out: &mut [f64]) {
    apply_codes_with(crate::active_level(), codes, rep1, prev, out)
}

/// [`apply_codes`] at an explicit level (oracle sweeps).
pub fn apply_codes_with(level: Level, codes: &[u32], rep1: &[f64], prev: &[f64], out: &mut [f64]) {
    assert_eq!(codes.len(), prev.len(), "prev must align with codes");
    assert_eq!(codes.len(), out.len(), "out must align with codes");
    match level {
        Level::Scalar => apply_codes_scalar(codes, rep1, prev, out),
        Level::Unrolled => apply_codes_unrolled(codes, rep1, prev, out),
        #[cfg(target_arch = "x86_64")]
        Level::Avx2 => unsafe { apply_codes_avx2(codes, rep1, prev, out) },
        #[cfg(not(target_arch = "x86_64"))]
        Level::Avx2 => apply_codes_unrolled(codes, rep1, prev, out),
    }
}

/// Scalar reference implementation (the oracle).
pub fn apply_codes_scalar(codes: &[u32], rep1: &[f64], prev: &[f64], out: &mut [f64]) {
    for ((&c, &p), o) in codes.iter().zip(prev).zip(out.iter_mut()) {
        *o = if c == 0 { p } else { p * rep1[c as usize] };
    }
}

/// Portable chunks-of-8 variant.
pub fn apply_codes_unrolled(codes: &[u32], rep1: &[f64], prev: &[f64], out: &mut [f64]) {
    let mut c8 = codes.chunks_exact(8);
    let mut p8 = prev.chunks_exact(8);
    let mut o8 = out.chunks_exact_mut(8);
    for ((c, p), o) in (&mut c8).zip(&mut p8).zip(&mut o8) {
        for k in 0..8 {
            o[k] = if c[k] == 0 { p[k] } else { p[k] * rep1[c[k] as usize] };
        }
    }
    for ((&c, &p), o) in
        c8.remainder().iter().zip(p8.remainder()).zip(o8.into_remainder())
    {
        *o = if c == 0 { p } else { p * rep1[c as usize] };
    }
}

/// AVX2 variant: gather the factors, multiply, blend code-0 lanes back
/// to `prev` (`x · 1.0` would perturb a NaN payload; the blend never
/// does).
///
/// # Safety
/// Requires the `avx2` CPU feature. Every code must index into `rep1`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
pub unsafe fn apply_codes_avx2(codes: &[u32], rep1: &[f64], prev: &[f64], out: &mut [f64]) {
    use std::arch::x86_64::*;
    let n = codes.len();
    let lanes = n - n % 4;
    let zero = _mm256_setzero_si256();
    let mut i = 0;
    while i < lanes {
        let c32 = _mm_loadu_si128(codes.as_ptr().add(i).cast());
        let idx = _mm256_cvtepu32_epi64(c32);
        let factor = _mm256_i64gather_pd::<8>(rep1.as_ptr(), idx);
        let p = _mm256_loadu_pd(prev.as_ptr().add(i));
        let prod = _mm256_mul_pd(p, factor);
        let is_zero = _mm256_castsi256_pd(_mm256_cmpeq_epi64(idx, zero));
        _mm256_storeu_pd(out.as_mut_ptr().add(i), _mm256_blendv_pd(prod, p, is_zero));
        i += 4;
    }
    for j in lanes..n {
        let c = codes[j];
        out[j] = if c == 0 { prev[j] } else { prev[j] * rep1[c as usize] };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test-local packer replicating the core `BitWriter` layout.
    fn pack(values: &[u32], bits: u8) -> Vec<u64> {
        let mut words = vec![0u64; (values.len() * bits as usize).div_ceil(64).max(1)];
        for (i, &v) in values.iter().enumerate() {
            let pos = i * bits as usize;
            let (wi, off) = (pos / 64, pos % 64);
            words[wi] |= (v as u64) << off;
            if off + bits as usize > 64 {
                words[wi + 1] |= (v as u64) >> (64 - off);
            }
        }
        words
    }

    fn values(n: usize, bits: u8) -> Vec<u32> {
        let mask = code_mask(bits);
        (0..n as u32).map(|i| i.wrapping_mul(2654435761) & mask).collect()
    }

    #[test]
    fn levels_agree_for_all_widths_offsets_and_sizes() {
        for bits in [1u8, 3, 7, 8, 9, 11, 13, 16, 24, 32] {
            let vals = values(300, bits);
            let words = pack(&vals, bits);
            for start in [0usize, 1, 5, 63, 64, 65, 131] {
                for n in [0usize, 1, 3, 4, 7, 8, 9, 63, 64, 65, 100] {
                    if start + n > vals.len() {
                        continue;
                    }
                    for level in Level::all_supported() {
                        let mut out = vec![u32::MAX; n];
                        unpack_with(level, &words, bits, start, &mut out);
                        assert_eq!(
                            out,
                            &vals[start..start + n],
                            "level {} bits {bits} start {start} n {n}",
                            level.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn max_unpacked_levels_agree() {
        let bits = 9u8;
        let vals = values(700, bits);
        let words = pack(&vals, bits);
        for (start, count) in [(0usize, 700usize), (13, 300), (255, 257), (699, 1), (0, 0)] {
            let expect = vals[start..start + count].iter().copied().max().unwrap_or(0);
            for level in Level::all_supported() {
                assert_eq!(
                    max_unpacked_with(level, &words, bits, start, count),
                    expect,
                    "level {} start {start} count {count}",
                    level.name()
                );
            }
        }
    }

    #[test]
    fn apply_codes_levels_are_bit_identical() {
        let rep1: Vec<f64> = std::iter::once(1.0)
            .chain((0..31).map(|t| 1.0 + (t as f64 - 15.0) / 97.0))
            .collect();
        for n in [0usize, 1, 3, 4, 5, 7, 8, 9, 63, 64, 65, 513] {
            let codes: Vec<u32> = (0..n as u32).map(|i| (i * 7) % 32).collect();
            let prev: Vec<f64> = (0..n).map(|i| -3.0 + (i as f64) * 0.37).collect();
            let mut oracle = vec![0.0f64; n];
            apply_codes_scalar(&codes, &rep1, &prev, &mut oracle);
            for level in Level::all_supported() {
                let mut got = vec![f64::NAN; n];
                apply_codes_with(level, &codes, &rep1, &prev, &mut got);
                for j in 0..n {
                    assert_eq!(
                        got[j].to_bits(),
                        oracle[j].to_bits(),
                        "level {} n {n} j {j}",
                        level.name()
                    );
                }
            }
        }
    }

    #[test]
    fn code_zero_preserves_prev_bitwise() {
        // −0.0 and a NaN payload survive only if code 0 is a copy, not a
        // multiply.
        let rep1 = [1.0, 1.5];
        let prev = [-0.0f64, f64::from_bits(0x7FF8_0000_DEAD_BEEF), 2.0, -0.0, 1.0];
        let codes = [0u32, 0, 1, 0, 1];
        for level in Level::all_supported() {
            let mut out = [0.0f64; 5];
            apply_codes_with(level, &codes, &rep1, &prev, &mut out);
            assert_eq!(out[0].to_bits(), (-0.0f64).to_bits(), "level {}", level.name());
            assert_eq!(out[1].to_bits(), prev[1].to_bits(), "level {}", level.name());
            assert_eq!(out[2], 3.0);
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn unpack_inverts_pack(
                raw in proptest::collection::vec(any::<u32>(), 0..500),
                bits in 1u8..=16,
                start_frac in 0.0f64..1.0
            ) {
                let mask = code_mask(bits);
                let vals: Vec<u32> = raw.iter().map(|&v| v & mask).collect();
                let words = pack(&vals, bits);
                let start = (start_frac * vals.len() as f64) as usize;
                let n = vals.len() - start;
                for level in Level::all_supported() {
                    let mut out = vec![0u32; n];
                    unpack_with(level, &words, bits, start, &mut out);
                    prop_assert_eq!(&out[..], &vals[start..]);
                }
            }

            #[test]
            fn apply_matches_oracle(
                pts in proptest::collection::vec((0u32..16, -100.0f64..100.0), 0..300)
            ) {
                let rep1: Vec<f64> =
                    std::iter::once(1.0).chain((0..15).map(|t| 1.0 + t as f64 * 0.01)).collect();
                let codes: Vec<u32> = pts.iter().map(|p| p.0).collect();
                let prev: Vec<f64> = pts.iter().map(|p| p.1).collect();
                let mut oracle = vec![0.0f64; pts.len()];
                apply_codes_scalar(&codes, &rep1, &prev, &mut oracle);
                for level in Level::all_supported() {
                    let mut got = vec![0.0f64; pts.len()];
                    apply_codes_with(level, &codes, &rep1, &prev, &mut got);
                    for j in 0..pts.len() {
                        prop_assert_eq!(got[j].to_bits(), oracle[j].to_bits());
                    }
                }
            }
        }
    }
}
