//! Clustering-based approximation (paper §II-C.3).
//!
//! Runs 1-D K-means with `k = 2^B − 1` clusters over the fit sample,
//! seeded from the equal-width histogram exactly as the paper prescribes
//! ("we initialize the cluster centroids for K-means with prior-knowledge
//! from the equal-width histogram"). The converged centroids become the
//! representative ratios. Unlike the fixed binnings, the centroids migrate
//! into locally dense regions, so unevenly spread multi-modal change
//! distributions — the common case for climate data — are captured with
//! far fewer escapes to exact storage.

use numarck_kmeans::{Init1D, KMeans1D, KMeansOptions};

use crate::config::ClusteringOptions;

/// Representatives: converged K-means centroids.
pub fn representatives(sample: &[f64], k: usize, opts: &ClusteringOptions) -> Vec<f64> {
    debug_assert!(!sample.is_empty());
    let km_opts = KMeansOptions {
        max_iterations: opts.max_iterations,
        change_threshold: opts.change_threshold,
        seed: opts.seed,
    };
    let result = KMeans1D::new(k)
        .with_init(Init1D::Histogram)
        .with_options(km_opts)
        .fit(sample);
    result.centers.centers().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> ClusteringOptions {
        ClusteringOptions::default()
    }

    #[test]
    fn centroids_find_dense_modes() {
        // Three tight modes; k = 3 should land a centroid on each.
        let mut sample = Vec::new();
        for i in 0..1000 {
            let jitter = (i % 10) as f64 * 1e-5;
            sample.push(0.01 + jitter);
            sample.push(0.05 + jitter);
            sample.push(-0.02 + jitter);
        }
        let mut reps = representatives(&sample, 3, &opts());
        reps.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(reps.len(), 3);
        assert!((reps[0] - (-0.02)).abs() < 0.002, "{reps:?}");
        assert!((reps[1] - 0.01).abs() < 0.002, "{reps:?}");
        assert!((reps[2] - 0.05).abs() < 0.002, "{reps:?}");
    }

    #[test]
    fn beats_equal_width_on_uneven_modes() {
        // Two dense modes plus one extreme outlier: equal-width wastes
        // bins on empty space, clustering does not.
        let mut sample = Vec::new();
        for i in 0..5000 {
            let jitter = (i % 100) as f64 * 1e-6;
            sample.push(0.001 + jitter);
            sample.push(0.002 + jitter);
        }
        sample.push(5.0); // outlier stretches the range
        let k = 7;
        let cl = representatives(&sample, k, &opts());
        let ew = crate::strategy::equal_width::representatives(&sample, k);
        let mse = |reps: &[f64]| -> f64 {
            sample
                .iter()
                .map(|&x| {
                    reps.iter().map(|r| (r - x) * (r - x)).fold(f64::INFINITY, f64::min)
                })
                .sum::<f64>()
                / sample.len() as f64
        };
        assert!(
            mse(&cl) < mse(&ew) * 0.5,
            "clustering {} should beat equal-width {}",
            mse(&cl),
            mse(&ew)
        );
    }

    #[test]
    fn deterministic() {
        let sample: Vec<f64> = (0..3000).map(|i| ((i * 17) % 301) as f64 * 1e-4).collect();
        let a = representatives(&sample, 31, &opts());
        let b = representatives(&sample, 31, &opts());
        assert_eq!(a, b);
    }

    #[test]
    fn fewer_distinct_values_than_k() {
        let sample = vec![0.1, 0.2, 0.1, 0.2];
        let reps = representatives(&sample, 255, &opts());
        assert!(reps.len() <= 2);
    }
}
