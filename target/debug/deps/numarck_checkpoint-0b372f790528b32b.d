/root/repo/target/debug/deps/numarck_checkpoint-0b372f790528b32b.d: crates/numarck-checkpoint/src/lib.rs crates/numarck-checkpoint/src/backend.rs crates/numarck-checkpoint/src/fault.rs crates/numarck-checkpoint/src/format.rs crates/numarck-checkpoint/src/manager.rs crates/numarck-checkpoint/src/obs.rs crates/numarck-checkpoint/src/replicated.rs crates/numarck-checkpoint/src/restart.rs crates/numarck-checkpoint/src/scrub.rs crates/numarck-checkpoint/src/store.rs Cargo.toml

/root/repo/target/debug/deps/libnumarck_checkpoint-0b372f790528b32b.rmeta: crates/numarck-checkpoint/src/lib.rs crates/numarck-checkpoint/src/backend.rs crates/numarck-checkpoint/src/fault.rs crates/numarck-checkpoint/src/format.rs crates/numarck-checkpoint/src/manager.rs crates/numarck-checkpoint/src/obs.rs crates/numarck-checkpoint/src/replicated.rs crates/numarck-checkpoint/src/restart.rs crates/numarck-checkpoint/src/scrub.rs crates/numarck-checkpoint/src/store.rs Cargo.toml

crates/numarck-checkpoint/src/lib.rs:
crates/numarck-checkpoint/src/backend.rs:
crates/numarck-checkpoint/src/fault.rs:
crates/numarck-checkpoint/src/format.rs:
crates/numarck-checkpoint/src/manager.rs:
crates/numarck-checkpoint/src/obs.rs:
crates/numarck-checkpoint/src/replicated.rs:
crates/numarck-checkpoint/src/restart.rs:
crates/numarck-checkpoint/src/scrub.rs:
crates/numarck-checkpoint/src/store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
