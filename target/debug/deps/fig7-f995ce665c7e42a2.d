/root/repo/target/debug/deps/fig7-f995ce665c7e42a2.d: crates/numarck-bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-f995ce665c7e42a2: crates/numarck-bench/src/bin/fig7.rs

crates/numarck-bench/src/bin/fig7.rs:
