/root/repo/target/debug/deps/numarck_kmeans-cd9444e4ad78a746.d: crates/numarck-kmeans/src/lib.rs crates/numarck-kmeans/src/general.rs crates/numarck-kmeans/src/init.rs crates/numarck-kmeans/src/lloyd1d.rs Cargo.toml

/root/repo/target/debug/deps/libnumarck_kmeans-cd9444e4ad78a746.rmeta: crates/numarck-kmeans/src/lib.rs crates/numarck-kmeans/src/general.rs crates/numarck-kmeans/src/init.rs crates/numarck-kmeans/src/lloyd1d.rs Cargo.toml

crates/numarck-kmeans/src/lib.rs:
crates/numarck-kmeans/src/general.rs:
crates/numarck-kmeans/src/init.rs:
crates/numarck-kmeans/src/lloyd1d.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
