/root/repo/target/debug/deps/ext1_closed_loop-af3f2acee45ae3d6.d: crates/numarck-bench/src/bin/ext1_closed_loop.rs

/root/repo/target/debug/deps/libext1_closed_loop-af3f2acee45ae3d6.rmeta: crates/numarck-bench/src/bin/ext1_closed_loop.rs

crates/numarck-bench/src/bin/ext1_closed_loop.rs:
