/root/repo/target/debug/deps/rayon-6768df8e92748c6e.d: .stubs/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-6768df8e92748c6e.rmeta: .stubs/rayon/src/lib.rs

.stubs/rayon/src/lib.rs:
