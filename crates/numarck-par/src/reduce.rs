//! Deterministic parallel reductions over `f64` slices.
//!
//! Floating-point addition is not associative, so a naive parallel sum gives
//! run-to-run different results depending on how the work was stolen. The
//! reductions here fix the chunk decomposition up front (see
//! [`crate::chunk`]) and combine per-chunk partials in chunk order, so a
//! given input and thread-count always produces the same bits. Per-chunk
//! sums use Neumaier's compensated summation, which keeps the error of the
//! change-ratio statistics well below the 0.1% tolerances NUMARCK works at.

use rayon::prelude::*;

use crate::chunk::{chunk_size_for, chunk_ranges};

/// Neumaier (improved Kahan) compensated accumulator.
#[derive(Debug, Clone, Copy, Default)]
pub struct Neumaier {
    sum: f64,
    comp: f64,
}

impl Neumaier {
    /// Fresh accumulator at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one term.
    #[inline]
    pub fn add(&mut self, x: f64) {
        let t = self.sum + x;
        if self.sum.abs() >= x.abs() {
            self.comp += (self.sum - t) + x;
        } else {
            self.comp += (x - t) + self.sum;
        }
        self.sum = t;
    }

    /// Merge another accumulator into this one.
    #[inline]
    pub fn merge(&mut self, other: &Neumaier) {
        self.add(other.sum);
        self.comp += other.comp;
    }

    /// Final compensated value.
    #[inline]
    pub fn value(&self) -> f64 {
        self.sum + self.comp
    }
}

/// Compensated sequential sum of a slice.
pub fn seq_sum(data: &[f64]) -> f64 {
    let mut acc = Neumaier::new();
    for &x in data {
        acc.add(x);
    }
    acc.value()
}

/// Deterministic parallel compensated sum.
pub fn par_sum(data: &[f64]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let chunk = chunk_size_for(data.len());
    let partials: Vec<Neumaier> = data
        .par_chunks(chunk)
        .map(|c| {
            let mut acc = Neumaier::new();
            for &x in c {
                acc.add(x);
            }
            acc
        })
        .collect();
    let mut total = Neumaier::new();
    for p in &partials {
        total.merge(p);
    }
    total.value()
}

/// Minimum and maximum of a slice, ignoring NaNs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MinMax {
    /// Smallest non-NaN value seen (`f64::INFINITY` if none).
    pub min: f64,
    /// Largest non-NaN value seen (`f64::NEG_INFINITY` if none).
    pub max: f64,
    /// Number of non-NaN values.
    pub count: usize,
}

impl MinMax {
    /// Identity element for the min/max reduction.
    pub fn empty() -> Self {
        Self { min: f64::INFINITY, max: f64::NEG_INFINITY, count: 0 }
    }

    /// Fold one value in.
    #[inline]
    pub fn add(&mut self, x: f64) {
        if x.is_nan() {
            return;
        }
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        self.count += 1;
    }

    /// Combine two partial results.
    #[inline]
    pub fn merge(&self, other: &MinMax) -> MinMax {
        MinMax {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
            count: self.count + other.count,
        }
    }

    /// `max - min`; zero for empty input.
    pub fn range(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max - self.min
        }
    }
}

/// Parallel NaN-ignoring min/max.
pub fn par_min_max(data: &[f64]) -> MinMax {
    if data.is_empty() {
        return MinMax::empty();
    }
    let chunk = chunk_size_for(data.len());
    data.par_chunks(chunk)
        .map(|c| {
            let mut mm = MinMax::empty();
            for &x in c {
                mm.add(x);
            }
            mm
        })
        .reduce(MinMax::empty, |a, b| a.merge(&b))
}

/// First and second moments (compensated), plus extrema of `|x|`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Moments {
    /// Number of values folded in.
    pub count: usize,
    sum: Neumaier,
    sum_sq: Neumaier,
    /// Largest absolute value.
    pub max_abs: f64,
}

impl Moments {
    /// Identity element.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Fold one value in.
    #[inline]
    pub fn add(&mut self, x: f64) {
        self.count += 1;
        self.sum.add(x);
        self.sum_sq.add(x * x);
        let a = x.abs();
        if a > self.max_abs {
            self.max_abs = a;
        }
    }

    /// Combine two partials (chunk-ordered merge keeps determinism).
    pub fn merge(&mut self, other: &Moments) {
        self.count += other.count;
        self.sum.merge(&other.sum);
        self.sum_sq.merge(&other.sum_sq);
        self.max_abs = self.max_abs.max(other.max_abs);
    }

    /// Arithmetic mean (0 for empty input).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum.value() / self.count as f64
        }
    }

    /// Population variance (0 for empty input). Clamped at zero to absorb
    /// rounding when all values are identical.
    pub fn variance(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let n = self.count as f64;
        let m = self.mean();
        (self.sum_sq.value() / n - m * m).max(0.0)
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Compensated sum of all values.
    pub fn total(&self) -> f64 {
        self.sum.value()
    }

    /// Compensated sum of squares.
    pub fn total_sq(&self) -> f64 {
        self.sum_sq.value()
    }
}

/// Parallel moment accumulation over a slice.
pub fn par_moments(data: &[f64]) -> Moments {
    if data.is_empty() {
        return Moments::empty();
    }
    let chunk = chunk_size_for(data.len());
    let partials: Vec<Moments> = data
        .par_chunks(chunk)
        .map(|c| {
            let mut m = Moments::empty();
            for &x in c {
                m.add(x);
            }
            m
        })
        .collect();
    let mut total = Moments::empty();
    for p in &partials {
        total.merge(p);
    }
    total
}

/// Parallel dot-product-style reduction of two equal-length slices with a
/// per-element map. Used for RMSE / Pearson accumulations in the metrics
/// module. Panics if lengths differ.
pub fn par_zip_sum(a: &[f64], b: &[f64], f: impl Fn(f64, f64) -> f64 + Sync) -> f64 {
    assert_eq!(a.len(), b.len(), "par_zip_sum requires equal-length slices");
    if a.is_empty() {
        return 0.0;
    }
    let chunk = chunk_size_for(a.len());
    let ranges: Vec<(usize, usize)> = chunk_ranges(a.len(), chunk).collect();
    let partials: Vec<Neumaier> = ranges
        .par_iter()
        .map(|&(s, e)| {
            let mut acc = Neumaier::new();
            for i in s..e {
                acc.add(f(a[i], b[i]));
            }
            acc
        })
        .collect();
    let mut total = Neumaier::new();
    for p in &partials {
        total.merge(p);
    }
    total.value()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neumaier_beats_naive_on_cancellation() {
        // 1 + 1e100 + 1 - 1e100 == 2 exactly under Neumaier, 0 naively.
        let data = [1.0, 1e100, 1.0, -1e100];
        assert_eq!(seq_sum(&data), 2.0);
        let naive: f64 = data.iter().sum();
        assert_eq!(naive, 0.0);
    }

    #[test]
    fn par_sum_matches_seq_sum() {
        let data: Vec<f64> = (0..100_000).map(|i| (i as f64).sin() * 1e3).collect();
        let s = seq_sum(&data);
        let p = par_sum(&data);
        assert!((s - p).abs() <= 1e-9 * s.abs().max(1.0), "seq={s} par={p}");
    }

    #[test]
    fn par_sum_empty_is_zero() {
        assert_eq!(par_sum(&[]), 0.0);
    }

    #[test]
    fn min_max_ignores_nan() {
        let data = [3.0, f64::NAN, -1.0, 7.5, f64::NAN];
        let mm = par_min_max(&data);
        assert_eq!(mm.min, -1.0);
        assert_eq!(mm.max, 7.5);
        assert_eq!(mm.count, 3);
    }

    #[test]
    fn min_max_empty() {
        let mm = par_min_max(&[]);
        assert_eq!(mm.count, 0);
        assert_eq!(mm.range(), 0.0);
    }

    #[test]
    fn moments_mean_variance() {
        let data: Vec<f64> = (1..=5).map(|i| i as f64).collect();
        let m = par_moments(&data);
        assert_eq!(m.count, 5);
        assert!((m.mean() - 3.0).abs() < 1e-12);
        assert!((m.variance() - 2.0).abs() < 1e-12);
        assert_eq!(m.max_abs, 5.0);
    }

    #[test]
    fn moments_constant_data_zero_variance() {
        let data = vec![4.25; 10_000];
        let m = par_moments(&data);
        assert_eq!(m.variance(), 0.0);
        assert_eq!(m.mean(), 4.25);
    }

    #[test]
    fn zip_sum_squared_diff() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 0.0, 6.0];
        let s = par_zip_sum(&a, &b, |x, y| (x - y) * (x - y));
        assert!((s - (0.0 + 4.0 + 9.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn zip_sum_length_mismatch_panics() {
        par_zip_sum(&[1.0], &[1.0, 2.0], |x, y| x + y);
    }

    #[test]
    fn par_sum_is_deterministic() {
        let data: Vec<f64> = (0..50_000).map(|i| ((i * 2654435761_usize) as f64).cos()).collect();
        let first = par_sum(&data);
        for _ in 0..5 {
            assert_eq!(par_sum(&data).to_bits(), first.to_bits());
        }
    }
}
