/root/repo/target/debug/deps/fig3-e44912cdde28f746.d: crates/numarck-bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-e44912cdde28f746: crates/numarck-bench/src/bin/fig3.rs

crates/numarck-bench/src/bin/fig3.rs:
