/root/repo/target/release/deps/rayon-cc24b7b183d06bf2.d: .stubs/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-cc24b7b183d06bf2.rlib: .stubs/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-cc24b7b183d06bf2.rmeta: .stubs/rayon/src/lib.rs

.stubs/rayon/src/lib.rs:
