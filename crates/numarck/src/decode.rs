//! Reconstruction (the paper's restart equation, §II-D).
//!
//! Given the previous iteration's values (exact or themselves
//! reconstructed) and a compressed block, each point is rebuilt as
//!
//! ```text
//! ε_ij = D_ij                      if point j is incompressible (ζ = 0)
//!      = D'_{i−1,j}                if index = 0 (change below E)
//!      = D'_{i−1,j} · (1 + Δ'_ij)  otherwise
//! ```
//!
//! Decoding is chunk-parallel and mirrors the encoder's rank-partitioned
//! packer: chunks are aligned to 64 points so each owns whole bitmap
//! words, and a block-granularity rank index (prefix popcount at chunk
//! starts only — O(chunks) memory, not O(words)) tells each chunk where
//! its indices and exact values start.

use rayon::prelude::*;

use numarck_par::chunk::{chunk_ranges, chunk_size_aligned, chunk_size_for};
use numarck_par::scan::chunked_popcount_ranks;

use crate::encode::CompressedIteration;
use crate::error::NumarckError;

/// Points decoded per cache block: codes for one block are bulk-unpacked
/// into a stack buffer (4 KiB) once, instead of re-walking the bit stream
/// per point, and stay L1-resident while the values are rebuilt.
const DECODE_BLOCK: usize = 1024;

/// A borrowed view of one compressed block: everything the decoder
/// needs, as plain slices.
///
/// [`CompressedIteration::block_ref`] produces one over the owned
/// in-memory layout; the v2 container's mapped reader produces one whose
/// slices point straight into the mapped file (its sections are
/// 64-byte-aligned precisely so `bitmap`/`index_words`/`exact_values`
/// can be reinterpreted in place), which is what makes zero-copy decode
/// possible without a second decode implementation.
#[derive(Debug, Clone, Copy)]
pub struct BlockRef<'a> {
    /// Index width `B` in bits.
    pub bits: u8,
    /// Number of data points.
    pub num_points: usize,
    /// Number of compressible (index-coded) points.
    pub num_compressible: usize,
    /// Sorted representative ratios (the centroid table).
    pub table: &'a [f64],
    /// Compressibility bitmap, one bit per point.
    pub bitmap: &'a [u64],
    /// Bit-packed `B`-bit indices of the compressible points.
    pub index_words: &'a [u64],
    /// Exact values of the incompressible points, point order.
    pub exact_values: &'a [f64],
}

impl BlockRef<'_> {
    /// Whether point `j` is index-coded.
    #[inline]
    pub fn is_compressible(&self, j: usize) -> bool {
        (self.bitmap[j / 64] >> (j % 64)) & 1 == 1
    }
}

impl CompressedIteration {
    /// Borrow this block as the slice view the decoders run on.
    pub fn block_ref(&self) -> BlockRef<'_> {
        BlockRef {
            bits: self.bits,
            num_points: self.num_points,
            num_compressible: self.num_compressible,
            table: self.table.representatives(),
            bitmap: &self.bitmap,
            index_words: &self.index_words,
            exact_values: &self.exact_values,
        }
    }
}

/// Reconstruct the current iteration from `prev` and a compressed block.
///
/// `prev` may be exact data or a previous reconstruction (the restart
/// chain case); length must equal the block's `num_points`.
pub fn reconstruct(prev: &[f64], block: &CompressedIteration) -> Result<Vec<f64>, NumarckError> {
    reconstruct_ref(prev, &block.block_ref())
}

/// [`reconstruct`] over a borrowed [`BlockRef`] — the entry point of the
/// zero-copy path, where the slices live inside a mapped checkpoint file.
pub fn reconstruct_ref(prev: &[f64], block: &BlockRef<'_>) -> Result<Vec<f64>, NumarckError> {
    crate::obs::decodes_total().inc();
    let _span = crate::obs::decode_ns().span();
    validate(prev, block)?;
    let n = block.num_points;
    if n == 0 {
        return Ok(Vec::new());
    }

    // Chunk decomposition mirrors the encoder's packer: chunks aligned
    // to 64 points own whole bitmap words, and the block-granularity rank
    // index gives each chunk the number of compressible points before it.
    let chunk = chunk_size_aligned(n, 64);
    let (chunk_ranks, _) = chunked_popcount_ranks(block.bitmap, chunk / 64);

    // `1 + Δ'` per code, shared read-only across chunks. Entry 0 pairs
    // with the small-change code and is never multiplied in (those lanes
    // blend `prev` through verbatim — NaN payloads and signed zeros in
    // `prev` survive bit-exactly, which `prev * 1.0` would not promise).
    let rep1: Vec<f64> = std::iter::once(1.0)
        .chain(block.table.iter().map(|&r| 1.0 + r))
        .collect();

    let mut out = vec![0.0f64; n];
    out.par_chunks_mut(chunk).zip(chunk_ranks.par_iter()).enumerate().for_each(
        |(ci, (points, &rank))| {
            let base = ci * chunk;
            let mut comp_rank = rank as usize;
            // Exact rank: points before this chunk minus compressible
            // before it.
            let mut exact_rank = base - comp_rank;
            // One pre-sized scratch per chunk task, reused by every block
            // in the chunk — no per-block heap traffic.
            let mut codes = [0u32; DECODE_BLOCK];
            for (bi, pts_block) in points.chunks_mut(DECODE_BLOCK).enumerate() {
                let block_base = base + bi * DECODE_BLOCK;
                let word0 = block_base / 64;
                let nwords = pts_block.len().div_ceil(64);
                let words = &block.bitmap[word0..word0 + nwords];
                // All of this block's codes in one bulk unpack.
                let ncomp = numarck_simd::popcount::popcount_sum(words) as usize;
                numarck_simd::unpack::unpack(
                    block.index_words,
                    block.bits,
                    comp_rank,
                    &mut codes[..ncomp],
                );
                let mut cpos = 0usize;
                for (w, pts) in pts_block.chunks_mut(64).enumerate() {
                    let word = words[w];
                    let j0 = block_base + w * 64;
                    if word == u64::MAX && pts.len() == 64 {
                        // Fully compressible word: vector centroid lookup.
                        numarck_simd::unpack::apply_codes(
                            &codes[cpos..cpos + 64],
                            &rep1,
                            &prev[j0..j0 + 64],
                            pts,
                        );
                        cpos += 64;
                    } else if word == 0 {
                        // Fully escaped word: straight copy.
                        pts.copy_from_slice(
                            &block.exact_values[exact_rank..exact_rank + pts.len()],
                        );
                        exact_rank += pts.len();
                    } else {
                        for (b, slot) in pts.iter_mut().enumerate() {
                            if (word >> b) & 1 == 1 {
                                let code = codes[cpos] as usize;
                                cpos += 1;
                                *slot = if code == 0 {
                                    prev[j0 + b]
                                } else {
                                    prev[j0 + b] * rep1[code]
                                };
                            } else {
                                *slot = block.exact_values[exact_rank];
                                exact_rank += 1;
                            }
                        }
                    }
                }
                comp_rank += ncomp;
            }
        },
    );
    Ok(out)
}

/// Sequential reference decoder (kept as the oracle the parallel path is
/// tested against; also used for tiny blocks in hot loops).
pub fn reconstruct_seq(
    prev: &[f64],
    block: &CompressedIteration,
) -> Result<Vec<f64>, NumarckError> {
    reconstruct_seq_ref(prev, &block.block_ref())
}

/// [`reconstruct_seq`] over a borrowed [`BlockRef`].
pub fn reconstruct_seq_ref(prev: &[f64], block: &BlockRef<'_>) -> Result<Vec<f64>, NumarckError> {
    validate(prev, block)?;
    let mut out = Vec::with_capacity(block.num_points);
    let mut reader = crate::bitstream::BitReader::new(
        block.index_words,
        block.num_compressible * block.bits as usize,
    );
    let mut exacts = block.exact_values.iter();
    for j in 0..block.num_points {
        if block.is_compressible(j) {
            let code = reader
                .read(block.bits)
                .ok_or_else(|| NumarckError::Corrupt("index stream exhausted".into()))?;
            if code == 0 {
                out.push(prev[j]);
            } else {
                out.push(prev[j] * (1.0 + block.table[code as usize - 1]));
            }
        } else {
            let v = exacts
                .next()
                .ok_or_else(|| NumarckError::Corrupt("exact values exhausted".into()))?;
            out.push(*v);
        }
    }
    Ok(out)
}

fn validate(prev: &[f64], block: &BlockRef<'_>) -> Result<(), NumarckError> {
    if prev.len() != block.num_points {
        return Err(NumarckError::LengthMismatch { prev: prev.len(), curr: block.num_points });
    }
    let set_bits: usize = block.bitmap.iter().map(|w| w.count_ones() as usize).sum();
    if set_bits != block.num_compressible {
        return Err(NumarckError::Corrupt(format!(
            "bitmap has {set_bits} set bits but header claims {}",
            block.num_compressible
        )));
    }
    if block.num_compressible + block.exact_values.len() != block.num_points {
        return Err(NumarckError::Corrupt(
            "compressible + exact counts do not cover all points".into(),
        ));
    }
    // Indices must address the table; parallel max-code scan using the
    // bulk-unpack lane kernel instead of one bit-stream walk per point.
    let nc = block.num_compressible;
    let ranges: Vec<(usize, usize)> = chunk_ranges(nc, chunk_size_for(nc)).collect();
    let max_code = ranges
        .par_iter()
        .map(|&(s, e)| numarck_simd::unpack::max_unpacked(block.index_words, block.bits, s, e - s))
        .max()
        .unwrap_or(0);
    if max_code as usize > block.table.len() {
        return Err(NumarckError::Corrupt(format!(
            "index {max_code} exceeds table length {}",
            block.table.len()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::encode::encode;
    use crate::strategy::Strategy;

    fn roundtrip(prev: &[f64], curr: &[f64], cfg: &Config) -> Vec<f64> {
        let (block, _) = encode(prev, curr, cfg).unwrap();
        let par = reconstruct(prev, &block).unwrap();
        let seq = reconstruct_seq(prev, &block).unwrap();
        assert_eq!(par, seq, "parallel and sequential decoders must agree");
        par
    }

    #[test]
    fn roundtrip_respects_error_bound() {
        let n = 10_000;
        let prev: Vec<f64> = (0..n).map(|i| 1.0 + ((i * 31) % 1009) as f64 / 100.0).collect();
        let curr: Vec<f64> =
            prev.iter().enumerate().map(|(i, v)| v * (1.0 + 0.004 * ((i % 11) as f64 - 5.0) / 5.0)).collect();
        for s in Strategy::all() {
            let cfg = Config::new(8, 0.001, s).unwrap();
            let restored = roundtrip(&prev, &curr, &cfg);
            for (j, (&r, &c)) in restored.iter().zip(&curr).enumerate() {
                // Value-space bound: E · |prev/curr| (changes here are at
                // most 0.4%, so the factor is ≤ 1/0.996).
                let rel = ((r - c) / c).abs();
                assert!(rel <= 0.001 / 0.996 + 1e-12, "{s} point {j}: rel err {rel}");
            }
        }
    }

    #[test]
    fn exact_points_are_bit_exact() {
        let prev = vec![0.0, 0.0, 1.0];
        let curr = vec![std::f64::consts::PI, -7.25, 1.0];
        let cfg = Config::new(8, 0.001, Strategy::Clustering).unwrap();
        let restored = roundtrip(&prev, &curr, &cfg);
        assert_eq!(restored[0], std::f64::consts::PI);
        assert_eq!(restored[1], -7.25);
        assert_eq!(restored[2], 1.0);
    }

    #[test]
    fn small_change_points_carry_previous_value() {
        let prev = vec![2.0, 3.0];
        let curr = vec![2.0001, 3.0]; // 0.005% and 0% — both below E = 0.1%
        let cfg = Config::new(8, 0.001, Strategy::EqualWidth).unwrap();
        let restored = roundtrip(&prev, &curr, &cfg);
        assert_eq!(restored, prev);
    }

    #[test]
    fn small_change_passthrough_is_bitwise_even_for_odd_payloads() {
        // Restart chains may feed a *reconstruction* as `prev`, and the
        // small-change rule is "previous value verbatim" — a blend, not a
        // multiply. NaN payloads and signed zeros must survive decode
        // bit-exactly through both the vector fast path (whole bitmap
        // word compressible) and the scalar mixed path.
        let n = 192; // 3 whole bitmap words
        let prev: Vec<f64> = vec![2.0; n];
        let curr: Vec<f64> = prev.clone(); // zero change everywhere -> all code 0
        let cfg = Config::new(8, 0.001, Strategy::Clustering).unwrap();
        let (block, _) = encode(&prev, &curr, &cfg).unwrap();
        let weird = f64::from_bits(0x7ff8_0000_dead_beef); // NaN payload
        let mut prev2 = prev.clone();
        prev2[0] = -0.0;
        prev2[67] = weird;
        prev2[191] = f64::from_bits(0xfff0_0000_0000_0001); // -sNaN-ish
        let par = reconstruct(&prev2, &block).unwrap();
        let seq = reconstruct_seq(&prev2, &block).unwrap();
        for j in [0usize, 67, 191] {
            assert_eq!(par[j].to_bits(), prev2[j].to_bits(), "par point {j}");
            assert_eq!(seq[j].to_bits(), prev2[j].to_bits(), "seq point {j}");
        }
    }

    #[test]
    fn mixed_word_decode_matches_oracle_across_escape_densities() {
        // Force bitmap words of every flavour — all-ones (vector path),
        // all-zero (exact copy), mixed (scalar path) — across
        // lane-boundary lengths, and hold the parallel decoder to the
        // sequential oracle bit-for-bit.
        for n in [1usize, 63, 64, 65, 127, 128, 1023, 1024, 1025, 4097] {
            for escape_period in [0usize, 2, 7, 64, 129] {
                let prev: Vec<f64> = (0..n)
                    .map(|i| {
                        if escape_period != 0 && i % escape_period == 0 {
                            0.0 // prev == 0 -> escaped
                        } else {
                            1.0 + (i % 19) as f64
                        }
                    })
                    .collect();
                let curr: Vec<f64> = prev
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| {
                        if v == 0.0 {
                            4.25
                        } else {
                            v * (1.0 + 0.01 * ((i % 6) as f64))
                        }
                    })
                    .collect();
                let cfg = Config::new(8, 0.001, Strategy::Clustering).unwrap();
                let (block, _) = encode(&prev, &curr, &cfg).unwrap();
                let par = reconstruct(&prev, &block).unwrap();
                let seq = reconstruct_seq(&prev, &block).unwrap();
                let pb: Vec<u64> = par.iter().map(|v| v.to_bits()).collect();
                let sb: Vec<u64> = seq.iter().map(|v| v.to_bits()).collect();
                assert_eq!(pb, sb, "n={n} escape_period={escape_period}");
            }
        }
    }

    #[test]
    fn empty_block() {
        let cfg = Config::new(8, 0.001, Strategy::Clustering).unwrap();
        let (block, _) = encode(&[], &[], &cfg).unwrap();
        assert!(reconstruct(&[], &block).unwrap().is_empty());
    }

    #[test]
    fn length_mismatch_rejected() {
        let cfg = Config::new(8, 0.001, Strategy::Clustering).unwrap();
        let (block, _) = encode(&[1.0, 2.0], &[1.0, 2.0], &cfg).unwrap();
        assert!(matches!(
            reconstruct(&[1.0], &block),
            Err(NumarckError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn corrupt_bitmap_detected() {
        let cfg = Config::new(8, 0.001, Strategy::Clustering).unwrap();
        let prev = vec![1.0; 100];
        let curr: Vec<f64> = (0..100).map(|i| 1.0 + 0.01 * (i % 3) as f64).collect();
        let (mut block, _) = encode(&prev, &curr, &cfg).unwrap();
        block.bitmap[0] ^= 1; // flip one compressibility bit
        assert!(matches!(reconstruct(&prev, &block), Err(NumarckError::Corrupt(_))));
    }

    #[test]
    fn chain_reconstruction_accumulates_bounded_error() {
        // Apply 5 compressed deltas in sequence starting from the exact
        // base; relative error compounds roughly additively (paper §II-D).
        let n = 2000;
        let steps = 5usize;
        let tol = 0.001;
        let cfg = Config::new(8, tol, Strategy::Clustering).unwrap();
        let mut truth: Vec<Vec<f64>> = vec![(0..n).map(|i| 1.0 + (i % 97) as f64).collect()];
        for s in 1..=steps {
            let prev = truth.last().unwrap();
            let next: Vec<f64> = prev
                .iter()
                .enumerate()
                .map(|(i, v)| v * (1.0 + 0.003 * (((i + s) % 7) as f64 - 3.0) / 3.0))
                .collect();
            truth.push(next);
        }
        let mut reconstructed = truth[0].clone();
        for s in 1..=steps {
            let (block, _) = encode(&truth[s - 1], &truth[s], &cfg).unwrap();
            reconstructed = reconstruct(&reconstructed, &block).unwrap();
        }
        let budget = (1.0 + tol).powi(steps as i32) - 1.0 + 1e-9;
        for (r, t) in reconstructed.iter().zip(&truth[steps]) {
            let rel = ((r - t) / t).abs();
            assert!(rel <= budget, "rel {rel} > budget {budget}");
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            #[test]
            fn roundtrip_error_bounded(
                prev in proptest::collection::vec(0.5f64..50.0, 1..400),
                rates in proptest::collection::vec(-0.3f64..0.3, 1..400),
                bits in 3u8..10
            ) {
                let n = prev.len().min(rates.len());
                let prev = &prev[..n];
                let curr: Vec<f64> = (0..n).map(|i| prev[i] * (1.0 + rates[i])).collect();
                for s in crate::strategy::Strategy::all() {
                    let cfg = Config::new(bits, 0.005, s).unwrap();
                    let (block, _) = encode(prev, &curr, &cfg).unwrap();
                    let rp = reconstruct(prev, &block).unwrap();
                    let rs = reconstruct_seq(prev, &block).unwrap();
                    prop_assert_eq!(&rp, &rs);
                    for (i, (r, c)) in rp.iter().zip(&curr).enumerate() {
                        // The guarantee is on the change ratio:
                        // |Δ' − Δ| ≤ E. In value space that is
                        // |r − c| ≤ E · |prev|, i.e. a relative error of
                        // E · |prev/curr| w.r.t. the current value.
                        let bound = 0.005 * (prev[i] / c).abs() + 1e-12;
                        prop_assert!(
                            ((r - c) / c).abs() <= bound,
                            "rel {} > bound {bound}",
                            ((r - c) / c).abs()
                        );
                    }
                }
            }
        }
    }
}
