/root/repo/target/release/deps/serde-616d8c5daee3126c.d: .stubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-616d8c5daee3126c.so: .stubs/serde/src/lib.rs

.stubs/serde/src/lib.rs:
