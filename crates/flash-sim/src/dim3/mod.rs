//! Three-dimensional solver, matching the paper's actual block geometry.
//!
//! FLASH blocks are "a three-dimensional array with an additional 4
//! elements as guard cells in each dimension on both sides" (§III-A);
//! the 2-D solver in the crate root is the cheap workhorse for the
//! figure sweeps, and this module is the faithful 3-D variant: 16³
//! blocks, six-face guard exchange, and a genuinely evolving `velz`.
//! The same ten checkpoint variables come out; cells are ~16× more
//! expensive per block, so experiment configurations use fewer blocks.

pub mod block3;
pub mod euler3;
pub mod mesh3;
pub mod sim3;

pub use block3::Block3;
pub use mesh3::{Boundary3, Mesh3};
pub use sim3::{FlashSimulation3, Problem3};
