/root/repo/target/debug/deps/table1-05dcabb1dd4de436.d: crates/numarck-bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-05dcabb1dd4de436: crates/numarck-bench/src/bin/table1.rs

crates/numarck-bench/src/bin/table1.rs:
