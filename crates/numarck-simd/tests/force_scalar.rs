//! `NUMARCK_FORCE_SCALAR` pins the dispatcher to the scalar path.
//!
//! Lives in its own test binary: the level is resolved once per process
//! through a `OnceLock`, so the override must be in the environment
//! before the first `active_level()` call — which a unit test inside
//! the crate's main test binary cannot guarantee.

use numarck_simd::Level;

#[test]
fn force_scalar_env_pins_dispatch() {
    // Set before any dispatch query in this process; single test in
    // this binary, so no other thread has resolved the level yet.
    std::env::set_var("NUMARCK_FORCE_SCALAR", "1");
    assert_eq!(numarck_simd::active_level(), Level::Scalar);

    // And the dispatched entry points actually run the scalar kernels:
    // spot-check one kernel per module against its explicit-level twin.
    let prev = vec![1.0f64, 2.0, 0.0, -4.0, 5.0, 6.0, 7.0, 8.0, 9.0];
    let curr = vec![1.1f64, 2.0, 3.0, -4.4, 5.0, 6.6, 7.0, 8.8, 9.0];
    let mut got = vec![0.0f64; prev.len()];
    let mut want = vec![0.0f64; prev.len()];
    let bad_got = numarck_simd::transform::change_ratios(&prev, &curr, &mut got);
    let bad_want = numarck_simd::transform::change_ratios_with(
        Level::Scalar,
        &prev,
        &curr,
        &mut want,
    );
    assert_eq!(bad_got, bad_want);
    let got_bits: Vec<u64> = got.iter().map(|v| v.to_bits()).collect();
    let want_bits: Vec<u64> = want.iter().map(|v| v.to_bits()).collect();
    assert_eq!(got_bits, want_bits);

    let words = [0xDEAD_BEEF_0123_4567u64, u64::MAX, 0, 1];
    assert_eq!(
        numarck_simd::popcount::popcount_sum(&words),
        numarck_simd::popcount::popcount_sum_with(Level::Scalar, &words),
    );
}
