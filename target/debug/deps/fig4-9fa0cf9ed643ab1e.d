/root/repo/target/debug/deps/fig4-9fa0cf9ed643ab1e.d: crates/numarck-bench/src/bin/fig4.rs

/root/repo/target/debug/deps/libfig4-9fa0cf9ed643ab1e.rmeta: crates/numarck-bench/src/bin/fig4.rs

crates/numarck-bench/src/bin/fig4.rs:
