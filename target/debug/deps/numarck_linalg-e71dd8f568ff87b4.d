/root/repo/target/debug/deps/numarck_linalg-e71dd8f568ff87b4.d: crates/numarck-linalg/src/lib.rs crates/numarck-linalg/src/banded.rs crates/numarck-linalg/src/bspline.rs crates/numarck-linalg/src/tridiag.rs

/root/repo/target/debug/deps/libnumarck_linalg-e71dd8f568ff87b4.rmeta: crates/numarck-linalg/src/lib.rs crates/numarck-linalg/src/banded.rs crates/numarck-linalg/src/bspline.rs crates/numarck-linalg/src/tridiag.rs

crates/numarck-linalg/src/lib.rs:
crates/numarck-linalg/src/banded.rs:
crates/numarck-linalg/src/bspline.rs:
crates/numarck-linalg/src/tridiag.rs:
