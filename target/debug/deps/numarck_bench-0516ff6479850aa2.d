/root/repo/target/debug/deps/numarck_bench-0516ff6479850aa2.d: crates/numarck-bench/src/lib.rs crates/numarck-bench/src/data.rs crates/numarck-bench/src/report.rs crates/numarck-bench/src/run.rs

/root/repo/target/debug/deps/libnumarck_bench-0516ff6479850aa2.rmeta: crates/numarck-bench/src/lib.rs crates/numarck-bench/src/data.rs crates/numarck-bench/src/report.rs crates/numarck-bench/src/run.rs

crates/numarck-bench/src/lib.rs:
crates/numarck-bench/src/data.rs:
crates/numarck-bench/src/report.rs:
crates/numarck-bench/src/run.rs:
