/root/repo/target/debug/deps/fig4-fd4b8aa52915145d.d: crates/numarck-bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-fd4b8aa52915145d: crates/numarck-bench/src/bin/fig4.rs

crates/numarck-bench/src/bin/fig4.rs:
