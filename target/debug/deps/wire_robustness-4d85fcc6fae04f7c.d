/root/repo/target/debug/deps/wire_robustness-4d85fcc6fae04f7c.d: crates/numarck-serve/tests/wire_robustness.rs

/root/repo/target/debug/deps/wire_robustness-4d85fcc6fae04f7c: crates/numarck-serve/tests/wire_robustness.rs

crates/numarck-serve/tests/wire_robustness.rs:
