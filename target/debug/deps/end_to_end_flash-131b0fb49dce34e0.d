/root/repo/target/debug/deps/end_to_end_flash-131b0fb49dce34e0.d: tests/end_to_end_flash.rs

/root/repo/target/debug/deps/libend_to_end_flash-131b0fb49dce34e0.rmeta: tests/end_to_end_flash.rs

tests/end_to_end_flash.rs:
