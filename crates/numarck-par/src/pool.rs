//! Rayon pool construction helpers.
//!
//! Benchmarks sweep the thread count (the `kmeans_scaling` bench reproduces
//! the "parallel K-means" claim), so they need pools of explicit sizes
//! rather than the global one. Library code should keep using the ambient
//! pool; only harnesses build their own.

use rayon::{ThreadPool, ThreadPoolBuilder};

/// Build a Rayon pool with exactly `threads` workers (>= 1).
///
/// # Panics
/// Panics if the pool cannot be built (thread spawn failure).
pub fn build_pool(threads: usize) -> ThreadPool {
    ThreadPoolBuilder::new()
        .num_threads(threads.max(1))
        .thread_name(|i| format!("numarck-worker-{i}"))
        .build()
        .expect("failed to build rayon pool")
}

/// Number of workers the ambient pool would use.
pub fn available_threads() -> usize {
    rayon::current_num_threads()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_has_requested_threads() {
        let pool = build_pool(3);
        assert_eq!(pool.current_num_threads(), 3);
    }

    #[test]
    fn zero_is_clamped_to_one() {
        let pool = build_pool(0);
        assert_eq!(pool.current_num_threads(), 1);
    }

    #[test]
    fn work_runs_inside_pool() {
        let pool = build_pool(2);
        let total: u64 = pool.install(|| {
            use rayon::prelude::*;
            (0..1000u64).into_par_iter().sum()
        });
        assert_eq!(total, 499_500);
    }
}
