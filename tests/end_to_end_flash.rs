//! End-to-end FLASH pipeline: simulate → checkpoint through the manager →
//! injure the store → diagnose → restart → resume the simulation.

use flash_sim::{FlashSimulation, FlashVar, Problem};
use numarck::{Config, Strategy};
use numarck_checkpoint::fault::{inject, verify_store, Fault};
use numarck_checkpoint::manager::CheckpointOutcome;
use numarck_checkpoint::{
    CheckpointManager, CheckpointStore, ManagerPolicy, RestartEngine, VariableSet,
};

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "numarck-it-{tag}-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .expect("after epoch")
                .as_nanos()
        ));
        std::fs::create_dir_all(&path).expect("mkdir");
        Self(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn vars_of(sim: &FlashSimulation) -> VariableSet {
    sim.checkpoint().into_iter().map(|(v, d)| (v.name().to_string(), d)).collect()
}

#[test]
fn simulate_checkpoint_restart_resume() {
    let tmp = TempDir::new("e2e-flash");
    let store = CheckpointStore::open(&tmp.0).expect("open store");
    let config = Config::new(8, 0.001, Strategy::Clustering).expect("valid");
    let mut manager =
        CheckpointManager::new(store.clone(), config, ManagerPolicy::fixed(5));

    // Reference run with checkpoints every 2 steps.
    let mut sim = FlashSimulation::paper_default(Problem::SedovBlast, 2, 2);
    sim.run_steps(30);
    let mut truth: Vec<VariableSet> = Vec::new();
    let mut delta_count = 0;
    for it in 0..10u64 {
        if it > 0 {
            sim.run_steps(2);
        }
        let vars = vars_of(&sim);
        if matches!(
            manager.checkpoint(it, &vars).expect("write"),
            CheckpointOutcome::Delta(_)
        ) {
            delta_count += 1;
        }
        truth.push(vars);
    }
    assert!(delta_count >= 6, "most checkpoints should be deltas, got {delta_count}");

    // Every iteration is restartable and within the accumulated bound.
    let engine = RestartEngine::new(store.clone());
    for it in 0..10u64 {
        let r = engine.restart_at(it).expect("restartable");
        let budget = (1.0f64 + 0.001).powi(r.deltas_applied as i32) - 1.0 + 1e-9;
        for (name, exact) in &truth[it as usize] {
            for (a, b) in exact.iter().zip(&r.vars[name]) {
                if *a != 0.0 {
                    let rel = ((a - b) / a).abs();
                    // Change-ratio bound transfers to value space scaled
                    // by prev/curr ≈ 1 + O(Δ); with FLASH per-step
                    // changes up to ~15%, allow that factor.
                    assert!(
                        rel <= budget * 1.3,
                        "{name} at iteration {it}: rel {rel} > {budget}"
                    );
                }
            }
        }
    }

    // Resume the simulation from a reconstructed checkpoint: the solver
    // must accept the state and keep producing physical fields.
    let r = engine.restart_at(7).expect("restartable");
    let mut resumed = FlashSimulation::paper_default(Problem::SedovBlast, 2, 2);
    let typed: std::collections::BTreeMap<FlashVar, Vec<f64>> = r
        .vars
        .iter()
        .map(|(k, v)| (FlashVar::from_name(k).expect("known"), v.clone()))
        .collect();
    resumed.restore(&typed).expect("restore");
    resumed.run_steps(10);
    for (v, data) in resumed.checkpoint() {
        assert!(data.iter().all(|x| x.is_finite()), "{v} went non-finite after resume");
    }
}

#[test]
fn corruption_is_contained_between_fulls() {
    let tmp = TempDir::new("e2e-fault");
    let store = CheckpointStore::open(&tmp.0).expect("open store");
    let config = Config::new(8, 0.001, Strategy::LogScale).expect("valid");
    let mut manager =
        CheckpointManager::new(store.clone(), config, ManagerPolicy::fixed(4));

    let mut sim = FlashSimulation::paper_default(Problem::SodX, 2, 2);
    sim.run_steps(20);
    for it in 0..12u64 {
        if it > 0 {
            sim.run_steps(1);
        }
        manager.checkpoint(it, &vars_of(&sim)).expect("write");
    }

    inject(&store.path_of(5, false), Fault::BitFlip { offset: 200, mask: 0x01 })
        .expect("inject");
    let health = verify_store(&store).expect("verify");
    let broken: Vec<u64> =
        health.iter().filter(|h| !h.restartable).map(|h| h.iteration).collect();
    assert_eq!(broken, vec![5, 6, 7], "damage must be contained until the next full");
}
