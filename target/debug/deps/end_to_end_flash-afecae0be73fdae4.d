/root/repo/target/debug/deps/end_to_end_flash-afecae0be73fdae4.d: tests/end_to_end_flash.rs

/root/repo/target/debug/deps/end_to_end_flash-afecae0be73fdae4: tests/end_to_end_flash.rs

tests/end_to_end_flash.rs:
