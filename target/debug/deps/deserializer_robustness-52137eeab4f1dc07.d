/root/repo/target/debug/deps/deserializer_robustness-52137eeab4f1dc07.d: tests/deserializer_robustness.rs

/root/repo/target/debug/deps/libdeserializer_robustness-52137eeab4f1dc07.rmeta: tests/deserializer_robustness.rs

tests/deserializer_robustness.rs:
