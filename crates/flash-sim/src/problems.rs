//! Initial conditions: the standard FLASH test problems the checkpoint
//! streams are generated from.

use crate::euler::Primitive;
use crate::mesh::Boundary;

/// Which test problem to initialise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Problem {
    /// Sod shock tube along x: left (ρ=1, p=1), right (ρ=0.125, p=0.1).
    /// Produces a right-moving shock, contact, and left rarefaction.
    SodX,
    /// Sedov-like point blast: ambient gas with a high-pressure deposit
    /// at the domain centre; an expanding spherical (cylindrical in 2-D)
    /// shock — the classic FLASH validation problem.
    SedovBlast,
    /// Kelvin–Helmholtz shear layer with a seeded perturbation: produces
    /// long-lived, continuously evolving structure, useful for many-
    /// checkpoint sequences.
    KelvinHelmholtz,
}

impl Problem {
    /// Primitive state at physical position `(x, y)` in the unit square.
    pub fn initial_state(&self, x: f64, y: f64) -> Primitive {
        // Every problem carries a smooth non-zero passive w (the "velz"
        // checkpoint variable) so all ten variables have live dynamics.
        let w = 0.05 + 0.01 * (std::f64::consts::TAU * x).sin() * (std::f64::consts::TAU * y).cos();
        match self {
            Problem::SodX => {
                if x < 0.5 {
                    Primitive { rho: 1.0, u: 0.0, v: 0.0, w, p: 1.0 }
                } else {
                    Primitive { rho: 0.125, u: 0.0, v: 0.0, w, p: 0.1 }
                }
            }
            Problem::SedovBlast => {
                let r2 = (x - 0.5) * (x - 0.5) + (y - 0.5) * (y - 0.5);
                let p = if r2 < 0.01 { 10.0 } else { 0.01 };
                Primitive { rho: 1.0, u: 0.0, v: 0.0, w, p }
            }
            Problem::KelvinHelmholtz => {
                let in_band = (y - 0.5).abs() < 0.25;
                let rho = if in_band { 2.0 } else { 1.0 };
                let u = if in_band { 0.5 } else { -0.5 };
                let v = 0.01 * (std::f64::consts::TAU * 4.0 * x).sin();
                Primitive { rho, u, v, w, p: 2.5 }
            }
        }
    }

    /// The boundary condition each problem is conventionally run with.
    pub fn boundary(&self) -> Boundary {
        match self {
            Problem::SodX => Boundary::Outflow,
            Problem::SedovBlast => Boundary::Outflow,
            Problem::KelvinHelmholtz => Boundary::Periodic,
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Problem::SodX => "sod",
            Problem::SedovBlast => "sedov",
            Problem::KelvinHelmholtz => "kelvin-helmholtz",
        }
    }
}

impl std::fmt::Display for Problem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sod_has_the_canonical_jump() {
        let p = Problem::SodX;
        let l = p.initial_state(0.25, 0.5);
        let r = p.initial_state(0.75, 0.5);
        assert_eq!(l.rho, 1.0);
        assert_eq!(l.p, 1.0);
        assert_eq!(r.rho, 0.125);
        assert_eq!(r.p, 0.1);
    }

    #[test]
    fn sedov_deposit_is_central_and_hot() {
        let p = Problem::SedovBlast;
        assert!(p.initial_state(0.5, 0.5).p > 1.0);
        assert!(p.initial_state(0.1, 0.1).p < 0.1);
    }

    #[test]
    fn kh_shear_flips_across_the_band() {
        let p = Problem::KelvinHelmholtz;
        assert!(p.initial_state(0.3, 0.5).u > 0.0);
        assert!(p.initial_state(0.3, 0.9).u < 0.0);
    }

    #[test]
    fn velz_is_nonzero_everywhere() {
        // prev == 0 would force NUMARCK to escape the point, so the
        // passive velz field must never be exactly zero.
        for prob in [Problem::SodX, Problem::SedovBlast, Problem::KelvinHelmholtz] {
            for i in 0..50 {
                for j in 0..50 {
                    let s = prob.initial_state(i as f64 / 49.0, j as f64 / 49.0);
                    assert!(s.w.abs() > 0.01, "{prob} at ({i},{j}): w={}", s.w);
                }
            }
        }
    }

    #[test]
    fn all_initial_states_are_physical() {
        for prob in [Problem::SodX, Problem::SedovBlast, Problem::KelvinHelmholtz] {
            for i in 0..20 {
                for j in 0..20 {
                    let s = prob.initial_state(i as f64 / 19.0, j as f64 / 19.0);
                    assert!(s.rho > 0.0 && s.p > 0.0, "{prob}");
                    assert!(s.u.is_finite() && s.v.is_finite() && s.w.is_finite());
                }
            }
        }
    }
}
