//! Change-distribution summaries and drift metrics.
//!
//! The paper's future-work section (§V) sketches two uses for the
//! *evolution* of the learned change distribution: "determining dynamic
//! checkpointing frequency based on how evolving distributions change"
//! and "understanding anomalies at scale". Both need a compact,
//! comparable summary of one iteration's change ratios and a distance
//! between summaries — that is this module. The adaptive checkpoint
//! policy (`numarck-checkpoint`) and the soft-error detector
//! ([`crate::anomaly`]) build on it.

use crate::ratio::{ChangeRatios, RatioClass};

/// Number of interior histogram bins of a [`ChangeDistribution`].
pub const BINS: usize = 128;

/// A fixed-shape summary of one iteration's change ratios: a normalised
/// histogram over `[-cap, +cap]` with explicit underflow/overflow mass,
/// plus the small/undefined fractions. Fixed shape means any two
/// summaries (built with the same `cap`) are directly comparable.
#[derive(Debug, Clone, PartialEq)]
pub struct ChangeDistribution {
    /// Half-width of the histogram support.
    pub cap: f64,
    /// Normalised interior bin masses (sum + tails + small = 1 when any
    /// points exist).
    pub bins: [f64; BINS],
    /// Mass below `-cap` / above `+cap`.
    pub tail_low: f64,
    /// Mass above `+cap`.
    pub tail_high: f64,
    /// Fraction of points with `|Δ| < E` (the index-0 class).
    pub small_fraction: f64,
    /// Fraction of points with undefined ratios (zero previous value).
    pub undefined_fraction: f64,
    /// Number of points summarised.
    pub count: usize,
}

impl ChangeDistribution {
    /// Summarise a computed [`ChangeRatios`] with support `[-cap, cap]`.
    ///
    /// # Panics
    /// Panics unless `cap` is finite and positive.
    pub fn from_ratios(ratios: &ChangeRatios, cap: f64) -> Self {
        assert!(cap.is_finite() && cap > 0.0, "cap must be positive");
        let mut bins = [0.0f64; BINS];
        let mut tail_low = 0usize;
        let mut tail_high = 0usize;
        let mut small = 0usize;
        let mut undefined = 0usize;
        let mut large = 0usize;
        for class in ratios.iter_classes() {
            match class {
                RatioClass::Small(_) => small += 1,
                RatioClass::Undefined => undefined += 1,
                RatioClass::Large(r) => {
                    large += 1;
                    if r < -cap {
                        tail_low += 1;
                    } else if r > cap {
                        tail_high += 1;
                    } else {
                        let t = (r + cap) / (2.0 * cap);
                        let idx = ((t * BINS as f64) as usize).min(BINS - 1);
                        bins[idx] += 1.0;
                    }
                }
            }
        }
        let n = (small + undefined + large).max(1) as f64;
        for b in bins.iter_mut() {
            *b /= n;
        }
        Self {
            cap,
            bins,
            tail_low: tail_low as f64 / n,
            tail_high: tail_high as f64 / n,
            small_fraction: small as f64 / n,
            undefined_fraction: undefined as f64 / n,
            count: ratios.len(),
        }
    }

    /// Convenience: compute ratios then summarise.
    pub fn from_iterations(
        prev: &[f64],
        curr: &[f64],
        tolerance: f64,
        cap: f64,
    ) -> Result<Self, crate::error::NumarckError> {
        Ok(Self::from_ratios(&crate::ratio::compute(prev, curr, tolerance)?, cap))
    }

    /// Total probability mass (1 for non-empty input, 0 for empty).
    pub fn total_mass(&self) -> f64 {
        self.bins.iter().sum::<f64>()
            + self.tail_low
            + self.tail_high
            + self.small_fraction
            + self.undefined_fraction
    }

    /// The full mass vector including the two tails and the small/
    /// undefined classes (used by the distances so that mass moving into
    /// the tails or into the small class is seen as drift).
    fn mass_vector(&self) -> Vec<f64> {
        let mut v = Vec::with_capacity(BINS + 4);
        v.push(self.tail_low);
        v.extend_from_slice(&self.bins);
        v.push(self.tail_high);
        v.push(self.small_fraction);
        v.push(self.undefined_fraction);
        v
    }

    /// L1 distance (= 2 × total-variation) between two summaries.
    ///
    /// # Panics
    /// Panics if the summaries were built with different caps.
    pub fn l1_distance(&self, other: &Self) -> f64 {
        assert_eq!(self.cap, other.cap, "summaries must share a cap");
        self.mass_vector()
            .iter()
            .zip(other.mass_vector())
            .map(|(a, b)| (a - b).abs())
            .sum()
    }

    /// Symmetrised, smoothed Kullback–Leibler divergence.
    pub fn symmetric_kl(&self, other: &Self) -> f64 {
        assert_eq!(self.cap, other.cap, "summaries must share a cap");
        let eps = 1e-9;
        let p = self.mass_vector();
        let q = other.mass_vector();
        let mut kl_pq = 0.0;
        let mut kl_qp = 0.0;
        for (a, b) in p.iter().zip(&q) {
            let a = a + eps;
            let b = b + eps;
            kl_pq += a * (a / b).ln();
            kl_qp += b * (b / a).ln();
        }
        (kl_pq + kl_qp).max(0.0)
    }

    /// 1-D earth-mover's distance over the interior bins (CDF
    /// difference, in ratio units). Tail/small/undefined mass is
    /// compared separately by the other metrics; EMD measures how far
    /// the in-range shape moved.
    pub fn emd(&self, other: &Self) -> f64 {
        assert_eq!(self.cap, other.cap, "summaries must share a cap");
        let width = 2.0 * self.cap / BINS as f64;
        let mut cdf_diff = 0.0;
        let mut acc = 0.0;
        for (a, b) in self.bins.iter().zip(&other.bins) {
            acc += a - b;
            cdf_diff += acc.abs() * width;
        }
        cdf_diff
    }
}

/// Rolling drift tracker: feed it one iteration's summary at a time and
/// it reports how far the distribution moved since the previous one.
#[derive(Debug, Clone, Default)]
pub struct DriftTracker {
    previous: Option<ChangeDistribution>,
}

/// Drift between two consecutive summaries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftReport {
    /// L1 distance (0..=2).
    pub l1: f64,
    /// Symmetric KL divergence (≥ 0).
    pub kl: f64,
    /// Earth-mover's distance in ratio units.
    pub emd: f64,
}

impl DriftTracker {
    /// Fresh tracker with no history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observe the next summary. Returns `None` on the first call (no
    /// baseline yet).
    pub fn observe(&mut self, dist: ChangeDistribution) -> Option<DriftReport> {
        let report = self.previous.as_ref().map(|prev| DriftReport {
            l1: prev.l1_distance(&dist),
            kl: prev.symmetric_kl(&dist),
            emd: prev.emd(&dist),
        });
        self.previous = Some(dist);
        report
    }

    /// The most recent summary, if any.
    pub fn last(&self) -> Option<&ChangeDistribution> {
        self.previous.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ratio;

    fn dist_of(rates: &[f64]) -> ChangeDistribution {
        let prev = vec![1.0; rates.len()];
        let curr: Vec<f64> = rates.iter().map(|r| 1.0 + r).collect();
        let r = ratio::compute(&prev, &curr, 1e-4).expect("finite");
        ChangeDistribution::from_ratios(&r, 0.5)
    }

    #[test]
    fn mass_sums_to_one() {
        let d = dist_of(&[0.0, 0.001, 0.1, -0.3, 0.9, -0.9]);
        assert!((d.total_mass() - 1.0).abs() < 1e-12);
        assert_eq!(d.count, 6);
    }

    #[test]
    fn classes_are_routed_correctly() {
        // 0.0 -> small; 0.9 -> high tail; -0.9 -> low tail; rest interior.
        let d = dist_of(&[0.0, 0.9, -0.9, 0.1]);
        assert!((d.small_fraction - 0.25).abs() < 1e-12);
        assert!((d.tail_high - 0.25).abs() < 1e-12);
        assert!((d.tail_low - 0.25).abs() < 1e-12);
        assert!((d.bins.iter().sum::<f64>() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn undefined_mass_counted() {
        let prev = vec![0.0, 1.0];
        let curr = vec![1.0, 1.2];
        let r = ratio::compute(&prev, &curr, 1e-4).expect("finite");
        let d = ChangeDistribution::from_ratios(&r, 0.5);
        assert!((d.undefined_fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    fn identical_distributions_have_zero_distance() {
        let a = dist_of(&[0.1, -0.2, 0.05, 0.3]);
        let b = dist_of(&[0.1, -0.2, 0.05, 0.3]);
        assert_eq!(a.l1_distance(&b), 0.0);
        assert!(a.symmetric_kl(&b).abs() < 1e-9);
        assert_eq!(a.emd(&b), 0.0);
    }

    #[test]
    fn distances_grow_with_shift() {
        let base = dist_of(&vec![0.01; 1000]);
        let near = dist_of(&vec![0.02; 1000]);
        let far = dist_of(&vec![0.30; 1000]);
        assert!(base.emd(&near) < base.emd(&far), "EMD must grow with shift distance");
        // L1 saturates for disjoint supports; both are maximal here.
        assert!(base.l1_distance(&far) > 1.9);
    }

    #[test]
    fn emd_is_shift_times_mass() {
        // All mass shifting by one bin width moves EMD by ~width.
        let width = 2.0 * 0.5 / BINS as f64;
        let a = dist_of(&vec![0.1; 10_000]);
        let b = dist_of(&vec![0.1 + width; 10_000]);
        assert!((a.emd(&b) - width).abs() < width * 0.5, "{} vs {width}", a.emd(&b));
    }

    #[test]
    fn distances_are_symmetric() {
        let a = dist_of(&[0.1, 0.2, -0.1, 0.0]);
        let b = dist_of(&[0.3, -0.25, 0.0, 0.0, 0.15]);
        assert!((a.l1_distance(&b) - b.l1_distance(&a)).abs() < 1e-12);
        assert!((a.symmetric_kl(&b) - b.symmetric_kl(&a)).abs() < 1e-9);
        assert!((a.emd(&b) - b.emd(&a)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "share a cap")]
    fn cap_mismatch_panics() {
        let prev = vec![1.0];
        let curr = vec![1.1];
        let r = ratio::compute(&prev, &curr, 1e-4).expect("finite");
        let a = ChangeDistribution::from_ratios(&r, 0.5);
        let b = ChangeDistribution::from_ratios(&r, 1.0);
        let _ = a.l1_distance(&b);
    }

    #[test]
    fn tracker_reports_from_second_observation() {
        let mut t = DriftTracker::new();
        assert!(t.observe(dist_of(&[0.1, 0.1])).is_none());
        let r = t.observe(dist_of(&[0.1, 0.1])).expect("second observation");
        assert!(r.l1 < 1e-12);
        let r = t.observe(dist_of(&[0.4, 0.4])).expect("third observation");
        assert!(r.l1 > 1.0, "large shift must register: {r:?}");
        assert!(t.last().is_some());
    }

    #[test]
    fn empty_input_is_benign() {
        let r = ratio::compute(&[], &[], 1e-4).expect("empty ok");
        let d = ChangeDistribution::from_ratios(&r, 0.5);
        assert_eq!(d.total_mass(), 0.0);
        assert_eq!(d.count, 0);
    }

    #[test]
    fn emd_ignores_mass_in_the_special_classes() {
        // Tail/small/undefined mass moves register through L1, not EMD.
        let a = dist_of(&[0.0, 0.0, 0.1, 0.1]);
        let b = dist_of(&[0.9, 0.9, 0.1, 0.1]); // small mass -> high tail
        assert!(a.emd(&b) < 1e-9, "interior shape unchanged");
        assert!(a.l1_distance(&b) > 0.9, "L1 sees the class shift");
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn mass_conservation(
                rates in proptest::collection::vec(-2.0f64..2.0, 1..500)
            ) {
                let d = dist_of(&rates);
                prop_assert!((d.total_mass() - 1.0).abs() < 1e-9);
            }

            #[test]
            fn l1_triangle_inequality(
                a in proptest::collection::vec(-1.0f64..1.0, 1..100),
                b in proptest::collection::vec(-1.0f64..1.0, 1..100),
                c in proptest::collection::vec(-1.0f64..1.0, 1..100),
            ) {
                let (da, db, dc) = (dist_of(&a), dist_of(&b), dist_of(&c));
                prop_assert!(
                    da.l1_distance(&dc) <= da.l1_distance(&db) + db.l1_distance(&dc) + 1e-9
                );
            }
        }
    }
}
