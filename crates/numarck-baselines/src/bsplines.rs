//! Plain cubic-B-spline data reduction (Chou & Piegl, reference \[7\]).
//!
//! The whole data vector of one iteration is least-squares fitted by a
//! cubic B-spline with `P_S` control points; only the control points are
//! stored (64 bits each), so the compression ratio is exactly
//! `1 − P_S/n`. The paper sets `P_S = 0.8·n` "to provide accurate lossy
//! compression", which pins the ratio at 20% — the weakest baseline in
//! Table I.

use numarck_linalg::bspline::{CubicBSpline, FitError, MIN_CONTROL_POINTS};

use crate::LossyCompressor;

/// Cubic-B-spline compressor with control-point budget `P_S = fraction·n`.
#[derive(Debug, Clone, Copy)]
pub struct BSplineCompressor {
    fraction: f64,
}

/// Compressed form: the spline control points plus the original length.
#[derive(Debug, Clone, PartialEq)]
pub struct BSplineCompressed {
    /// Fitted spline (owns the control points).
    pub spline: CubicBSpline,
    /// Original data length.
    pub num_points: usize,
}

impl BSplineCompressor {
    /// Budget as a fraction of the data length, clamped to at least
    /// [`MIN_CONTROL_POINTS`] at compression time.
    ///
    /// # Panics
    /// Panics unless `0 < fraction <= 1`.
    pub fn new(fraction: f64) -> Self {
        assert!(fraction > 0.0 && fraction <= 1.0, "fraction must be in (0, 1]");
        Self { fraction }
    }

    /// The paper's setting: `P_S = 0.8·n`.
    pub fn paper_default() -> Self {
        Self::new(0.8)
    }

    /// Number of control points used for a vector of length `n`.
    pub fn control_points_for(&self, n: usize) -> usize {
        ((self.fraction * n as f64).round() as usize).clamp(MIN_CONTROL_POINTS, n.max(MIN_CONTROL_POINTS))
    }

    /// Fit the spline.
    pub fn compress(&self, data: &[f64]) -> Result<BSplineCompressed, FitError> {
        let m = self.control_points_for(data.len());
        Ok(BSplineCompressed { spline: CubicBSpline::fit(data, m)?, num_points: data.len() })
    }
}

impl BSplineCompressed {
    /// Sample the spline back at the original positions.
    pub fn decompress(&self) -> Vec<f64> {
        self.spline.sample(self.num_points)
    }

    /// Stored size in bits: 64 per control point.
    pub fn stored_bits(&self) -> u64 {
        self.spline.num_coeffs() as u64 * 64
    }
}

impl LossyCompressor for BSplineCompressor {
    fn name(&self) -> &'static str {
        "B-Splines"
    }

    fn roundtrip(&self, data: &[f64]) -> (Vec<f64>, u64) {
        if data.is_empty() {
            return (Vec::new(), 0);
        }
        let c = self.compress(data).expect("finite data with m >= 4 always fits");
        (c.decompress(), c.stored_bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ratio_is_twenty_percent() {
        let data: Vec<f64> = (0..10_000).map(|i| (i as f64 * 0.001).cos()).collect();
        let c = BSplineCompressor::paper_default();
        let r = c.compression_ratio(&data);
        assert!((r - 0.2).abs() < 1e-6, "ratio {r}");
    }

    #[test]
    fn smooth_data_reconstructs_accurately_at_point_eight() {
        let n = 2000;
        let data: Vec<f64> = (0..n).map(|i| 10.0 + (i as f64 * 0.01).sin()).collect();
        let c = BSplineCompressor::paper_default().compress(&data).unwrap();
        let restored = c.decompress();
        for (a, b) in restored.iter().zip(&data) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn rough_data_loses_detail_at_low_budget() {
        // High-frequency noise cannot be captured by 10% of the points;
        // this is why B-splines' ξ is an order of magnitude worse in
        // Table II.
        let n = 1000;
        let data: Vec<f64> =
            (0..n).map(|i| ((i as f64 * 2654435761.0).sin() * 43758.5453).fract()).collect();
        let low = BSplineCompressor::new(0.1).compress(&data).unwrap();
        let rmse: f64 = (low
            .decompress()
            .iter()
            .zip(&data)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            / n as f64)
            .sqrt();
        assert!(rmse > 0.1, "noise should not fit: rmse={rmse}");
    }

    #[test]
    fn tiny_inputs_clamp_to_min_control_points() {
        let c = BSplineCompressor::new(0.5);
        assert_eq!(c.control_points_for(3), MIN_CONTROL_POINTS);
        let data = vec![1.0, 2.0, 3.0];
        let (restored, bits) = c.roundtrip(&data);
        assert_eq!(restored.len(), 3);
        assert_eq!(bits, MIN_CONTROL_POINTS as u64 * 64);
    }

    #[test]
    fn empty_input() {
        let c = BSplineCompressor::paper_default();
        let (restored, bits) = c.roundtrip(&[]);
        assert!(restored.is_empty());
        assert_eq!(bits, 0);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn zero_fraction_rejected() {
        BSplineCompressor::new(0.0);
    }
}
