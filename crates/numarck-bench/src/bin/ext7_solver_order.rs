//! Extension experiment 7: does the solver's spatial order change the
//! compression story?
//!
//! The figure sweeps run the robust first-order solver. A fair worry is
//! that its extra numerical diffusion makes the change ratios
//! artificially easy to compress. This binary repeats the strategy sweep
//! with the MUSCL (second-order, minmod-limited) scheme, which keeps
//! fronts markedly sharper, and also reports the per-variable automatic
//! precision choice ([`numarck::autotune`]) under both schemes.

use flash_sim::euler::Scheme;
use flash_sim::{FlashSimulation, FlashVar, Problem};
use numarck::autotune::{choose_bits, AutotuneOptions};
use numarck::Strategy;
use numarck_bench::report::{pct, print_table, write_csv};
use numarck_bench::run::{mean_of, strategy_sweep};
use numarck_bench::RESULTS_DIR;

fn sequence(scheme: Scheme, var: FlashVar, checkpoints: usize) -> Vec<Vec<f64>> {
    let mut sim =
        FlashSimulation::paper_default(Problem::SedovBlast, 4, 4).with_scheme(scheme);
    sim.run_steps(20);
    let mut out = Vec::with_capacity(checkpoints);
    for c in 0..checkpoints {
        if c > 0 {
            sim.run_steps(2);
        }
        out.push(sim.checkpoint().remove(&var).expect("var exists"));
    }
    out
}

fn main() {
    let checkpoints = 20usize;
    let mut table = vec![vec![
        "scheme".to_string(),
        "variable".to_string(),
        "clustering γ %".to_string(),
        "mean error %".to_string(),
        "auto-chosen B".to_string(),
    ]];
    let mut csv = vec![vec![
        "scheme".to_string(),
        "variable".to_string(),
        "gamma".to_string(),
        "mean_error".to_string(),
        "bits".to_string(),
    ]];
    for (name, scheme) in [("first-order", Scheme::FirstOrder), ("muscl", Scheme::Muscl)] {
        for var in [FlashVar::Dens, FlashVar::Pres, FlashVar::Ener] {
            let seq = sequence(scheme, var, checkpoints);
            let sweep = strategy_sweep(&seq, 8, 0.001);
            let (_, stats) = sweep
                .iter()
                .find(|(s, _)| *s == Strategy::Clustering)
                .expect("clustering in sweep");
            let tuned = choose_bits(
                &seq[checkpoints / 2],
                &seq[checkpoints / 2 + 1],
                0.001,
                Strategy::Clustering,
                &AutotuneOptions::default(),
            )
            .expect("finite sim data");
            let gamma = mean_of(stats, |s| s.incompressible_ratio);
            let err = mean_of(stats, |s| s.mean_error_rate);
            table.push(vec![
                name.to_string(),
                var.name().to_string(),
                pct(gamma, 2),
                pct(err, 4),
                tuned.bits.to_string(),
            ]);
            csv.push(vec![
                name.to_string(),
                var.name().to_string(),
                gamma.to_string(),
                err.to_string(),
                tuned.bits.to_string(),
            ]);
        }
    }
    println!("Extension 7: solver order ablation (Sedov, E = 0.1%, B = 8, clustering)");
    print_table(&table);
    println!("\n(expected: sharper MUSCL fronts shift slightly more mass into the ratio");
    println!(" tails — γ and the auto-chosen B move a little, but the compression story");
    println!(" is unchanged: FLASH data stays easy and errors stay bounded)");
    match write_csv(RESULTS_DIR, "ext7_solver_order", &csv) {
        Ok(p) => println!("wrote {p}"),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
