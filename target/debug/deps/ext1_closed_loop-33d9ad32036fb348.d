/root/repo/target/debug/deps/ext1_closed_loop-33d9ad32036fb348.d: crates/numarck-bench/src/bin/ext1_closed_loop.rs

/root/repo/target/debug/deps/ext1_closed_loop-33d9ad32036fb348: crates/numarck-bench/src/bin/ext1_closed_loop.rs

crates/numarck-bench/src/bin/ext1_closed_loop.rs:
