//! Thomas algorithm for tridiagonal systems.
//!
//! Used by the simulators' implicit smoothing steps and kept as the
//! specialised fast path for bandwidth-1 systems.

/// Solve the tridiagonal system with sub-diagonal `a` (length n−1),
/// diagonal `b` (length n), super-diagonal `c` (length n−1) and
/// right-hand side `d` (length n). Returns `None` when a pivot vanishes
/// (the algorithm does not pivot; callers must supply diagonally dominant
/// or SPD systems).
pub fn solve_tridiagonal(a: &[f64], b: &[f64], c: &[f64], d: &[f64]) -> Option<Vec<f64>> {
    let n = b.len();
    assert_eq!(d.len(), n, "rhs length");
    if n == 0 {
        return Some(Vec::new());
    }
    assert_eq!(a.len(), n - 1, "sub-diagonal length");
    assert_eq!(c.len(), n - 1, "super-diagonal length");

    let mut cp = vec![0.0; n.saturating_sub(1)];
    let mut dp = vec![0.0; n];
    if b[0] == 0.0 {
        return None;
    }
    if n > 1 {
        cp[0] = c[0] / b[0];
    }
    dp[0] = d[0] / b[0];
    for i in 1..n {
        let m = b[i] - a[i - 1] * cp.get(i - 1).copied().unwrap_or(0.0);
        if m == 0.0 || !m.is_finite() {
            return None;
        }
        if i < n - 1 {
            cp[i] = c[i] / m;
        }
        dp[i] = (d[i] - a[i - 1] * dp[i - 1]) / m;
    }
    let mut x = dp;
    for i in (0..n - 1).rev() {
        let next = x[i + 1];
        x[i] -= cp[i] * next;
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_known_system() {
        // [2 1 0; 1 2 1; 0 1 2] x = [4, 8, 8] -> x = [1, 2, 3]
        let x = solve_tridiagonal(&[1.0, 1.0], &[2.0, 2.0, 2.0], &[1.0, 1.0], &[4.0, 8.0, 8.0])
            .unwrap();
        for (got, want) in x.iter().zip(&[1.0, 2.0, 3.0]) {
            assert!((got - want).abs() < 1e-12);
        }
    }

    #[test]
    fn single_element() {
        let x = solve_tridiagonal(&[], &[4.0], &[], &[8.0]).unwrap();
        assert_eq!(x, vec![2.0]);
    }

    #[test]
    fn empty_system() {
        assert_eq!(solve_tridiagonal(&[], &[], &[], &[]).unwrap(), Vec::<f64>::new());
    }

    #[test]
    fn zero_pivot_rejected() {
        assert!(solve_tridiagonal(&[1.0], &[0.0, 1.0], &[1.0], &[1.0, 1.0]).is_none());
    }

    #[test]
    fn matches_banded_cholesky_on_spd_system() {
        use crate::banded::SymBanded;
        let n = 20;
        let mut m = SymBanded::zeros(n, 1);
        let mut sub = Vec::new();
        let mut diag = Vec::new();
        for i in 0..n {
            let dv = 4.0 + (i % 3) as f64;
            m.set(i, i, dv);
            diag.push(dv);
            if i + 1 < n {
                let ov = 1.0 + 0.1 * (i % 4) as f64;
                m.set(i + 1, i, ov);
                sub.push(ov);
            }
        }
        let rhs: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        let thomas = solve_tridiagonal(&sub, &diag, &sub, &rhs).unwrap();
        let chol = m.cholesky().unwrap().solve(&rhs);
        for (t, c) in thomas.iter().zip(&chol) {
            assert!((t - c).abs() < 1e-10);
        }
    }

    #[test]
    fn residual_check_large_system() {
        let n = 500;
        let sub = vec![-1.0; n - 1];
        let diag = vec![2.5; n];
        let rhs: Vec<f64> = (0..n).map(|i| ((i * 7) % 13) as f64).collect();
        let x = solve_tridiagonal(&sub, &diag, &sub, &rhs).unwrap();
        for i in 0..n {
            let mut ax = diag[i] * x[i];
            if i > 0 {
                ax += sub[i - 1] * x[i - 1];
            }
            if i + 1 < n {
                ax += sub[i] * x[i + 1];
            }
            assert!((ax - rhs[i]).abs() < 1e-9, "row {i}");
        }
    }
}
