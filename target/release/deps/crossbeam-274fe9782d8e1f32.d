/root/repo/target/release/deps/crossbeam-274fe9782d8e1f32.d: .stubs/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-274fe9782d8e1f32.rlib: .stubs/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-274fe9782d8e1f32.rmeta: .stubs/crossbeam/src/lib.rs

.stubs/crossbeam/src/lib.rs:
