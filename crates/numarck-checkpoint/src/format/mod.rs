//! On-disk checkpoint container, behind a versioned codec seam.
//!
//! Every file starts `NCKP` + a little-endian `u16` version. Reads sniff
//! that version and dispatch through [`AnyCodec`] to the matching
//! module: [`v1`] is the original layout, frozen so any chain ever
//! written stays readable forever; [`v2`] is the current layout (shared
//! centroid dictionary, seekable section directory, 64-byte-aligned
//! sections for mmap zero-copy decode, optional per-section entropy
//! coding). All writers emit [`WRITE_VERSION`]; nothing ever rewrites a
//! v1 file in place — compaction naturally re-serialises merged windows,
//! so old chains upgrade to v2 as they compact.
//!
//! Layout details live in the version modules' docs. Adding a v3 means:
//! a new module, a new [`AnyCodec`] arm, bump [`WRITE_VERSION`] — and
//! not touching v1/v2 again.

mod v1;
mod v2;

pub use v2::{MappedCheckpoint, V2Options};

use numarck::encode::CompressedIteration;
use numarck::error::NumarckError;

use crate::VariableSet;

/// Magic bytes of a checkpoint file.
pub const MAGIC: [u8; 4] = *b"NCKP";
/// The frozen original container version.
pub const VERSION_V1: u16 = 1;
/// The current container version.
pub const VERSION_V2: u16 = 2;
/// The version every writer emits.
pub const WRITE_VERSION: u16 = VERSION_V2;

/// Full (exact) or delta (NUMARCK-compressed) checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckpointKind {
    /// Raw `f64` arrays — the paper's `D_0`.
    Full(VariableSet),
    /// One compressed block per variable.
    Delta(std::collections::BTreeMap<String, CompressedIteration>),
}

/// A checkpoint ready to be written or just read.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointFile {
    /// Simulation iteration this checkpoint captures.
    pub iteration: u64,
    /// Payload.
    pub kind: CheckpointKind,
    /// How far back the base state of a delta lives: 0 or 1 both mean
    /// iteration − 1 (every file written before compaction existed has
    /// 0 here); s ≥ 2 marks a merged delta applying against the state
    /// at iteration − s. Meaningless (and 0) for full checkpoints.
    pub delta_span: u32,
}

/// The versioned codec seam: one arm per container version.
///
/// Modelled on the `AnySerialiser` pattern — the enum is the *only*
/// place that knows which versions exist. Readers go through
/// [`AnyCodec::sniff`] + [`AnyCodec::decode`]; writers through
/// [`AnyCodec::current`] (or the [`CheckpointFile`] convenience
/// methods, which do exactly that).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum AnyCodec {
    /// The frozen original layout.
    V1,
    /// The current layout.
    V2,
}

impl AnyCodec {
    /// The codec every writer uses.
    pub fn current() -> Self {
        Self::V2
    }

    /// Codec for an explicit version number.
    pub fn for_version(version: u16) -> Result<Self, NumarckError> {
        match version {
            VERSION_V1 => Ok(Self::V1),
            VERSION_V2 => Ok(Self::V2),
            found => {
                Err(NumarckError::VersionMismatch { found, expected: WRITE_VERSION })
            }
        }
    }

    /// Sniff the header version of `data` and pick the codec. Rejects
    /// wrong magic and unknown versions; everything else is left to
    /// [`Self::decode`].
    pub fn sniff(data: &[u8]) -> Result<Self, NumarckError> {
        Self::for_version(sniff_version(data)?)
    }

    /// The version number this codec reads and writes.
    pub fn version(self) -> u16 {
        match self {
            Self::V1 => VERSION_V1,
            Self::V2 => VERSION_V2,
        }
    }

    /// Serialise `file` in this codec's layout. Stamps the version just
    /// written into the `nck_format_version` gauge, so `/metrics` and
    /// the BENCH snapshots always carry the container version the
    /// numbers were measured against.
    pub fn encode(self, file: &CheckpointFile) -> Vec<u8> {
        stamp_format_version(self.version());
        match self {
            Self::V1 => v1::to_bytes(file),
            Self::V2 => v2::to_bytes(file, &V2Options::default()),
        }
    }

    /// Parse and validate `data`, which must carry this codec's
    /// version.
    pub fn decode(self, data: &[u8]) -> Result<CheckpointFile, NumarckError> {
        match self {
            Self::V1 => v1::from_bytes(data),
            Self::V2 => v2::from_bytes(data),
        }
    }
}

/// Record the container version a writer just emitted in the global
/// `nck_format_version` gauge.
fn stamp_format_version(version: u16) {
    numarck_obs::Registry::global().gauge("nck_format_version").set(i64::from(version));
}

/// Read the container version out of a file header without validating
/// anything beyond the magic.
pub fn sniff_version(data: &[u8]) -> Result<u16, NumarckError> {
    if data.len() < 6 {
        return Err(NumarckError::Corrupt("checkpoint file too short".into()));
    }
    if data[0..4] != MAGIC {
        return Err(NumarckError::Corrupt("bad checkpoint magic".into()));
    }
    Ok(u16::from_le_bytes(data[4..6].try_into().expect("2 bytes")))
}

/// One variable's section size, as reported by [`describe`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionInfo {
    /// Variable name.
    pub name: String,
    /// Section (v2) / payload (v1) size in bytes, excluding padding.
    pub bytes: u64,
}

/// What the inspector sees: container version plus where the bytes go.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContainerInfo {
    /// Container version of the file.
    pub version: u16,
    /// Shared-dictionary entry count (0 for v1 and for fulls).
    pub dict_entries: usize,
    /// Shared-dictionary size in bytes (0 for v1 and for fulls).
    pub dict_bytes: usize,
    /// Per-variable section sizes, ascending by name.
    pub sections: Vec<SectionInfo>,
}

/// Fully validate `data` (either version) and report its layout.
pub fn describe(data: &[u8]) -> Result<ContainerInfo, NumarckError> {
    match AnyCodec::sniff(data)? {
        AnyCodec::V1 => Ok(ContainerInfo {
            version: VERSION_V1,
            dict_entries: 0,
            dict_bytes: 0,
            sections: v1::describe(data)?,
        }),
        AnyCodec::V2 => {
            let (dict_entries, dict_bytes, sections) = v2::describe(data)?;
            Ok(ContainerInfo { version: VERSION_V2, dict_entries, dict_bytes, sections })
        }
    }
}

impl CheckpointFile {
    /// A plain checkpoint: a full, or a delta against iteration − 1.
    pub fn new(iteration: u64, kind: CheckpointKind) -> Self {
        Self { iteration, kind, delta_span: 0 }
    }

    /// A merged delta applying against the state at `iteration − span`.
    pub fn merged_delta(
        iteration: u64,
        blocks: std::collections::BTreeMap<String, CompressedIteration>,
        span: u32,
    ) -> Self {
        assert!(span >= 1, "a delta always spans at least one iteration");
        Self { iteration, kind: CheckpointKind::Delta(blocks), delta_span: span }
    }

    /// Effective span: how many iterations back this file's base state
    /// lives. 0 for fulls (they are their own base); ≥ 1 for deltas,
    /// normalising the legacy reserved value 0 to 1.
    pub fn span(&self) -> u64 {
        match self.kind {
            CheckpointKind::Full(_) => 0,
            CheckpointKind::Delta(_) => u64::from(self.delta_span.max(1)),
        }
    }

    /// Serialise in the current write version with default options.
    pub fn to_bytes(&self) -> Vec<u8> {
        AnyCodec::current().encode(self)
    }

    /// Serialise in the current write version with explicit options.
    pub fn to_bytes_with(&self, opts: &V2Options) -> Vec<u8> {
        stamp_format_version(VERSION_V2);
        v2::to_bytes(self, opts)
    }

    /// Serialise in the frozen v1 layout. Exists for the fixture
    /// generator and for tests proving the seam; production writers
    /// always emit the current version.
    pub fn to_bytes_v1(&self) -> Vec<u8> {
        AnyCodec::V1.encode(self)
    }

    /// Parse and validate bytes of either container version.
    pub fn from_bytes(data: &[u8]) -> Result<Self, NumarckError> {
        AnyCodec::sniff(data)?.decode(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numarck::{Config, Strategy};

    fn sample_vars() -> VariableSet {
        let mut vars = VariableSet::new();
        vars.insert("dens".into(), (0..500).map(|i| 1.0 + (i % 7) as f64).collect());
        vars.insert("pres".into(), (0..500).map(|i| 0.5 + (i % 3) as f64).collect());
        vars
    }

    fn sample_delta() -> CheckpointFile {
        let cfg = Config::new(8, 0.001, Strategy::Clustering).unwrap();
        let vars = sample_vars();
        let mut blocks = std::collections::BTreeMap::new();
        for (name, data) in &vars {
            let next: Vec<f64> = data.iter().map(|v| v * 1.01).collect();
            let (block, _) = numarck::encode::encode(data, &next, &cfg).unwrap();
            blocks.insert(name.clone(), block);
        }
        CheckpointFile::new(42, CheckpointKind::Delta(blocks))
    }

    #[test]
    fn writers_stamp_the_format_version_gauge() {
        let _ = sample_delta().to_bytes();
        assert_eq!(
            numarck_obs::Registry::global().gauge("nck_format_version").get(),
            i64::from(VERSION_V2)
        );
    }

    /// A delta whose variables all share one table, as the group
    /// encoder produces — the case the shared dictionary optimises.
    /// Sized realistically (several variables, thousands of points,
    /// a rich ratio distribution so the table fills up): at toy sizes
    /// the 64-byte alignment padding legitimately outweighs the
    /// dictionary saving.
    fn shared_table_delta() -> CheckpointFile {
        let cfg = Config::new(8, 0.0001, Strategy::Clustering).unwrap();
        let mut vars = VariableSet::new();
        for (vi, name) in ["dens", "ener", "pres", "temp"].iter().enumerate() {
            vars.insert(
                name.to_string(),
                (0..4096).map(|i| 1.0 + ((i * (vi + 3)) % 17) as f64 * 0.25).collect(),
            );
        }
        let currs: Vec<Vec<f64>> = vars
            .values()
            .map(|v| {
                v.iter()
                    .enumerate()
                    .map(|(i, x)| x * (1.0 + 0.01 * ((i * 37) % 101) as f64 / 101.0))
                    .collect()
            })
            .collect();
        let prevs: Vec<&[f64]> = vars.values().map(|v| v.as_slice()).collect();
        let pairs: Vec<(&[f64], &[f64])> = prevs
            .iter()
            .zip(&currs)
            .map(|(p, c)| (*p, c.as_slice()))
            .collect();
        let (blocks, _) = numarck::group::encode_group(&pairs, &cfg).unwrap();
        let blocks = vars.keys().cloned().zip(blocks).collect();
        CheckpointFile::new(43, CheckpointKind::Delta(blocks))
    }

    #[test]
    fn full_roundtrip() {
        let f = CheckpointFile::new(7, CheckpointKind::Full(sample_vars()));
        let back = CheckpointFile::from_bytes(&f.to_bytes()).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn delta_roundtrip() {
        let f = sample_delta();
        let back = CheckpointFile::from_bytes(&f.to_bytes()).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn writers_emit_v2() {
        let bytes = sample_delta().to_bytes();
        assert_eq!(sniff_version(&bytes).unwrap(), VERSION_V2);
        assert_eq!(AnyCodec::sniff(&bytes).unwrap(), AnyCodec::V2);
    }

    #[test]
    fn v1_roundtrips_through_the_seam() {
        for f in [
            CheckpointFile::new(7, CheckpointKind::Full(sample_vars())),
            sample_delta(),
        ] {
            let bytes = f.to_bytes_v1();
            assert_eq!(sniff_version(&bytes).unwrap(), VERSION_V1);
            assert_eq!(AnyCodec::sniff(&bytes).unwrap(), AnyCodec::V1);
            let back = CheckpointFile::from_bytes(&bytes).unwrap();
            assert_eq!(back, f);
        }
    }

    #[test]
    fn v1_and_v2_decode_identically() {
        let f = sample_delta();
        let from_v1 = CheckpointFile::from_bytes(&f.to_bytes_v1()).unwrap();
        let from_v2 = CheckpointFile::from_bytes(&f.to_bytes()).unwrap();
        assert_eq!(from_v1, from_v2);
    }

    #[test]
    fn unknown_version_rejected() {
        let mut bytes = sample_delta().to_bytes();
        bytes[4] = 9;
        match CheckpointFile::from_bytes(&bytes) {
            Err(NumarckError::VersionMismatch { found: 9, .. }) => {}
            other => panic!("expected version mismatch, got {other:?}"),
        }
        assert!(AnyCodec::for_version(0).is_err());
        assert!(AnyCodec::for_version(3).is_err());
    }

    #[test]
    fn merged_delta_span_roundtrips() {
        let mut f = sample_delta();
        f.delta_span = 5;
        for bytes in [f.to_bytes(), f.to_bytes_v1()] {
            let back = CheckpointFile::from_bytes(&bytes).unwrap();
            assert_eq!(back.delta_span, 5);
            assert_eq!(back.span(), 5);
            assert_eq!(back, f);
        }
    }

    #[test]
    fn legacy_zero_span_reads_as_one_iteration() {
        // Files written before compaction existed carry 0 in the span
        // slot; they are plain deltas against iteration − 1.
        let f = sample_delta();
        assert_eq!(f.delta_span, 0);
        assert_eq!(f.span(), 1);
        let full = CheckpointFile::new(7, CheckpointKind::Full(sample_vars()));
        assert_eq!(full.span(), 0);
    }

    #[test]
    fn empty_variable_set_roundtrip() {
        let f = CheckpointFile::new(0, CheckpointKind::Full(VariableSet::new()));
        let back = CheckpointFile::from_bytes(&f.to_bytes()).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn corruption_detected_everywhere() {
        for bytes in [sample_delta().to_bytes(), sample_delta().to_bytes_v1()] {
            for pos in [0usize, 5, 9, 30, bytes.len() / 2, bytes.len() - 2] {
                let mut bad = bytes.clone();
                bad[pos] ^= 0x40;
                assert!(CheckpointFile::from_bytes(&bad).is_err(), "flip at {pos}");
            }
        }
    }

    #[test]
    fn truncation_detected() {
        for bytes in [sample_delta().to_bytes(), sample_delta().to_bytes_v1()] {
            for cut in [0usize, 10, 23, bytes.len() / 3, bytes.len() - 1] {
                assert!(CheckpointFile::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
            }
        }
    }

    #[test]
    fn unicode_variable_names() {
        let mut vars = VariableSet::new();
        vars.insert("ρ-density".into(), vec![1.0, 2.0]);
        let f = CheckpointFile::new(1, CheckpointKind::Full(vars));
        let back = CheckpointFile::from_bytes(&f.to_bytes()).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn shared_table_collapses_into_one_dictionary() {
        let f = shared_table_delta();
        let bytes = f.to_bytes();
        let back = CheckpointFile::from_bytes(&bytes).unwrap();
        assert_eq!(back, f);
        let info = describe(&bytes).unwrap();
        assert_eq!(info.version, VERSION_V2);
        assert!(info.dict_entries > 0);
        // Both variables reference the pooled table; neither section
        // re-embeds it, so the dictionary is paid for exactly once and
        // v2 undercuts v1 even with its fatter fixed-size headers.
        let v1_len = f.to_bytes_v1().len();
        assert!(
            bytes.len() < v1_len,
            "v2 ({}) not smaller than v1 ({v1_len}) for a shared-table delta",
            bytes.len()
        );
    }

    #[test]
    fn entropy_coding_roundtrips_and_never_grows_sections() {
        let f = shared_table_delta();
        let plain = f.to_bytes();
        let coded = f.to_bytes_with(&V2Options { entropy: true });
        let back = CheckpointFile::from_bytes(&coded).unwrap();
        assert_eq!(back, f);
        assert!(coded.len() <= plain.len(), "entropy coding grew the file");
    }

    #[test]
    fn describe_reports_both_versions() {
        let f = sample_delta();
        let v1 = describe(&f.to_bytes_v1()).unwrap();
        assert_eq!(v1.version, VERSION_V1);
        assert_eq!(v1.dict_entries, 0);
        assert_eq!(v1.sections.len(), 2);
        let v2 = describe(&f.to_bytes()).unwrap();
        assert_eq!(v2.version, VERSION_V2);
        assert_eq!(v2.sections.len(), 2);
        assert_eq!(
            v1.sections.iter().map(|s| s.name.as_str()).collect::<Vec<_>>(),
            v2.sections.iter().map(|s| s.name.as_str()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn mapped_decode_matches_owned_decode() {
        use crate::mmapio::AlignedBytes;

        let cfg = Config::new(8, 0.001, Strategy::Clustering).unwrap();
        let prev_vars = sample_vars();
        let mut blocks = std::collections::BTreeMap::new();
        let mut expect = VariableSet::new();
        for (name, prev) in &prev_vars {
            let next: Vec<f64> = prev.iter().map(|v| v * 1.01).collect();
            let (block, _) = numarck::encode::encode(prev, &next, &cfg).unwrap();
            expect.insert(
                name.clone(),
                numarck::decode::reconstruct(prev, &block).unwrap(),
            );
            blocks.insert(name.clone(), block);
        }
        let f = CheckpointFile::new(42, CheckpointKind::Delta(blocks));

        for opts in [V2Options { entropy: false }, V2Options { entropy: true }] {
            let bytes = f.to_bytes_with(&opts);
            let mapped = MappedCheckpoint::parse(AlignedBytes::from_vec(bytes)).unwrap();
            assert_eq!(mapped.iteration(), 42);
            assert!(!mapped.is_full());
            assert_eq!(mapped.span(), 1);
            for (name, prev) in &prev_vars {
                let got = mapped.decode_variable(name, prev).unwrap();
                let want = &expect[name];
                assert_eq!(got.len(), want.len());
                for (g, w) in got.iter().zip(want) {
                    assert_eq!(g.to_bits(), w.to_bits(), "mapped decode diverged");
                }
            }
        }
    }

    #[test]
    fn mapped_full_reads_back() {
        use crate::mmapio::AlignedBytes;

        let f = CheckpointFile::new(7, CheckpointKind::Full(sample_vars()));
        let mapped = MappedCheckpoint::parse(AlignedBytes::from_vec(f.to_bytes())).unwrap();
        assert!(mapped.is_full());
        assert_eq!(mapped.span(), 0);
        assert_eq!(mapped.full_variables().unwrap(), sample_vars());
        assert_eq!(mapped.full_variable("dens").unwrap(), sample_vars()["dens"]);
        assert!(mapped.full_variable("nope").is_err());
    }

    #[test]
    fn mapped_parse_rejects_v1_with_version_mismatch() {
        use crate::mmapio::AlignedBytes;

        let bytes = sample_delta().to_bytes_v1();
        match MappedCheckpoint::parse(AlignedBytes::from_vec(bytes)) {
            Err(NumarckError::VersionMismatch { found: 1, .. }) => {}
            other => panic!("expected version mismatch, got {other:?}"),
        }
    }
}
