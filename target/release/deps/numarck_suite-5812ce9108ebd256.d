/root/repo/target/release/deps/numarck_suite-5812ce9108ebd256.d: src/lib.rs

/root/repo/target/release/deps/libnumarck_suite-5812ce9108ebd256.rlib: src/lib.rs

/root/repo/target/release/deps/libnumarck_suite-5812ce9108ebd256.rmeta: src/lib.rs

src/lib.rs:
