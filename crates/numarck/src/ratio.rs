//! Forward predictive coding: the change-ratio transform (paper §II-B,
//! Eq. 1).
//!
//! `Δ_ij = (D_i,j − D_{i−1,j}) / D_{i−1,j}` maps two raw snapshots into a
//! stream where common patterns exist: two points moving from 10→11 and
//! 100→110 both become the single ratio 0.10. Points whose previous value
//! is exactly zero have no defined ratio and are marked incompressible
//! (their current value will be stored exactly), per the paper.
//!
//! Storage is *dense*: [`ChangeRatios`] keeps one raw IEEE `f64` per
//! point (8 bytes, half the old tagged-enum layout) plus the tolerance it
//! was computed at. The per-point class is fully derivable from the value
//! itself — a zero previous value produces `±inf`/`NaN` straight from the
//! division, so non-finite ⇒ [`RatioClass::Undefined`], `|Δ| < E` ⇒
//! [`RatioClass::Small`], else [`RatioClass::Large`] — which is exactly
//! what lets the encoder's fused SIMD kernel re-derive classes from the
//! ratio array without a second tagged pass.

use rayon::prelude::*;

use numarck_par::chunk::{chunk_size_for, partition_mut};
use numarck_simd::transform::change_ratios as simd_change_ratios;

use crate::error::NumarckError;

/// Per-point classification of a change ratio.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RatioClass {
    /// `|Δ| < E`: representable by index 0 (approximate change of zero).
    /// Carries the actual small ratio so the encoder can account the
    /// incurred error (the change is stored as zero, so the error is
    /// `|Δ|` itself) without re-deriving it from the raw data.
    Small(f64),
    /// `|Δ| ≥ E`: needs a representative from the learned table.
    Large(f64),
    /// Previous value was zero (or the ratio is non-finite): must be
    /// stored exactly.
    Undefined,
}

/// Classify one raw ratio at tolerance `E`. With finite inputs, a zero
/// previous value yields `±inf`/`NaN` from the division itself, so the
/// non-finite check covers both "no defined ratio" cases.
#[inline]
pub fn classify(r: f64, tolerance: f64) -> RatioClass {
    if !r.is_finite() {
        RatioClass::Undefined
    } else if r.abs() < tolerance {
        RatioClass::Small(r)
    } else {
        RatioClass::Large(r)
    }
}

/// Per-class tallies produced by the transform pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClassCounts {
    /// Points with `|Δ| < E`.
    pub small: usize,
    /// Points with `|Δ| ≥ E`.
    pub large: usize,
    /// Points with no defined ratio.
    pub undefined: usize,
}

impl ClassCounts {
    fn merge(&mut self, other: &ClassCounts) {
        self.small += other.small;
        self.large += other.large;
        self.undefined += other.undefined;
    }
}

/// The change-ratio transform of one iteration pair.
#[derive(Debug, Clone)]
pub struct ChangeRatios {
    /// Raw IEEE ratio per point; non-finite entries are the undefined
    /// points (zero previous value or overflowed division).
    pub ratios: Vec<f64>,
    /// The tolerance `E` the transform was classified at.
    pub tolerance: f64,
    /// The subset of ratios with `|Δ| ≥ E`, in point order — the sample the
    /// approximation strategies learn from.
    pub fit_sample: Vec<f64>,
    /// Class tallies, computed during the transform pass itself.
    pub counts: ClassCounts,
}

impl ChangeRatios {
    /// Number of points.
    pub fn len(&self) -> usize {
        self.ratios.len()
    }

    /// True when there are no points.
    pub fn is_empty(&self) -> bool {
        self.ratios.is_empty()
    }

    /// Class of point `j`, derived from the dense ratio.
    ///
    /// # Panics
    /// Panics if `j` is out of range.
    #[inline]
    pub fn class(&self, j: usize) -> RatioClass {
        classify(self.ratios[j], self.tolerance)
    }

    /// Iterate the per-point classes in point order.
    pub fn iter_classes(&self) -> impl Iterator<Item = RatioClass> + '_ {
        let tol = self.tolerance;
        self.ratios.iter().map(move |&r| classify(r, tol))
    }

    /// Count of points in each class: `(small, large, undefined)`.
    ///
    /// O(1): the tallies are accumulated by the parallel transform pass
    /// in [`compute`], not re-derived by walking the ratios.
    pub fn class_counts(&self) -> (usize, usize, usize) {
        (self.counts.small, self.counts.large, self.counts.undefined)
    }
}

/// The raw change ratio for one point, or `None` when it is undefined
/// (zero previous value or non-finite result).
#[inline]
pub fn change_ratio(prev: f64, curr: f64) -> Option<f64> {
    if prev == 0.0 {
        return None;
    }
    let r = (curr - prev) / prev;
    r.is_finite().then_some(r)
}

/// Compute the change-ratio transform for an iteration pair.
///
/// Inputs must be the same length and finite ([`NumarckError::LengthMismatch`]
/// / [`NumarckError::NonFiniteInput`] otherwise); input validation is
/// fused into the SIMD transform pass instead of two dedicated sweeps.
/// The computation is chunk-parallel; output ordering is point order
/// regardless of thread count.
pub fn compute(prev: &[f64], curr: &[f64], tolerance: f64) -> Result<ChangeRatios, NumarckError> {
    if prev.len() != curr.len() {
        return Err(NumarckError::LengthMismatch { prev: prev.len(), curr: curr.len() });
    }
    if prev.is_empty() {
        return Ok(ChangeRatios {
            ratios: Vec::new(),
            tolerance,
            fit_sample: Vec::new(),
            counts: ClassCounts::default(),
        });
    }

    let n = prev.len();
    let chunk = chunk_size_for(n);
    // Single fused pass per chunk: the lane kernel writes the raw ratios
    // and reports non-finite inputs; a second in-cache walk tallies the
    // classes and collects the chunk's fit sample. Chunk decomposition is
    // fixed, so the result is deterministic for any thread count.
    let mut ratios = vec![0.0f64; n];
    struct ChunkPart {
        bad_prev: Option<usize>,
        bad_curr: Option<usize>,
        sample: Vec<f64>,
        counts: ClassCounts,
    }
    let parts: Vec<ChunkPart> = ratios
        .par_chunks_mut(chunk)
        .zip(prev.par_chunks(chunk).zip(curr.par_chunks(chunk)))
        .map(|(out, (p, c))| {
            let bad = simd_change_ratios(p, c, out);
            let mut sample = Vec::new();
            let mut counts = ClassCounts::default();
            if bad.is_none() {
                for &r in out.iter() {
                    match classify(r, tolerance) {
                        RatioClass::Undefined => counts.undefined += 1,
                        RatioClass::Small(_) => counts.small += 1,
                        RatioClass::Large(r) => {
                            counts.large += 1;
                            sample.push(r);
                        }
                    }
                }
            }
            ChunkPart {
                bad_prev: bad.and_then(|b| b.prev),
                bad_curr: bad.and_then(|b| b.curr),
                sample,
                counts,
            }
        })
        .collect();

    // Error ordering matches the retired two-sweep validation: the first
    // bad index anywhere in `prev` wins over any bad index in `curr`.
    // Chunk-local indices are monotone in chunk order, so the first hit
    // per array is the global minimum.
    let mut first_prev = None;
    let mut first_curr = None;
    for (ci, part) in parts.iter().enumerate() {
        if first_prev.is_none() {
            first_prev = part.bad_prev.map(|j| ci * chunk + j);
        }
        if first_curr.is_none() {
            first_curr = part.bad_curr.map(|j| ci * chunk + j);
        }
    }
    if let Some(index) = first_prev.or(first_curr) {
        return Err(NumarckError::NonFiniteInput { index });
    }

    // Assemble the pooled fit sample into one preallocated vector: the
    // per-chunk sample lengths partition the output exactly, so every
    // chunk's sample is copied in parallel into its own disjoint window.
    let mut counts = ClassCounts::default();
    for part in &parts {
        counts.merge(&part.counts);
    }
    let mut fit_sample = vec![0.0f64; counts.large];
    let windows = partition_mut(&mut fit_sample, parts.iter().map(|p| p.sample.len()));
    windows
        .into_par_iter()
        .zip(parts.par_iter())
        .for_each(|(dst, part)| dst.copy_from_slice(&part.sample));
    Ok(ChangeRatios { ratios, tolerance, fit_sample, counts })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_of_ten_percent_growth() {
        // The paper's motivating example: 10→11 and 100→110 share the
        // single representative ratio 0.10.
        let a = change_ratio(10.0, 11.0).unwrap();
        let b = change_ratio(100.0, 110.0).unwrap();
        assert!((a - 0.1).abs() < 1e-15);
        assert!((b - 0.1).abs() < 1e-15);
    }

    #[test]
    fn zero_prev_is_undefined() {
        assert_eq!(change_ratio(0.0, 5.0), None);
        assert_eq!(change_ratio(-0.0, 5.0), None);
    }

    #[test]
    fn identical_values_give_zero_ratio() {
        assert_eq!(change_ratio(3.5, 3.5), Some(0.0));
    }

    #[test]
    fn overflow_to_infinity_is_undefined() {
        // Tiny prev with huge curr overflows the division.
        assert_eq!(change_ratio(f64::MIN_POSITIVE, f64::MAX), None);
    }

    #[test]
    fn classes_are_assigned_correctly() {
        let prev = [1.0, 2.0, 0.0, 4.0];
        let curr = [1.0005, 2.5, 7.0, 4.0];
        let r = compute(&prev, &curr, 0.001).unwrap();
        // 0.05% < 0.1%: small, carrying the actual ratio.
        assert!(matches!(r.class(0), RatioClass::Small(d) if (d - 0.0005).abs() < 1e-12));
        assert_eq!(r.class(1), RatioClass::Large(0.25));
        assert_eq!(r.class(2), RatioClass::Undefined);
        assert_eq!(r.class(3), RatioClass::Small(0.0)); // exactly zero change
        assert_eq!(r.fit_sample, vec![0.25]);
        assert_eq!(r.class_counts(), (2, 1, 1));
    }

    #[test]
    fn dense_storage_matches_per_point_change_ratio() {
        // The dense vector stores the raw IEEE division result; the class
        // derivation must agree with the Option-returning scalar helper.
        let prev = [1.0, 0.0, -0.0, 2.0, f64::MIN_POSITIVE];
        let curr = [1.25, 3.0, 0.0, 2.0, f64::MAX];
        let r = compute(&prev, &curr, 0.001).unwrap();
        for j in 0..prev.len() {
            match change_ratio(prev[j], curr[j]) {
                None => assert_eq!(r.class(j), RatioClass::Undefined, "point {j}"),
                Some(v) => {
                    assert_eq!(r.ratios[j].to_bits(), v.to_bits(), "point {j}");
                    assert_ne!(r.class(j), RatioClass::Undefined, "point {j}");
                }
            }
        }
    }

    #[test]
    fn length_mismatch_is_an_error() {
        let e = compute(&[1.0], &[1.0, 2.0], 0.001).unwrap_err();
        assert_eq!(e, NumarckError::LengthMismatch { prev: 1, curr: 2 });
    }

    #[test]
    fn non_finite_input_is_an_error_with_first_index() {
        let prev = [1.0, f64::NAN, f64::INFINITY];
        let curr = [1.0, 1.0, 1.0];
        let e = compute(&prev, &curr, 0.001).unwrap_err();
        assert_eq!(e, NumarckError::NonFiniteInput { index: 1 });
    }

    #[test]
    fn bad_prev_wins_over_earlier_bad_curr() {
        // The validation contract scans all of `prev` before `curr`: a
        // non-finite prev at a later index still outranks an earlier bad
        // curr.
        let mut prev = vec![1.0; 40];
        let mut curr = vec![1.0; 40];
        prev[33] = f64::NAN;
        curr[2] = f64::INFINITY;
        let e = compute(&prev, &curr, 0.001).unwrap_err();
        assert_eq!(e, NumarckError::NonFiniteInput { index: 33 });
    }

    #[test]
    fn empty_input_is_fine() {
        let r = compute(&[], &[], 0.001).unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn fit_sample_preserves_point_order() {
        let prev = vec![1.0; 6];
        let curr = vec![1.1, 1.0, 1.2, 1.0, 1.3, 1.4];
        let r = compute(&prev, &curr, 0.001).unwrap();
        let expected: Vec<f64> = vec![0.1, 0.2, 0.3, 0.4];
        for (a, b) in r.fit_sample.iter().zip(&expected) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn stored_counts_match_a_manual_walk() {
        let n = 10_000;
        let prev: Vec<f64> =
            (0..n).map(|i| if i % 13 == 0 { 0.0 } else { 1.0 + (i % 7) as f64 }).collect();
        let curr: Vec<f64> = prev
            .iter()
            .enumerate()
            .map(|(i, v)| if *v == 0.0 { 2.0 } else { v * (1.0 + 0.002 * ((i % 3) as f64)) })
            .collect();
        let r = compute(&prev, &curr, 0.001).unwrap();
        let mut manual = (0usize, 0usize, 0usize);
        for c in r.iter_classes() {
            match c {
                RatioClass::Small(_) => manual.0 += 1,
                RatioClass::Large(_) => manual.1 += 1,
                RatioClass::Undefined => manual.2 += 1,
            }
        }
        assert_eq!(r.class_counts(), manual);
    }

    #[test]
    fn small_class_carries_the_actual_ratio() {
        let r = compute(&[10.0], &[10.005], 0.001).unwrap();
        match r.class(0) {
            RatioClass::Small(d) => assert!((d - 0.0005).abs() < 1e-12),
            other => panic!("expected Small, got {other:?}"),
        }
    }

    #[test]
    fn negative_changes_are_captured() {
        let r = compute(&[10.0], &[9.0], 0.001).unwrap();
        assert_eq!(r.class(0), RatioClass::Large(-0.1));
    }

    #[test]
    fn large_input_parallel_matches_sequential_semantics() {
        let n = 300_000;
        let prev: Vec<f64> = (0..n).map(|i| 1.0 + (i % 97) as f64).collect();
        let curr: Vec<f64> = prev.iter().enumerate().map(|(i, v)| v * (1.0 + 0.002 * ((i % 5) as f64))).collect();
        let r = compute(&prev, &curr, 0.001).unwrap();
        assert_eq!(r.len(), n);
        // i % 5 == 0 -> ratio 0 (small); others large.
        let (small, large, undef) = r.class_counts();
        assert_eq!(undef, 0);
        assert_eq!(small, n / 5);
        assert_eq!(large, n - n / 5);
        assert_eq!(r.fit_sample.len(), large);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn class_partition_is_total(
                pairs in proptest::collection::vec((-1e6f64..1e6, -1e6f64..1e6), 0..500),
                tol in 1e-6f64..0.1
            ) {
                let prev: Vec<f64> = pairs.iter().map(|p| p.0).collect();
                let curr: Vec<f64> = pairs.iter().map(|p| p.1).collect();
                let r = compute(&prev, &curr, tol).unwrap();
                let (s, l, u) = r.class_counts();
                prop_assert_eq!(s + l + u, prev.len());
                prop_assert_eq!(l, r.fit_sample.len());
                // Every fit-sample entry is at least tol in magnitude.
                for &x in &r.fit_sample {
                    prop_assert!(x.abs() >= tol);
                }
            }
        }
    }
}
