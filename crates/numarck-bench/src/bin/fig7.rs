//! Figure 7: effect of the user tolerance `E` on `abs550aer` with the
//! clustering strategy, `B = 8`, 60 iterations.
//!
//! Expected shape (paper): raising E from 0.1% to 0.5% drives the
//! incompressible ratio from >40% down below 10% and the compression
//! ratio from <50% to >80%, while the mean error stays well below the
//! tolerance (e.g. <0.1% at E = 0.4%).

use climate_sim::ClimateVar;
use numarck::{Config, Strategy};
use numarck_bench::data::climate_sequence;
use numarck_bench::report::{pct, print_table, write_csv};
use numarck_bench::run::{compress_sequence, mean_of};
use numarck_bench::RESULTS_DIR;

fn main() {
    let iterations = 60usize;
    let bits = 8u8;
    let seq = climate_sequence(ClimateVar::Abs550aer, iterations);

    println!(
        "Fig. 7: abs550aer, clustering, B = {bits}, {} transitions",
        iterations - 1
    );
    let mut summary = vec![vec![
        "E %".to_string(),
        "incompressible %".to_string(),
        "compression % (Eq.3)".to_string(),
        "mean error %".to_string(),
    ]];
    let mut csv = vec![vec![
        "tolerance".to_string(),
        "iteration".to_string(),
        "incompressible_ratio".to_string(),
        "compression_eq3".to_string(),
        "mean_error".to_string(),
    ]];
    for e_pct in [0.1f64, 0.2, 0.3, 0.4, 0.5] {
        let tolerance = e_pct / 100.0;
        let config = Config::new(bits, tolerance, Strategy::Clustering).expect("valid");
        let stats = compress_sequence(&seq, config);
        for (i, st) in stats.iter().enumerate() {
            csv.push(vec![
                tolerance.to_string(),
                (i + 1).to_string(),
                st.incompressible_ratio.to_string(),
                st.compression_ratio_eq3.to_string(),
                st.mean_error_rate.to_string(),
            ]);
        }
        summary.push(vec![
            format!("{e_pct:.1}"),
            pct(mean_of(&stats, |s| s.incompressible_ratio), 2),
            pct(mean_of(&stats, |s| s.compression_ratio_eq3), 2),
            pct(mean_of(&stats, |s| s.mean_error_rate), 4),
        ]);
    }
    print_table(&summary);
    println!("\n(paper: incompressible >40% → <10% and compression <50% → >80% as E rises;");
    println!(" mean error stays far below E, e.g. <0.1% at E = 0.4%)");
    match write_csv(RESULTS_DIR, "fig7_tolerance_sweep", &csv) {
        Ok(p) => println!("wrote {p}"),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
