/root/repo/target/debug/deps/compress_throughput-9eb75122c9ebbb13.d: crates/numarck-bench/benches/compress_throughput.rs

/root/repo/target/debug/deps/libcompress_throughput-9eb75122c9ebbb13.rmeta: crates/numarck-bench/benches/compress_throughput.rs

crates/numarck-bench/benches/compress_throughput.rs:
