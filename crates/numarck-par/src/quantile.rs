//! Streaming quantile estimation (the P² algorithm of Jain & Chlamtac,
//! CACM 1985).
//!
//! The anomaly fence and the drift summaries need quantiles of change
//! ratios. The batch paths use histogram quantiles; for *streaming*
//! settings (in-situ monitoring of a running solver, where a full pass
//! per statistic is not available) the P² sketch maintains a quantile
//! estimate in O(1) memory and O(1) per observation, with no storage of
//! the data.

/// P² estimator for a single quantile `q ∈ (0, 1)`.
#[derive(Debug, Clone)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights (estimated values at the marker positions).
    heights: [f64; 5],
    /// Actual marker positions (1-based observation ranks).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired position increments per observation.
    increments: [f64; 5],
    /// Observations seen so far.
    count: usize,
    /// First five observations (before the sketch activates).
    warmup: [f64; 5],
}

impl P2Quantile {
    /// Estimator for quantile `q`.
    ///
    /// # Panics
    /// Panics unless `0 < q < 1`.
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "quantile must be in (0, 1)");
        Self {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
            warmup: [0.0; 5],
        }
    }

    /// The target quantile.
    pub fn quantile(&self) -> f64 {
        self.q
    }

    /// Observations folded in so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Feed one observation.
    pub fn observe(&mut self, x: f64) {
        debug_assert!(x.is_finite());
        if self.count < 5 {
            self.warmup[self.count] = x;
            self.count += 1;
            if self.count == 5 {
                self.warmup.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                self.heights = self.warmup;
            }
            return;
        }
        self.count += 1;
        // Locate the cell and bump marker positions above it.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            let mut cell = 0;
            for i in 0..4 {
                if x >= self.heights[i] && x < self.heights[i + 1] {
                    cell = i;
                    break;
                }
            }
            cell
        };
        for p in self.positions.iter_mut().skip(k + 1) {
            *p += 1.0;
        }
        for (d, inc) in self.desired.iter_mut().zip(&self.increments) {
            *d += inc;
        }
        // Adjust interior markers toward their desired positions with
        // piecewise-parabolic (P²) interpolation.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right_gap = self.positions[i + 1] - self.positions[i];
            let left_gap = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right_gap > 1.0) || (d <= -1.0 && left_gap < -1.0) {
                let sign = d.signum();
                let candidate = self.parabolic(i, sign);
                self.heights[i] = if self.heights[i - 1] < candidate
                    && candidate < self.heights[i + 1]
                {
                    candidate
                } else {
                    self.linear(i, sign)
                };
                self.positions[i] += sign;
            }
        }
    }

    fn parabolic(&self, i: usize, sign: f64) -> f64 {
        let (hm, h, hp) = (self.heights[i - 1], self.heights[i], self.heights[i + 1]);
        let (pm, p, pp) = (self.positions[i - 1], self.positions[i], self.positions[i + 1]);
        h + sign / (pp - pm)
            * ((p - pm + sign) * (hp - h) / (pp - p) + (pp - p - sign) * (h - hm) / (p - pm))
    }

    fn linear(&self, i: usize, sign: f64) -> f64 {
        let j = (i as f64 + sign) as usize;
        self.heights[i]
            + sign * (self.heights[j] - self.heights[i])
                / (self.positions[j] - self.positions[i])
    }

    /// Current estimate (exact for fewer than five observations; `None`
    /// when nothing was observed).
    pub fn estimate(&self) -> Option<f64> {
        match self.count {
            0 => None,
            n if n < 5 => {
                let mut tmp: Vec<f64> = self.warmup[..n].to_vec();
                tmp.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                let idx = ((self.q * n as f64).ceil() as usize).clamp(1, n) - 1;
                Some(tmp[idx])
            }
            _ => Some(self.heights[2]),
        }
    }
}

/// A bracket of three P² sketches (lo / median / hi) — what the streaming
/// anomaly fence needs.
#[derive(Debug, Clone)]
pub struct QuantileBracket {
    /// Lower tail sketch.
    pub lo: P2Quantile,
    /// Median sketch.
    pub median: P2Quantile,
    /// Upper tail sketch.
    pub hi: P2Quantile,
}

impl QuantileBracket {
    /// Bracket at `tail` / 0.5 / `1 − tail`.
    pub fn new(tail: f64) -> Self {
        Self {
            lo: P2Quantile::new(tail),
            median: P2Quantile::new(0.5),
            hi: P2Quantile::new(1.0 - tail),
        }
    }

    /// Feed one observation to all three sketches.
    pub fn observe(&mut self, x: f64) {
        self.lo.observe(x);
        self.median.observe(x);
        self.hi.observe(x);
    }

    /// `(lo, median, hi)` estimates, if any data has been observed.
    pub fn estimates(&self) -> Option<(f64, f64, f64)> {
        Some((self.lo.estimate()?, self.median.estimate()?, self.hi.estimate()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256PlusPlus;

    fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
        let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
        sorted[idx]
    }

    #[test]
    fn empty_and_warmup() {
        let mut p = P2Quantile::new(0.5);
        assert_eq!(p.estimate(), None);
        p.observe(3.0);
        assert_eq!(p.estimate(), Some(3.0));
        p.observe(1.0);
        p.observe(2.0);
        assert_eq!(p.estimate(), Some(2.0));
        assert_eq!(p.count(), 3);
    }

    #[test]
    fn median_of_uniform_stream() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        let mut p = P2Quantile::new(0.5);
        for _ in 0..100_000 {
            p.observe(rng.uniform(0.0, 10.0));
        }
        let m = p.estimate().unwrap();
        assert!((m - 5.0).abs() < 0.1, "median estimate {m}");
    }

    #[test]
    fn tail_quantiles_of_normal_stream() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(9);
        let mut p95 = P2Quantile::new(0.95);
        let mut p05 = P2Quantile::new(0.05);
        for _ in 0..200_000 {
            let x = rng.normal();
            p95.observe(x);
            p05.observe(x);
        }
        // Φ⁻¹(0.95) ≈ 1.645.
        assert!((p95.estimate().unwrap() - 1.645).abs() < 0.05);
        assert!((p05.estimate().unwrap() + 1.645).abs() < 0.05);
    }

    #[test]
    fn matches_exact_quantile_on_skewed_data() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(13);
        let data: Vec<f64> = (0..50_000).map(|_| rng.normal().exp()).collect(); // lognormal
        let mut p = P2Quantile::new(0.9);
        for &x in &data {
            p.observe(x);
        }
        let mut sorted = data.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let exact = exact_quantile(&sorted, 0.9);
        let est = p.estimate().unwrap();
        assert!(
            (est - exact).abs() < 0.08 * exact,
            "P² {est} vs exact {exact} on a heavy-tailed stream"
        );
    }

    #[test]
    fn monotone_stream() {
        let mut p = P2Quantile::new(0.5);
        for i in 0..10_001 {
            p.observe(i as f64);
        }
        let m = p.estimate().unwrap();
        assert!((m - 5000.0).abs() < 150.0, "median of 0..10000 ≈ {m}");
    }

    #[test]
    fn bracket_orders_its_estimates() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(21);
        let mut b = QuantileBracket::new(0.01);
        for _ in 0..50_000 {
            b.observe(rng.normal());
        }
        let (lo, med, hi) = b.estimates().unwrap();
        assert!(lo < med && med < hi, "({lo}, {med}, {hi})");
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn out_of_range_quantile_rejected() {
        P2Quantile::new(1.0);
    }
}
