//! Synthetic CMIP5-like climate fields.
//!
//! The paper evaluates NUMARCK on six CMIP5 archive variables on a
//! 2.5°×2° grid. The archive itself is not redistributable, so this
//! crate generates synthetic fields on the same 144×90 grid whose
//! *temporal change-ratio statistics* are calibrated to the facts the
//! paper publishes:
//!
//! * `rlus`: "more than 75% of climate rlus data remains unchanged or
//!   only changes with a percentage less than 0.5%" (Fig. 1) — smooth
//!   radiative field, small AR(1) anomalies plus a slow seasonal cycle;
//! * CMIP5 data is harder than FLASH data (§III-C) — broader anomaly
//!   steps than the hydro solver's per-step changes;
//! * `abs550aer` is the hardest variable (§III-E) — wide multiplicative
//!   log-normal steps plus episodic plumes, so its change ratios spread
//!   far beyond what `2^B − 1` representatives can cover at `E = 0.1%`;
//! * `mrro` values are tiny (Table II reports ξ = 0.000 for every method)
//!   and intermittent; `mc` values are huge (ξ ≈ 200 even compressed).
//!
//! Every generator is deterministic given its seed, so experiment
//! figures regenerate bit-identically.

pub mod dataset;
pub mod field;
pub mod grid;
pub mod variables;

pub use dataset::ClimateModel;
pub use grid::Grid;
pub use variables::ClimateVar;
