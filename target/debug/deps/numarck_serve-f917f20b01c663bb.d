/root/repo/target/debug/deps/numarck_serve-f917f20b01c663bb.d: crates/numarck-serve/src/lib.rs crates/numarck-serve/src/client.rs crates/numarck-serve/src/journal.rs crates/numarck-serve/src/recovery.rs crates/numarck-serve/src/server.rs crates/numarck-serve/src/wire.rs

/root/repo/target/debug/deps/libnumarck_serve-f917f20b01c663bb.rmeta: crates/numarck-serve/src/lib.rs crates/numarck-serve/src/client.rs crates/numarck-serve/src/journal.rs crates/numarck-serve/src/recovery.rs crates/numarck-serve/src/server.rs crates/numarck-serve/src/wire.rs

crates/numarck-serve/src/lib.rs:
crates/numarck-serve/src/client.rs:
crates/numarck-serve/src/journal.rs:
crates/numarck-serve/src/recovery.rs:
crates/numarck-serve/src/server.rs:
crates/numarck-serve/src/wire.rs:
