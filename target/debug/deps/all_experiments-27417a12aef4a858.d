/root/repo/target/debug/deps/all_experiments-27417a12aef4a858.d: crates/numarck-bench/src/bin/all_experiments.rs

/root/repo/target/debug/deps/liball_experiments-27417a12aef4a858.rmeta: crates/numarck-bench/src/bin/all_experiments.rs

crates/numarck-bench/src/bin/all_experiments.rs:
