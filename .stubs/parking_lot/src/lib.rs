//! Empty stand-in: the workspace declares `parking_lot` but no code imports it.
