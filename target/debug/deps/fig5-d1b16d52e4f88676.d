/root/repo/target/debug/deps/fig5-d1b16d52e4f88676.d: crates/numarck-bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-d1b16d52e4f88676: crates/numarck-bench/src/bin/fig5.rs

crates/numarck-bench/src/bin/fig5.rs:
