/root/repo/target/debug/deps/numarck_bench-d0e27123136ffacb.d: crates/numarck-bench/src/lib.rs crates/numarck-bench/src/data.rs crates/numarck-bench/src/report.rs crates/numarck-bench/src/run.rs

/root/repo/target/debug/deps/libnumarck_bench-d0e27123136ffacb.rmeta: crates/numarck-bench/src/lib.rs crates/numarck-bench/src/data.rs crates/numarck-bench/src/report.rs crates/numarck-bench/src/run.rs

crates/numarck-bench/src/lib.rs:
crates/numarck-bench/src/data.rs:
crates/numarck-bench/src/report.rs:
crates/numarck-bench/src/run.rs:
