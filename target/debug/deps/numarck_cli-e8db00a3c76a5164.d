/root/repo/target/debug/deps/numarck_cli-e8db00a3c76a5164.d: crates/numarck-cli/src/lib.rs crates/numarck-cli/src/args.rs crates/numarck-cli/src/chainfile.rs crates/numarck-cli/src/commands.rs crates/numarck-cli/src/seqfile.rs crates/numarck-cli/src/serve_cmd.rs Cargo.toml

/root/repo/target/debug/deps/libnumarck_cli-e8db00a3c76a5164.rmeta: crates/numarck-cli/src/lib.rs crates/numarck-cli/src/args.rs crates/numarck-cli/src/chainfile.rs crates/numarck-cli/src/commands.rs crates/numarck-cli/src/seqfile.rs crates/numarck-cli/src/serve_cmd.rs Cargo.toml

crates/numarck-cli/src/lib.rs:
crates/numarck-cli/src/args.rs:
crates/numarck-cli/src/chainfile.rs:
crates/numarck-cli/src/commands.rs:
crates/numarck-cli/src/seqfile.rs:
crates/numarck-cli/src/serve_cmd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
