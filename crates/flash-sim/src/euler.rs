//! Compressible-Euler update kernel: first-order finite volume with
//! Rusanov (local Lax–Friedrichs) fluxes.
//!
//! Robust rather than sharp — NUMARCK cares about the *temporal
//! statistics* of the fields, not shock resolution, and Rusanov's extra
//! dissipation only makes fronts slightly smoother. States are kept
//! physical with density/pressure floors.

use crate::block::{cons, Block, NCONS};
use crate::eos::GammaLaw;

/// Density floor applied when converting to primitives.
pub const RHO_FLOOR: f64 = 1e-10;
/// Pressure floor applied when converting to primitives.
pub const P_FLOOR: f64 = 1e-12;

/// Primitive state `(ρ, u, v, w, p)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Primitive {
    /// Density.
    pub rho: f64,
    /// x velocity.
    pub u: f64,
    /// y velocity.
    pub v: f64,
    /// z velocity (passive).
    pub w: f64,
    /// Pressure.
    pub p: f64,
}

/// Conserved → primitive with floors.
#[inline]
pub fn to_primitive(s: &[f64; NCONS], eos: &GammaLaw) -> Primitive {
    let rho = s[cons::RHO].max(RHO_FLOOR);
    let u = s[cons::MX] / rho;
    let v = s[cons::MY] / rho;
    let w = s[cons::MZ] / rho;
    let kinetic = 0.5 * rho * (u * u + v * v + w * w);
    let eint = (s[cons::ENERGY] - kinetic).max(P_FLOOR) / rho;
    let p = eos.pressure(rho, eint).max(P_FLOOR);
    Primitive { rho, u, v, w, p }
}

/// Primitive → conserved.
#[inline]
pub fn to_conserved(pr: &Primitive, eos: &GammaLaw) -> [f64; NCONS] {
    let eint = eos.internal_energy(pr.rho, pr.p);
    let e = pr.rho * (eint + 0.5 * (pr.u * pr.u + pr.v * pr.v + pr.w * pr.w));
    [pr.rho, pr.rho * pr.u, pr.rho * pr.v, pr.rho * pr.w, e]
}

/// Physical flux along axis 0 (x) or 1 (y).
#[inline]
fn physical_flux(s: &[f64; NCONS], pr: &Primitive, axis: usize) -> [f64; NCONS] {
    let vel = if axis == 0 { pr.u } else { pr.v };
    let mut f = [
        s[cons::RHO] * vel,
        s[cons::MX] * vel,
        s[cons::MY] * vel,
        s[cons::MZ] * vel,
        (s[cons::ENERGY] + pr.p) * vel,
    ];
    // Pressure term on the normal momentum component.
    if axis == 0 {
        f[cons::MX] += pr.p;
    } else {
        f[cons::MY] += pr.p;
    }
    f
}

/// Rusanov numerical flux between left/right states along `axis`.
#[inline]
pub fn rusanov(
    left: &[f64; NCONS],
    right: &[f64; NCONS],
    eos: &GammaLaw,
    axis: usize,
) -> [f64; NCONS] {
    let pl = to_primitive(left, eos);
    let pr = to_primitive(right, eos);
    let fl = physical_flux(left, &pl, axis);
    let fr = physical_flux(right, &pr, axis);
    let vl = if axis == 0 { pl.u } else { pl.v };
    let vr = if axis == 0 { pr.u } else { pr.v };
    let sl = vl.abs() + eos.sound_speed(pl.rho, pl.p);
    let sr = vr.abs() + eos.sound_speed(pr.rho, pr.p);
    let smax = sl.max(sr);
    std::array::from_fn(|c| 0.5 * (fl[c] + fr[c]) - 0.5 * smax * (right[c] - left[c]))
}

/// Maximum signal speed `max(|u|, |v|) + c` over a block's interior
/// (drives the CFL condition).
pub fn max_wave_speed(block: &Block, eos: &GammaLaw) -> f64 {
    let mut smax = 0.0f64;
    for j in 0..block.ny() as isize {
        for i in 0..block.nx() as isize {
            let s = block.state(i, j);
            let pr = to_primitive(&s, eos);
            let c = eos.sound_speed(pr.rho, pr.p);
            smax = smax.max(pr.u.abs() + c).max(pr.v.abs() + c);
        }
    }
    smax
}

/// Spatial discretisation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheme {
    /// Piecewise-constant states (robust, diffusive).
    #[default]
    FirstOrder,
    /// MUSCL: piecewise-linear reconstruction with the minmod limiter —
    /// markedly sharper fronts at the same grid, still monotone.
    Muscl,
}

/// Minmod slope limiter.
#[inline]
fn minmod(a: f64, b: f64) -> f64 {
    if a * b <= 0.0 {
        0.0
    } else if a.abs() < b.abs() {
        a
    } else {
        b
    }
}

/// Limited slope of each conserved component at a cell along `axis`.
#[inline]
fn slopes(block: &Block, i: isize, j: isize, axis: usize) -> [f64; NCONS] {
    let (dm, dp) = match axis {
        0 => ((-1, 0), (1, 0)),
        _ => ((0, -1), (0, 1)),
    };
    let u = block.state(i, j);
    let um = block.state(i + dm.0, j + dm.1);
    let up = block.state(i + dp.0, j + dp.1);
    std::array::from_fn(|c| minmod(u[c] - um[c], up[c] - u[c]))
}

/// Interface flux between cells `a` (left/lower) and `b` using the
/// selected reconstruction.
#[inline]
fn face_flux(
    block: &Block,
    a: (isize, isize),
    b: (isize, isize),
    axis: usize,
    scheme: Scheme,
    eos: &GammaLaw,
) -> [f64; NCONS] {
    match scheme {
        Scheme::FirstOrder => {
            rusanov(&block.state(a.0, a.1), &block.state(b.0, b.1), eos, axis)
        }
        Scheme::Muscl => {
            let sa = slopes(block, a.0, a.1, axis);
            let sb = slopes(block, b.0, b.1, axis);
            let ua = block.state(a.0, a.1);
            let ub = block.state(b.0, b.1);
            let left: [f64; NCONS] = std::array::from_fn(|c| ua[c] + 0.5 * sa[c]);
            let right: [f64; NCONS] = std::array::from_fn(|c| ub[c] - 0.5 * sb[c]);
            rusanov(&left, &right, eos, axis)
        }
    }
}

/// One forward-Euler step of a block's interior. Guards must already be
/// filled; `out` receives the new interior (everything else untouched).
pub fn update_block(block: &Block, out: &mut Block, dt: f64, dx: f64, dy: f64, eos: &GammaLaw) {
    update_block_scheme(block, out, dt, dx, dy, eos, Scheme::FirstOrder);
}

/// [`update_block`] with an explicit reconstruction scheme.
pub fn update_block_scheme(
    block: &Block,
    out: &mut Block,
    dt: f64,
    dx: f64,
    dy: f64,
    eos: &GammaLaw,
    scheme: Scheme,
) {
    debug_assert_eq!(block.nx(), out.nx());
    debug_assert_eq!(block.ny(), out.ny());
    let lx = dt / dx;
    let ly = dt / dy;
    for j in 0..block.ny() as isize {
        for i in 0..block.nx() as isize {
            let u = block.state(i, j);
            let fw = face_flux(block, (i - 1, j), (i, j), 0, scheme, eos);
            let fe = face_flux(block, (i, j), (i + 1, j), 0, scheme, eos);
            let gs = face_flux(block, (i, j - 1), (i, j), 1, scheme, eos);
            let gn = face_flux(block, (i, j), (i, j + 1), 1, scheme, eos);
            let newu: [f64; NCONS] =
                std::array::from_fn(|c| u[c] - lx * (fe[c] - fw[c]) - ly * (gn[c] - gs[c]));
            out.set_state(i, j, newu);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_block(nx: usize, ny: usize, pr: Primitive, eos: &GammaLaw) -> Block {
        let mut b = Block::new(nx, ny);
        let u = to_conserved(&pr, eos);
        for j in -(crate::block::GUARD as isize)..(ny + crate::block::GUARD) as isize {
            for i in -(crate::block::GUARD as isize)..(nx + crate::block::GUARD) as isize {
                b.set_state(i, j, u);
            }
        }
        b
    }

    #[test]
    fn primitive_conserved_roundtrip() {
        let eos = GammaLaw::AIR;
        let pr = Primitive { rho: 1.3, u: 0.5, v: -0.2, w: 0.1, p: 2.5 };
        let back = to_primitive(&to_conserved(&pr, &eos), &eos);
        assert!((back.rho - pr.rho).abs() < 1e-14);
        assert!((back.u - pr.u).abs() < 1e-14);
        assert!((back.v - pr.v).abs() < 1e-14);
        assert!((back.w - pr.w).abs() < 1e-14);
        assert!((back.p - pr.p).abs() < 1e-13);
    }

    #[test]
    fn floors_keep_state_physical() {
        let eos = GammaLaw::AIR;
        let pr = to_primitive(&[-1.0, 0.0, 0.0, 0.0, -5.0], &eos);
        assert!(pr.rho > 0.0);
        assert!(pr.p > 0.0);
    }

    #[test]
    fn consistent_flux_at_equal_states() {
        // Rusanov(U, U) must equal the physical flux of U.
        let eos = GammaLaw::AIR;
        let pr = Primitive { rho: 1.0, u: 0.3, v: 0.2, w: 0.0, p: 1.0 };
        let u = to_conserved(&pr, &eos);
        for axis in [0, 1] {
            let f = rusanov(&u, &u, &eos, axis);
            let fp = physical_flux(&u, &pr, axis);
            for c in 0..NCONS {
                assert!((f[c] - fp[c]).abs() < 1e-14, "axis {axis} comp {c}");
            }
        }
    }

    #[test]
    fn uniform_state_is_a_fixed_point() {
        let eos = GammaLaw::AIR;
        let pr = Primitive { rho: 1.0, u: 0.1, v: -0.05, w: 0.02, p: 1.0 };
        let b = uniform_block(8, 8, pr, &eos);
        let mut out = b.clone();
        update_block(&b, &mut out, 0.01, 0.1, 0.1, &eos);
        for j in 0..8isize {
            for i in 0..8isize {
                let s0 = b.state(i, j);
                let s1 = out.state(i, j);
                for c in 0..NCONS {
                    assert!((s0[c] - s1[c]).abs() < 1e-13, "cell ({i},{j}) comp {c}");
                }
            }
        }
    }

    #[test]
    fn update_conserves_mass_with_periodic_like_guards() {
        // A non-uniform field whose guards exactly wrap (periodic copy):
        // total interior mass must be conserved to round-off.
        let eos = GammaLaw::AIR;
        let n = 8usize;
        let mut b = Block::new(n, n);
        let g = crate::block::GUARD as isize;
        let setter = |i: isize, j: isize| {
            let x = (i.rem_euclid(n as isize)) as f64 / n as f64;
            let y = (j.rem_euclid(n as isize)) as f64 / n as f64;
            Primitive {
                rho: 1.0 + 0.1 * (std::f64::consts::TAU * x).sin(),
                u: 0.1,
                v: 0.05 * (std::f64::consts::TAU * y).cos(),
                w: 0.0,
                p: 1.0,
            }
        };
        for j in -g..(n as isize + g) {
            for i in -g..(n as isize + g) {
                b.set_state(i, j, to_conserved(&setter(i, j), &eos));
            }
        }
        let mass_before: f64 =
            (0..n as isize).flat_map(|j| (0..n as isize).map(move |i| (i, j)))
                .map(|(i, j)| b.state(i, j)[cons::RHO])
                .sum();
        let mut out = b.clone();
        update_block(&b, &mut out, 0.005, 1.0 / n as f64, 1.0 / n as f64, &eos);
        let mass_after: f64 =
            (0..n as isize).flat_map(|j| (0..n as isize).map(move |i| (i, j)))
                .map(|(i, j)| out.state(i, j)[cons::RHO])
                .sum();
        // Fluxes through the periodic faces cancel in the sum.
        assert!(
            (mass_before - mass_after).abs() < 1e-12 * mass_before,
            "{mass_before} vs {mass_after}"
        );
    }

    #[test]
    fn wave_speed_of_still_gas_is_sound_speed() {
        let eos = GammaLaw::AIR;
        let pr = Primitive { rho: 1.0, u: 0.0, v: 0.0, w: 0.0, p: 1.0 };
        let b = uniform_block(4, 4, pr, &eos);
        let s = max_wave_speed(&b, &eos);
        assert!((s - 1.4f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn passive_scalar_rides_along() {
        // w (z velocity) must not affect rho/p evolution and must itself
        // stay bounded by its initial extrema (first-order upwind-type
        // scheme is monotone for a passive scalar).
        let eos = GammaLaw::AIR;
        let n = 8usize;
        let g = crate::block::GUARD as isize;
        let mut b = Block::new(n, n);
        for j in -g..(n as isize + g) {
            for i in -g..(n as isize + g) {
                let w = 0.05 + 0.01 * ((i * 3 + j).rem_euclid(5)) as f64;
                let pr = Primitive { rho: 1.0, u: 0.2, v: 0.0, w, p: 1.0 };
                b.set_state(i, j, to_conserved(&pr, &eos));
            }
        }
        let mut out = b.clone();
        update_block(&b, &mut out, 0.01, 0.125, 0.125, &eos);
        for j in 0..n as isize {
            for i in 0..n as isize {
                let pr = to_primitive(&out.state(i, j), &eos);
                assert!(pr.w >= 0.05 - 1e-12 && pr.w <= 0.09 + 1e-12, "w={}", pr.w);
            }
        }
    }
}
