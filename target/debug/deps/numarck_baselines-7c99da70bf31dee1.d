/root/repo/target/debug/deps/numarck_baselines-7c99da70bf31dee1.d: crates/numarck-baselines/src/lib.rs crates/numarck-baselines/src/bsplines.rs crates/numarck-baselines/src/isabela.rs

/root/repo/target/debug/deps/numarck_baselines-7c99da70bf31dee1: crates/numarck-baselines/src/lib.rs crates/numarck-baselines/src/bsplines.rs crates/numarck-baselines/src/isabela.rs

crates/numarck-baselines/src/lib.rs:
crates/numarck-baselines/src/bsplines.rs:
crates/numarck-baselines/src/isabela.rs:
