/root/repo/target/debug/deps/fig1-428424f2dc024b9d.d: crates/numarck-bench/src/bin/fig1.rs

/root/repo/target/debug/deps/fig1-428424f2dc024b9d: crates/numarck-bench/src/bin/fig1.rs

crates/numarck-bench/src/bin/fig1.rs:
