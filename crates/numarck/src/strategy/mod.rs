//! The three data-approximation strategies (paper §II-C).
//!
//! Each strategy consumes the *fit sample* — the change ratios with
//! `|Δ| ≥ E` — and produces at most `k = 2^B − 1` representative ratios.
//! The encoder then quantizes every large ratio to its nearest
//! representative, escaping to exact storage whenever the representative
//! misses by more than `E`.
//!
//! * [`equal_width`] — histogram bin centres over `[min, max]`. Perfect
//!   when the bin width `W ≤ 2E`; degrades badly when a few outliers
//!   stretch the range (§II-C.1).
//! * [`log_scale`] — e-based log-spaced bins over the magnitudes, sign
//!   aware. Narrow bins for small changes, wide for large — covers big
//!   dynamic ranges (§II-C.2).
//! * [`clustering`] — 1-D K-means seeded from the equal-width histogram;
//!   adapts to arbitrary multi-modal distributions and is the paper's
//!   best performer (§II-C.3).

pub mod clustering;
pub mod equal_width;
pub mod log_scale;

use crate::config::ClusteringOptions;
use crate::table::BinTable;

/// Which approximation strategy to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Equal-width binning over the ratio range.
    EqualWidth,
    /// Log-scale (e-based) binning over ratio magnitudes.
    LogScale,
    /// K-means clustering seeded from the equal-width histogram
    /// (the paper's recommended strategy).
    #[default]
    Clustering,
}

impl Strategy {
    /// Short lowercase name used in reports and file headers.
    pub fn name(&self) -> &'static str {
        match self {
            Self::EqualWidth => "equal-width",
            Self::LogScale => "log-scale",
            Self::Clustering => "clustering",
        }
    }

    /// All strategies, in the order the paper presents them.
    pub fn all() -> [Strategy; 3] {
        [Self::EqualWidth, Self::LogScale, Self::Clustering]
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Learn a representative table from the fit sample.
///
/// `sample` holds the ratios with `|Δ| ≥ E` (any order); `k` is the table
/// capacity `2^B − 1`. An empty sample yields an empty table.
pub fn fit_table(
    strategy: Strategy,
    sample: &[f64],
    k: usize,
    clustering_opts: &ClusteringOptions,
) -> BinTable {
    assert!(k >= 1, "table capacity must be at least 1");
    if sample.is_empty() {
        return BinTable::new(Vec::new());
    }
    let reps = match strategy {
        Strategy::EqualWidth => equal_width::representatives(sample, k),
        Strategy::LogScale => log_scale::representatives(sample, k),
        Strategy::Clustering => clustering::representatives(sample, k, clustering_opts),
    };
    debug_assert!(reps.len() <= k, "{strategy}: produced {} > k={k} representatives", reps.len());
    BinTable::new(reps)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> ClusteringOptions {
        ClusteringOptions::default()
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Strategy::EqualWidth.name(), "equal-width");
        assert_eq!(Strategy::LogScale.name(), "log-scale");
        assert_eq!(Strategy::Clustering.name(), "clustering");
        assert_eq!(Strategy::all().len(), 3);
    }

    #[test]
    fn empty_sample_gives_empty_table_for_all_strategies() {
        for s in Strategy::all() {
            assert!(fit_table(s, &[], 255, &opts()).is_empty(), "{s}");
        }
    }

    #[test]
    fn table_capacity_is_respected() {
        let sample: Vec<f64> = (0..10_000).map(|i| 0.001 * (1.0 + (i % 997) as f64)).collect();
        for s in Strategy::all() {
            for k in [1usize, 3, 15, 255] {
                let t = fit_table(s, &sample, k, &opts());
                assert!(t.len() <= k, "{s} k={k} -> {}", t.len());
                assert!(!t.is_empty(), "{s} k={k} produced empty table");
            }
        }
    }

    #[test]
    fn single_value_sample() {
        for s in Strategy::all() {
            let t = fit_table(s, &[0.25], 255, &opts());
            assert_eq!(t.len(), 1, "{s}");
            assert!((t.representative(0) - 0.25).abs() < 1e-9, "{s}");
        }
    }

    #[test]
    fn all_representatives_are_finite() {
        let sample: Vec<f64> = (1..5000)
            .map(|i| {
                let sign = if i % 3 == 0 { -1.0 } else { 1.0 };
                sign * 0.001 * (i as f64).powf(1.3)
            })
            .collect();
        for s in Strategy::all() {
            let t = fit_table(s, &sample, 127, &opts());
            for &r in t.representatives() {
                assert!(r.is_finite(), "{s}");
            }
        }
    }
}
