/root/repo/target/debug/deps/numarck-1423920624deb9f9.d: crates/numarck-cli/src/main.rs

/root/repo/target/debug/deps/numarck-1423920624deb9f9: crates/numarck-cli/src/main.rs

crates/numarck-cli/src/main.rs:
