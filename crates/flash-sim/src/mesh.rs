//! A uniform tiling of blocks with guard-cell exchange.
//!
//! FLASH distributes blocks over MPI ranks; here all blocks live in one
//! address space and are updated in parallel with Rayon. The exchange is
//! two-phase so no block reads another mid-update: first every block
//! exports its four edge strips (read-only, parallel), then every block
//! imports its neighbours' strips or applies the domain boundary
//! condition (mutable, parallel).

use rayon::prelude::*;

use crate::block::{Block, Side};
use crate::eos::GammaLaw;
use crate::euler;

/// Domain boundary condition applied on all four outer edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Boundary {
    /// Zero-gradient outflow.
    Outflow,
    /// Reflecting walls.
    Reflect,
    /// Periodic wrap-around.
    Periodic,
}

/// A `blocks_x × blocks_y` tiling of `nx × ny` blocks over the unit
/// square-ish domain `[0, width] × [0, height]`.
#[derive(Debug, Clone)]
pub struct Mesh {
    blocks_x: usize,
    blocks_y: usize,
    nx: usize,
    ny: usize,
    dx: f64,
    dy: f64,
    boundary: Boundary,
    blocks: Vec<Block>,
    scratch: Vec<Block>,
}

impl Mesh {
    /// Build a mesh of `blocks_x × blocks_y` blocks, each `nx × ny`
    /// cells, covering `[0, width] × [0, height]`.
    ///
    /// # Panics
    /// Panics on zero block counts or non-positive extents.
    pub fn new(
        blocks_x: usize,
        blocks_y: usize,
        nx: usize,
        ny: usize,
        width: f64,
        height: f64,
        boundary: Boundary,
    ) -> Self {
        assert!(blocks_x > 0 && blocks_y > 0, "need at least one block per axis");
        assert!(width > 0.0 && height > 0.0, "domain extents must be positive");
        let total_x = blocks_x * nx;
        let total_y = blocks_y * ny;
        let blocks = vec![Block::new(nx, ny); blocks_x * blocks_y];
        let scratch = blocks.clone();
        Self {
            blocks_x,
            blocks_y,
            nx,
            ny,
            dx: width / total_x as f64,
            dy: height / total_y as f64,
            boundary,
            blocks,
            scratch,
        }
    }

    /// Blocks per axis `(x, y)`.
    pub fn block_counts(&self) -> (usize, usize) {
        (self.blocks_x, self.blocks_y)
    }

    /// Interior cells per block `(nx, ny)`.
    pub fn block_dims(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Cell sizes `(dx, dy)`.
    pub fn cell_sizes(&self) -> (f64, f64) {
        (self.dx, self.dy)
    }

    /// Total interior cells.
    pub fn num_cells(&self) -> usize {
        self.blocks_x * self.nx * self.blocks_y * self.ny
    }

    /// Immutable block access (block index = `by · blocks_x + bx`).
    pub fn block(&self, bx: usize, by: usize) -> &Block {
        &self.blocks[by * self.blocks_x + bx]
    }

    /// Mutable block access.
    pub fn block_mut(&mut self, bx: usize, by: usize) -> &mut Block {
        &mut self.blocks[by * self.blocks_x + bx]
    }

    /// Centre coordinates of interior cell `(i, j)` of block `(bx, by)`.
    pub fn cell_center(&self, bx: usize, by: usize, i: usize, j: usize) -> (f64, f64) {
        let gx = (bx * self.nx + i) as f64;
        let gy = (by * self.ny + j) as f64;
        ((gx + 0.5) * self.dx, (gy + 0.5) * self.dy)
    }

    /// Initialise every interior cell from a function of its centre.
    pub fn fill(&mut self, f: impl Fn(f64, f64) -> [f64; crate::block::NCONS] + Sync) {
        let (bx_n, nx, ny, dx, dy) = (self.blocks_x, self.nx, self.ny, self.dx, self.dy);
        self.blocks.par_iter_mut().enumerate().for_each(|(bi, block)| {
            let bx = bi % bx_n;
            let by = bi / bx_n;
            for j in 0..ny {
                for i in 0..nx {
                    let gx = (bx * nx + i) as f64;
                    let gy = (by * ny + j) as f64;
                    let (x, y) = ((gx + 0.5) * dx, (gy + 0.5) * dy);
                    block.set_state(i as isize, j as isize, f(x, y));
                }
            }
        });
    }

    /// Fill all guard cells: interior edges from neighbours, domain edges
    /// from the boundary condition.
    pub fn exchange_guards(&mut self) {
        // Phase A: export strips (read-only).
        let strips: Vec<[Vec<f64>; 4]> = self
            .blocks
            .par_iter()
            .map(|b| {
                [
                    b.export_strip(Side::West),
                    b.export_strip(Side::East),
                    b.export_strip(Side::South),
                    b.export_strip(Side::North),
                ]
            })
            .collect();
        let side_index = |s: Side| match s {
            Side::West => 0usize,
            Side::East => 1,
            Side::South => 2,
            Side::North => 3,
        };
        let (bx_n, by_n) = (self.blocks_x, self.blocks_y);
        let boundary = self.boundary;
        // Phase B: import (mutable, parallel).
        self.blocks.par_iter_mut().enumerate().for_each(|(bi, block)| {
            let bx = (bi % bx_n) as isize;
            let by = (bi / bx_n) as isize;
            for side in Side::all() {
                let (nbx, nby) = match side {
                    Side::West => (bx - 1, by),
                    Side::East => (bx + 1, by),
                    Side::South => (bx, by - 1),
                    Side::North => (bx, by + 1),
                };
                let in_domain =
                    nbx >= 0 && nbx < bx_n as isize && nby >= 0 && nby < by_n as isize;
                if in_domain {
                    let ni = nby as usize * bx_n + nbx as usize;
                    block.import_strip(side, &strips[ni][side_index(side.opposite())]);
                } else {
                    match boundary {
                        Boundary::Outflow => block.outflow_guard(side),
                        Boundary::Reflect => block.reflect_guard(side),
                        Boundary::Periodic => {
                            let wi = nbx.rem_euclid(bx_n as isize) as usize;
                            let wj = nby.rem_euclid(by_n as isize) as usize;
                            let ni = wj * bx_n + wi;
                            block.import_strip(side, &strips[ni][side_index(side.opposite())]);
                        }
                    }
                }
            }
        });
    }

    /// Global maximum wave speed (CFL input).
    pub fn max_wave_speed(&self, eos: &GammaLaw) -> f64 {
        self.blocks
            .par_iter()
            .map(|b| euler::max_wave_speed(b, eos))
            .reduce(|| 0.0, f64::max)
    }

    /// Advance every block by `dt` (guards must be current). Double
    /// buffered: reads `blocks`, writes `scratch`, then swaps.
    pub fn advance(&mut self, dt: f64, eos: &GammaLaw) {
        self.advance_scheme(dt, eos, euler::Scheme::FirstOrder);
    }

    /// [`Mesh::advance`] with an explicit reconstruction scheme.
    pub fn advance_scheme(&mut self, dt: f64, eos: &GammaLaw, scheme: euler::Scheme) {
        let (dx, dy) = (self.dx, self.dy);
        self.scratch
            .par_iter_mut()
            .zip(self.blocks.par_iter())
            .for_each(|(out, b)| euler::update_block_scheme(b, out, dt, dx, dy, eos, scheme));
        std::mem::swap(&mut self.blocks, &mut self.scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::cons;
    use crate::euler::{to_conserved, Primitive};

    fn gradient_mesh() -> Mesh {
        let mut m = Mesh::new(3, 2, 8, 8, 1.0, 1.0, Boundary::Outflow);
        let eos = GammaLaw::AIR;
        m.fill(|x, y| {
            to_conserved(
                &Primitive { rho: 1.0 + x + 10.0 * y, u: 0.0, v: 0.0, w: 0.0, p: 1.0 },
                &eos,
            )
        });
        m
    }

    #[test]
    fn fill_uses_cell_centers() {
        let m = gradient_mesh();
        let (dx, dy) = m.cell_sizes();
        let rho = m.block(1, 1).get(cons::RHO, 2, 3);
        let (x, y) = m.cell_center(1, 1, 2, 3);
        assert!((rho - (1.0 + x + 10.0 * y)).abs() < 1e-12);
        assert!((dx - 1.0 / 24.0).abs() < 1e-15);
        assert!((dy - 1.0 / 16.0).abs() < 1e-15);
    }

    #[test]
    fn interior_guard_exchange_is_seamless() {
        let mut m = gradient_mesh();
        m.exchange_guards();
        // Block (0,0)'s east guard must continue the gradient into block
        // (1,0)'s interior.
        let b = m.block(0, 0);
        for gi in 0..crate::block::GUARD as isize {
            let got = b.get(cons::RHO, 8 + gi, 4);
            let want = m.block(1, 0).get(cons::RHO, gi, 4);
            assert_eq!(got, want, "gi={gi}");
        }
        // And vertically: block (0,0)'s north guard = block (0,1) interior.
        for gj in 0..crate::block::GUARD as isize {
            let got = b.get(cons::RHO, 3, 8 + gj);
            let want = m.block(0, 1).get(cons::RHO, 3, gj);
            assert_eq!(got, want, "gj={gj}");
        }
    }

    #[test]
    fn periodic_wraps_across_the_domain() {
        let mut m = Mesh::new(2, 1, 4, 4, 1.0, 1.0, Boundary::Periodic);
        let eos = GammaLaw::AIR;
        m.fill(|x, _| {
            to_conserved(&Primitive { rho: 1.0 + x, u: 0.0, v: 0.0, w: 0.0, p: 1.0 }, &eos)
        });
        m.exchange_guards();
        // West guard of block (0,0) = east interior of block (1,0).
        let west_guard = m.block(0, 0).get(cons::RHO, -1, 2);
        let east_interior = m.block(1, 0).get(cons::RHO, 3, 2);
        assert_eq!(west_guard, east_interior);
    }

    #[test]
    fn uniform_flow_is_preserved_by_advance() {
        let eos = GammaLaw::AIR;
        let mut m = Mesh::new(2, 2, 8, 8, 1.0, 1.0, Boundary::Periodic);
        let pr = Primitive { rho: 1.0, u: 0.2, v: 0.1, w: 0.05, p: 1.0 };
        m.fill(|_, _| to_conserved(&pr, &eos));
        for _ in 0..5 {
            m.exchange_guards();
            m.advance(0.005, &eos);
        }
        for by in 0..2 {
            for bx in 0..2 {
                for j in 0..8isize {
                    for i in 0..8isize {
                        let s = m.block(bx, by).state(i, j);
                        let u = to_conserved(&pr, &eos);
                        for c in 0..crate::block::NCONS {
                            assert!(
                                (s[c] - u[c]).abs() < 1e-12,
                                "block ({bx},{by}) cell ({i},{j})"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn periodic_advance_conserves_mass_and_energy() {
        let eos = GammaLaw::AIR;
        let mut m = Mesh::new(2, 2, 8, 8, 1.0, 1.0, Boundary::Periodic);
        m.fill(|x, y| {
            to_conserved(
                &Primitive {
                    rho: 1.0 + 0.2 * (std::f64::consts::TAU * x).sin(),
                    u: 0.1 * (std::f64::consts::TAU * y).cos(),
                    v: 0.0,
                    w: 0.01,
                    p: 1.0,
                },
                &eos,
            )
        });
        let total = |m: &Mesh, c: usize| -> f64 {
            let mut t = 0.0;
            for by in 0..2 {
                for bx in 0..2 {
                    for j in 0..8isize {
                        for i in 0..8isize {
                            t += m.block(bx, by).state(i, j)[c];
                        }
                    }
                }
            }
            t
        };
        let m0 = total(&m, cons::RHO);
        let e0 = total(&m, cons::ENERGY);
        for _ in 0..20 {
            m.exchange_guards();
            m.advance(0.002, &eos);
        }
        let m1 = total(&m, cons::RHO);
        let e1 = total(&m, cons::ENERGY);
        assert!((m0 - m1).abs() < 1e-10 * m0.abs(), "mass {m0} -> {m1}");
        assert!((e0 - e1).abs() < 1e-10 * e0.abs(), "energy {e0} -> {e1}");
    }

    #[test]
    fn wave_speed_positive_for_any_gas() {
        let m = gradient_mesh();
        assert!(m.max_wave_speed(&GammaLaw::AIR) > 0.0);
    }
}
